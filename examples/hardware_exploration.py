#!/usr/bin/env python
"""One-time profiling, many hardware configurations (Section V-C).

TBPoint's selling point over Pinpoint-style sampling is *hardware
independence*: the functional profile is collected once, and only the
cheap epoch clustering is redone when the simulated machine changes.
This example profiles `lbm` once, then evaluates TBPoint against a full
simulation on four machines with different warp counts and SM counts —
the Figs. 12-13 sensitivity study in miniature.

Run:  python examples/hardware_exploration.py
"""

from repro import GPUConfig, get_workload, profile_kernel, run_tbpoint
from repro.analysis.report import render_table
from repro.baselines import run_full
from repro.core.estimates import sampling_error
from repro.sim import GPUSimulator


def main() -> None:
    kernel = get_workload("lbm", scale=0.0625)
    profile = profile_kernel(kernel)  # ONE functional profile
    print(f"profiled {kernel.name} once: "
          f"{profile.total_warp_insts:,} warp instructions\n")

    configs = [(24, 7), (48, 7), (24, 14), (48, 14)]
    rows = []
    for warps, sms in configs:
        gpu = GPUConfig().with_(warps_per_sm=warps, num_sms=sms)
        simulator = GPUSimulator(gpu)
        full = run_full(kernel, gpu, simulator)
        # run_tbpoint re-derives epochs for this machine's occupancy but
        # reuses the profile unchanged.
        tbp = run_tbpoint(kernel, gpu, profile=profile, simulator=simulator)
        occupancy = gpu.system_occupancy(kernel.launches[0].warps_per_block)
        rows.append(
            (
                f"W{warps}S{sms}",
                occupancy,
                f"{full.overall_ipc:.3f}",
                f"{tbp.overall_ipc:.3f}",
                f"{sampling_error(tbp.overall_ipc, full.overall_ipc):.2%}",
                f"{tbp.sample_size:.2%}",
            )
        )
    print(render_table(
        ["config", "occupancy", "full IPC", "TBPoint IPC", "error", "sample"],
        rows,
        title="Hardware sensitivity (Figs. 12-13 in miniature)",
    ))
    print("\nThe same profile served every configuration; only the epoch")
    print("clustering (epoch size = system occupancy) was recomputed.")


if __name__ == "__main__":
    main()
