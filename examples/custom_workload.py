#!/usr/bin/env python
"""Bring your own kernel: sampling a custom synthetic workload.

The 12 Table VI benchmarks are built from the same public primitives
you can use directly: :class:`Segment` describes a contiguous run of
thread blocks with one behaviour, :class:`LaunchSpec` assembles segments
into a launch, and :func:`build_kernel` stitches launches into a kernel.
This example models a hypothetical two-phase solver — a gather-heavy
assembly pass alternating with a compute-bound smoothing pass — and
shows TBPoint discovering that structure on its own.

Run:  python examples/custom_workload.py
"""

from repro import get_workload, profile_kernel, run_tbpoint  # noqa: F401
from repro.analysis.report import render_table
from repro.baselines import run_full
from repro.core.estimates import sampling_error
from repro.workloads import LaunchSpec, Segment, build_kernel


def build_my_solver(iterations: int = 12, blocks: int = 900):
    assembly = LaunchSpec(
        segments=(
            # Boundary blocks: divergent gathers over the halo.
            Segment(
                count=blocks // 3,
                insts_per_warp=48,
                mem_ratio=0.22,
                locality=0.2,
                coalesce_mean=5.0,
                pattern="gather",
                working_set=1 << 24,
            ),
            # Interior blocks: well-coalesced streaming.
            Segment(
                count=blocks - blocks // 3,
                insts_per_warp=40,
                mem_ratio=0.14,
                locality=0.5,
                coalesce_mean=1.5,
                pattern="stream",
                working_set=1 << 25,
            ),
        ),
        warps_per_block=8,
        bb_offset=0,
        data_key=0,  # every iteration reads the same mesh
        perturb=0.05,
    )
    smoothing = LaunchSpec(
        segments=(
            Segment(
                count=blocks,
                insts_per_warp=56,
                mem_ratio=0.06,
                locality=0.7,
                fp_ratio=0.30,
            ),
        ),
        warps_per_block=8,
        bb_offset=10,  # different code path
        data_key=1,
        perturb=0.05,
    )
    specs = [assembly if i % 2 == 0 else smoothing for i in range(iterations)]
    return build_kernel("mysolver", "custom", "regular", specs, master_seed=42)


def main() -> None:
    kernel = build_my_solver()
    profile = profile_kernel(kernel)
    print(f"{kernel.name}: {kernel.num_launches} launches, "
          f"{kernel.num_blocks:,} thread blocks, "
          f"{profile.total_warp_insts:,} warp instructions\n")

    full = run_full(kernel)
    tbp = run_tbpoint(kernel, profile=profile)

    plan = tbp.plan
    print(f"TBPoint found {plan.num_clusters} launch clusters "
          f"(expected 2: assembly vs smoothing)")
    print(f"simulated launches: {plan.simulated_launches}\n")

    rows = []
    for launch_id, table in tbp.region_tables.items():
        rows.append(
            (
                launch_id,
                table.num_regions,
                table.covered_blocks,
                int(table.outlier_epochs.sum()),
            )
        )
    print(render_table(
        ["launch", "regions", "blocks in regions", "outlier epochs"],
        rows,
        title="Homogeneous-region identification per simulated launch",
    ))

    err = sampling_error(tbp.overall_ipc, full.overall_ipc)
    print(f"\nfull IPC {full.overall_ipc:.3f} vs TBPoint {tbp.overall_ipc:.3f}"
          f" -> error {err:.2%} at sample size {tbp.sample_size:.2%}")


if __name__ == "__main__":
    main()
