#!/usr/bin/env python
"""Irregular graph kernels: where sampling is hard.

Runs the `bfs` frontier kernel (LonestarGPU-style) through all four
techniques of the paper's evaluation — Full, Random, Ideal-SimPoint and
TBPoint — and shows why profiling-based sampling wins on irregular
workloads: frontier launches differ wildly (Random misses whole phases)
while BBVs barely change between them (SimPoint can't tell them apart).

Run:  python examples/irregular_graph_kernel.py
"""

import numpy as np

from repro import ExperimentConfig, get_workload, profile_kernel, run_tbpoint
from repro.analysis.report import render_table
from repro.baselines import estimate_random, estimate_simpoint, run_full
from repro.core.estimates import sampling_error
from repro.core.features import inter_feature_matrix


def main() -> None:
    experiment = ExperimentConfig(scale=0.125)
    kernel = get_workload("bfs", scale=experiment.scale, seed=experiment.seed)
    profile = profile_kernel(kernel)

    print(f"{kernel.name}: {kernel.num_launches} frontier launches, "
          f"{kernel.num_blocks:,} thread blocks")

    # Inter-launch feature vectors (Eq. 2): frontiers differ in size,
    # divergence and memory behaviour.
    feats = inter_feature_matrix(profile)
    rows = [
        (i, f"{f[0]:.2f}", f"{f[1]:.2f}", f"{f[2]:.2f}", f"{f[3]:.2f}")
        for i, f in enumerate(feats)
    ]
    print()
    print(render_table(
        ["launch", "size", "ctrl-div", "mem-div", "tb-var"],
        rows,
        title="Eq. 2 inter-launch feature vectors (normalized)",
    ))

    # Reference + the three sampling techniques.
    unit_insts = max(2_000, profile.total_warp_insts // experiment.target_units)
    full = run_full(kernel, unit_insts=unit_insts)
    tbp = run_tbpoint(kernel, profile=profile)
    rng = np.random.default_rng(experiment.seed)
    simpoint = estimate_simpoint(full, max_k=experiment.simpoint_max_k, rng=rng)
    random_est = estimate_random(full, experiment.random_fraction, rng=rng)

    print()
    print(render_table(
        ["technique", "overall IPC", "error", "sample size"],
        [
            ("Full", f"{full.overall_ipc:.3f}", "-", "100%"),
            ("Random", f"{random_est.overall_ipc:.3f}",
             f"{sampling_error(random_est.overall_ipc, full.overall_ipc):.2%}",
             f"{random_est.sample_size:.2%}"),
            ("Ideal-SimPoint", f"{simpoint.overall_ipc:.3f}",
             f"{sampling_error(simpoint.overall_ipc, full.overall_ipc):.2%}",
             f"{simpoint.sample_size:.2%}"),
            ("TBPoint", f"{tbp.overall_ipc:.3f}",
             f"{sampling_error(tbp.overall_ipc, full.overall_ipc):.2%}",
             f"{tbp.sample_size:.2%}"),
        ],
        title="bfs: technique comparison (Figs. 9-10)",
    ))

    # Inter-launch plan: which launches stand in for which.
    plan = tbp.plan
    print(f"\ninter-launch clusters: {plan.num_clusters} "
          f"(launches simulated: {plan.simulated_launches})")
    for launch_id in range(plan.num_launches):
        rep = plan.representative_of(launch_id)
        marker = "*" if rep == launch_id else " "
        print(f"  {marker} launch {launch_id:2d} -> representative {rep}")


if __name__ == "__main__":
    main()
