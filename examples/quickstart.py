#!/usr/bin/env python
"""Quickstart: sample one GPGPU kernel with TBPoint.

Builds the `hotspot` stencil kernel (Table VI), runs the full
cycle-level simulation as the reference, then runs TBPoint and reports
the two headline quantities of the paper: the sampling error (Fig. 9)
and the total sample size (Fig. 10).

Run:  python examples/quickstart.py
"""

from repro import get_workload, profile_kernel, run_tbpoint
from repro.baselines import run_full


def main() -> None:
    # 1. Build the workload.  scale=1.0 reproduces Table VI's 1,849
    #    thread blocks; smaller scales shrink the kernel for quick runs.
    kernel = get_workload("hotspot", scale=1.0)
    print(f"kernel: {kernel}")

    # 2. One-time functional profiling (the GPUOcelot step): per-block
    #    instruction and memory-request counts, hardware independent.
    profile = profile_kernel(kernel)
    print(
        f"profiled {profile.num_launches} launch(es), "
        f"{profile.total_warp_insts:,} warp instructions"
    )

    # 3. Reference: the full cycle-level simulation.
    full = run_full(kernel)
    print(f"full simulation: IPC {full.overall_ipc:.3f} "
          f"over {full.total_cycles:,} cycles")

    # 4. TBPoint: inter-launch + intra-launch sampling.
    tbp = run_tbpoint(kernel, profile=profile)
    error = abs(tbp.overall_ipc - full.overall_ipc) / full.overall_ipc
    print(f"TBPoint estimate: IPC {tbp.overall_ipc:.3f}")
    print(f"sampling error: {error:.2%}")
    print(f"total sample size: {tbp.sample_size:.2%} of warp instructions")

    # 5. Where did the savings come from? (Fig. 11)
    inter, intra = tbp.skip_breakdown()
    print(f"skipped instructions: {inter:.0%} inter-launch, "
          f"{intra:.0%} intra-launch")

    # 6. The homogeneous-region table (Table III) of the one launch.
    table = tbp.region_tables[0]
    print(f"homogeneous regions: {table.num_regions}")
    for region_id, start, end in table.rows():
        print(f"  region {region_id}: TB {start} .. {end}")


if __name__ == "__main__":
    main()
