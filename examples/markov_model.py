#!/usr/bin/env python
"""The Section IV-A mathematical model, end to end.

Builds the 2^N-state Markov chain of Eq. 3 for a warp population with
stall probability p and stall latency M, verifies the explicit matrix
against the factorized closed form, and reruns the paper's Monte-Carlo
study (Fig. 5): with per-warp latencies drawn from a Gaussian, more than
95% of samples land within 10% of the mean IPC — the justification for
treating a homogeneous region's IPC as one number.

Run:  python examples/markov_model.py
"""

import numpy as np

from repro.analysis.report import render_table
from repro.model import (
    analytic_ipc,
    ipc_from_steady_state,
    ipc_variation,
    steady_state,
    transition_matrix,
)


def main() -> None:
    # --- Eq. 3, exact vs closed form --------------------------------
    p, M, N = 0.1, 400.0, 4
    T = transition_matrix(p, M, N)
    exact = ipc_from_steady_state(steady_state(T))
    closed = analytic_ipc(p, M, N)
    print(f"Eq. 3 chain (p={p}, M={M:.0f}, N={N}):")
    print(f"  transition matrix: {T.shape[0]}x{T.shape[1]}, "
          f"rows sum to {T.sum(axis=1).max():.6f}")
    print(f"  exact steady-state IPC:  {exact:.6f}")
    print(f"  factorized closed form:  {closed:.6f}")
    print(f"  agreement: {abs(exact - closed):.2e}\n")

    # --- IPC vs warp count: latency hiding ---------------------------
    rows = [
        (n, f"{analytic_ipc(p, M, n):.4f}") for n in (1, 2, 4, 8, 16, 32)
    ]
    print(render_table(["warps N", "IPC"], rows,
                       title=f"Latency hiding at p={p}, M={M:.0f}"))
    print()

    # --- Fig. 5: Monte-Carlo IPC variation ---------------------------
    configs = [
        (0.05, 100, 4), (0.05, 400, 4), (0.1, 100, 4), (0.1, 400, 4),
        (0.2, 200, 4), (0.05, 100, 8), (0.1, 400, 8), (0.2, 200, 8),
    ]
    rng = np.random.default_rng(2014)
    rows = []
    for cfg in configs:
        var = ipc_variation(*cfg, num_samples=10_000, rng=rng)
        rows.append(
            (
                var.label,
                f"{var.mean_ipc:.4f}",
                f"{var.fraction_within(0.10):.2%}",
                f"{np.percentile(var.relative_deviation, 95):.2%}",
            )
        )
    print(render_table(
        ["config", "mean IPC", "within 10%", "p95 deviation"],
        rows,
        title="Fig. 5: Monte-Carlo IPC variation (10,000 samples each)",
    ))
    print("\nLemma 4.1 holds: every configuration keeps >95% of samples")
    print("within 10% of the mean IPC.")


if __name__ == "__main__":
    main()
