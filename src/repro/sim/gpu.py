"""Event-driven multi-SM timing simulator.

The engine keeps one global event heap of (cycle, sm) issue slots.
Popping an event issues at least one warp instruction on that SM — from
its earliest-ready resident warp — then reschedules the SM for
``max(cycle + 1, next warp ready)``.  Cost is therefore
O(instructions x log) with idle cycles skipped by construction, per the
HPC guideline of spending time only where work happens.

Two engines share the same dispatch/retire/sampling machinery and are
bit-identical by construction:

* ``"reference"`` — the original per-instruction loop: one heap event,
  one warp instruction.  Warp state is materialized as plain Python
  lists, converted per thread block from the numpy trace.
* ``"compact"`` (default) — the interned, segment-compacted hot path:

  - **trace interning**: each unique warp trace (keyed by the identity
    of its shared ``op``/``bb`` arrays) is converted to list form once
    per simulator lifetime — relaunches reuse the tables — and the
    immutable :class:`_TraceTable` is shared across every warp
    executing that trace; only ``pc`` and the memory-operand slices
    stay per-warp;
  - **segment compaction**: per unique trace, run lengths of
    consecutive non-memory instructions carry a prefix-sum of
    issue-to-issue stall deltas, so one heap event can retire a whole
    segment wherever that is provably timing-equivalent (bounded by the
    SM's next-ready warp and — whenever shared state could observe the
    difference — the next global event);
  - **windowed issue**: one global event per SM *window*; the SM's
    warp pool (a per-SM binary heap in the specialized no-hooks loop)
    is simulated in a tight local loop that defers back to the global
    heap only at *barrier* instructions (memory ops, block-retiring
    final instructions, hook-observed issues);
  - **observability**: :class:`SimCounters` tallies events, heap
    pushes, segment/interning hits and memory-batching engagement and
    is attached to the :class:`LaunchResult`.

The timing-equivalence argument lives in DESIGN.md ("Simulator hot
path"); ``tests/test_sim_compaction.py`` property-checks the two
engines against each other.

Sampling support (Section IV-B2):

* an optional :class:`~repro.sim.sampler_hooks.DispatchSampler` decides
  at dispatch time whether each thread block is simulated or skipped
  (fast-forward), and observes retirements;
* *sampling units* are tracked as the paper defines them — the interval
  between the dispatch and retirement of a *specified* thread block
  (first dispatched block at start; a new one is specified after each
  retirement) — and reported to the sampler;
* an optional :class:`FixedUnitRecorder` slices the run into
  fixed-instruction-count units with per-unit IPC and basic-block
  vectors, which is what the Random and Ideal-SimPoint baselines consume.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from heapq import heapify, heappop, heappush, heapreplace

import numpy as np

from repro.config import GPUConfig
from repro.sim.memory import MEMORY_FRONT_ENDS, make_memory
from repro.sim.sampler_hooks import DispatchSampler
from repro.trace import STALL_CYCLES, LaunchTrace, is_dram_op
from repro.trace.blocktrace import BlockTrace

_INF = float("inf")

#: Upper bound on distinct interned traces kept per launch; launches in
#: this reproduction have a handful of unique skeletons, so the cap only
#: guards against pathological synthetic inputs.
_INTERN_CACHE_MAX = 1024

#: Below this many instructions a Python loop beats ``np.bincount`` for
#: accumulating a segment's basic-block counts.
_BINCOUNT_MIN = 24


@dataclass
class SimCounters:
    """Hot-loop statistics of one ``run_launch`` call (compact engine).

    Attached to :class:`LaunchResult.counters`; useful for verifying
    that the fast paths actually engage on a given workload before
    reading anything into a benchmark number.
    """

    events_popped: int = 0
    heap_pushes: int = 0
    segment_hits: int = 0
    segment_insts: int = 0
    interning_hits: int = 0
    interning_misses: int = 0
    rounds_sorted: int = 0
    #: Warp memory instructions issued and the line transactions they
    #: expanded to (``mem_txns / mem_insts`` = transactions per memory
    #: instruction, the batching exposure of the launch).
    mem_insts: int = 0
    mem_txns: int = 0
    #: Memory-front-end fast-path engagement, snapshotted from the
    #: hierarchy's own counters across this run: multi-transaction
    #: batched ``load`` calls, same-line transactions resolved without
    #: cache operations, and per-level hits inside batched calls.  All
    #: zero under the reference front end (no fast path exists there).
    mem_batches: int = 0
    mem_dedup_txns: int = 0
    mem_batch_l1_hits: int = 0
    mem_batch_l2_hits: int = 0
    #: Vectorized DRAM drains taken by the ``vector`` front end (zero
    #: under the other front ends, and under the default threshold for
    #: warp-sized traffic — see ``ArrayDRAMModel.VECTOR_THRESHOLD``).
    mem_vector_drains: int = 0
    #: Sharded-L2 observability (empty/0.0 under the default unified
    #: L2): per-shard probe counts over this run and the access-skew
    #: summary (hottest shard's excess over a balanced share; see
    #: ``ShardedL2.shard_imbalance``).
    l2_shard_probes: tuple = ()
    l2_shard_imbalance: float = 0.0
    #: Thread blocks re-synthesized because the launch's block-memo
    #: window (``LaunchTrace.block_memo``) had already evicted them —
    #: the per-run re-synthesis thrash of >window-block launches.  Zero
    #: when the window covers the launch (e.g. the resident traces a
    #: long-lived ``repro serve`` process keeps warm).
    block_regenerations: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class _TraceTable:
    """Immutable per-unique-trace data, shared by every warp running it.

    ``cum[k]`` is the prefix sum of issue-to-issue deltas
    ``max(stall, 1)``: within a run of non-memory instructions starting
    at ``pc`` whose first issue happens at cycle ``t``, instruction
    ``k`` issues at ``t + cum[k] - cum[pc]`` (the event-driven
    recurrence ``T_k = max(T_{k-1} + 1, done_{k-1})`` collapses to it).
    The deltas are only ever differenced between two indices of the
    same non-memory run, so the values stored at memory positions are
    irrelevant.

    ``batchable`` is False when any non-memory instruction has a static
    stall of 0 (possible only for degenerate unvalidated traces where a
    DRAM op carries ``mem_req == 0``); such tables always take the
    per-instruction path because the prefix sum would over-charge the
    zero-stall instructions.
    """

    __slots__ = (
        "n", "stall", "cum", "bb", "bb_np", "pos", "pos_np", "m",
        "batchable", "_refs",
    )

    def __init__(self, op: np.ndarray, bb: np.ndarray, pos_np: np.ndarray):
        stall_np = STALL_CYCLES[op]
        n = len(op)
        self.n = n
        self.stall = stall_np.tolist()
        self.pos_np = pos_np
        self.pos = pos_np.tolist()
        self.m = len(self.pos)
        self.bb_np = bb
        self.bb = bb.tolist()
        cum = np.empty(n + 1, dtype=np.int64)
        cum[0] = 0
        np.cumsum(np.maximum(stall_np, 1), out=cum[1:])
        self.cum = cum.tolist()
        nonmem = np.ones(n, dtype=bool)
        nonmem[pos_np] = False
        self.batchable = bool((stall_np[nonmem] >= 1).all()) if n else True
        # Keep the keyed arrays alive: the interning cache keys on
        # id(op)/id(bb), which is only sound while those objects exist.
        self._refs = (op, bb)


class _WarpState:
    """Cold per-warp state of the compact engine.

    The hot loop works on mutable *pool entries* — plain lists
    ``[ready, seq, warp, pc, stall, next_mem_pc, n, mi]`` that sort by
    ``(ready, seq)`` and are reused across re-queues (no per-issue tuple
    allocation).  This object carries everything the entry does not:
    shared :class:`_TraceTable` fields aliased by pointer copy, the
    per-warp memory operands gathered at the trace's memory positions
    (O(m) instead of O(5n) list conversion per dispatch), and the
    owning thread block.
    """

    __slots__ = (
        "n", "m", "stall", "cum", "pos", "bb", "bb_np",
        "batchable", "mreq", "maddr", "mspread", "tb",
    )

    def __init__(self, tbl: _TraceTable, mreq, maddr, mspread, tb: "_TBState"):
        self.n = tbl.n
        self.m = tbl.m
        self.stall = tbl.stall
        self.cum = tbl.cum
        self.pos = tbl.pos
        self.bb = tbl.bb
        self.bb_np = tbl.bb_np
        self.batchable = tbl.batchable
        self.mreq = mreq
        self.maddr = maddr
        self.mspread = mspread
        self.tb = tb


class _LegacyWarpState:
    """Per-warp state of the reference engine: full per-warp lists."""

    __slots__ = ("pc", "n", "stall", "memreq", "addr", "spread", "bb", "tb")

    def __init__(self, trace, tb: "_TBState"):
        op = trace.op
        # Static scoreboard stall per instruction; 0 marks DRAM-bound
        # memory ops whose latency the hierarchy computes dynamically.
        self.stall = STALL_CYCLES[op].tolist()
        self.memreq = trace.mem_req.tolist()
        self.addr = trace.addr.tolist()
        self.spread = trace.spread.tolist()
        self.bb = trace.bb.tolist()
        self.pc = 0
        self.n = len(op)
        self.tb = tb


class _TBState:
    """Mutable per-thread-block state."""

    __slots__ = ("tb_id", "live")

    def __init__(self, tb_id: int, num_warps: int):
        self.tb_id = tb_id
        self.live = num_warps


@dataclass
class UnitRecord:
    """One fixed-size sampling unit of a full simulation run."""

    start_cycle: int
    end_cycle: int
    insts: int
    bbv: np.ndarray | None = None

    @property
    def cycles(self) -> int:
        return max(1, self.end_cycle - self.start_cycle)

    @property
    def ipc(self) -> float:
        """Machine-wide IPC of the unit."""
        return self.insts / self.cycles

    @property
    def cpi(self) -> float:
        return self.cycles / self.insts


class FixedUnitRecorder:
    """Slices a run into units of ``unit_insts`` machine-wide warp
    instructions, recording per-unit IPC and (optionally) the BBV.

    This reproduces the measurement the paper's baselines need: "we
    collect IPC for every sampling unit with one million instructions"
    (Random) and "we collect the BBV and IPC for every sampling unit"
    (Ideal-SimPoint).
    """

    def __init__(self, unit_insts: int, num_bbs: int, record_bbv: bool = True):
        if unit_insts < 1:
            raise ValueError("unit_insts must be positive")
        if num_bbs < 1:
            raise ValueError("num_bbs must be positive")
        self.unit_insts = unit_insts
        self.num_bbs = num_bbs
        self.record_bbv = record_bbv
        self.units: list[UnitRecord] = []
        self._start = 0
        self.cur_bbv = np.zeros(num_bbs, dtype=np.int64)

    def flush(self, now: int, insts: int) -> np.ndarray:
        """Close the current unit at cycle ``now`` with ``insts``
        instructions and open the next one.  Returns the fresh (zeroed)
        accumulator so hot loops can rebind their local BBV view from
        the return value instead of re-reading ``cur_bbv``."""
        bbv = None
        if self.record_bbv:
            bbv = self.cur_bbv
            self.cur_bbv = np.zeros(self.num_bbs, dtype=np.int64)
        self.units.append(
            UnitRecord(start_cycle=self._start, end_cycle=now, insts=insts, bbv=bbv)
        )
        self._start = now
        return self.cur_bbv

    def finalize(self, now: int, leftover: int) -> None:
        """Close a trailing partial unit, if any instructions remain."""
        if leftover > 0:
            self.flush(now, leftover)

    @property
    def ipcs(self) -> np.ndarray:
        return np.array([u.ipc for u in self.units])

    @property
    def cpis(self) -> np.ndarray:
        return np.array([u.cpi for u in self.units])

    @property
    def inst_counts(self) -> np.ndarray:
        return np.array([u.insts for u in self.units], dtype=np.int64)

    def bbv_matrix(self, normalize: bool = True) -> np.ndarray:
        """(num_units, num_bbs) matrix of basic-block vectors; rows are
        normalized by the unit's instruction count (Eq. 1's BBV)."""
        if not self.record_bbv:
            raise ValueError("recorder was created with record_bbv=False")
        mat = np.stack([u.bbv for u in self.units]).astype(np.float64)
        if normalize:
            totals = mat.sum(axis=1, keepdims=True)
            totals[totals == 0] = 1.0
            mat /= totals
        return mat


@dataclass
class LaunchResult:
    """Timing result of one (possibly sampled) launch simulation."""

    launch_id: int
    issued_warp_insts: int
    wall_cycles: int
    per_sm_issued: list[int]
    per_sm_busy_cycles: list[int]
    skipped_warp_insts: int = 0
    extra_cycles: float = 0.0
    mem_stats: dict = field(default_factory=dict)
    counters: SimCounters | None = None

    @property
    def machine_ipc(self) -> float:
        """Measured machine-wide IPC (issued instructions / wall cycles),
        counting only simulated work."""
        return self.issued_warp_insts / max(1, self.wall_cycles)

    @property
    def per_sm_ipc_sum(self) -> float:
        """The paper's Fig. 9 overall-IPC definition:
        sum over SMs of warp_insts_k / cycles_k."""
        return sum(
            i / c for i, c in zip(self.per_sm_issued, self.per_sm_busy_cycles) if c > 0
        )

    @property
    def total_warp_insts(self) -> int:
        """Simulated plus fast-forwarded warp instructions — equals the
        launch's functional instruction count."""
        return self.issued_warp_insts + self.skipped_warp_insts

    @property
    def est_cycles(self) -> float:
        """Estimated cycles for the whole launch: measured wall cycles
        plus the predicted time of fast-forwarded regions (Table IV)."""
        return self.wall_cycles + self.extra_cycles

    @property
    def est_ipc(self) -> float:
        """Estimated machine IPC for the whole launch."""
        return self.total_warp_insts / max(1.0, self.est_cycles)

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the launch's warp instructions actually simulated
        (the Fig. 10 sample-size numerator for this launch)."""
        total = self.total_warp_insts
        return self.issued_warp_insts / total if total else 0.0


class GPUSimulator:
    """Trace-driven, event-driven multi-SM GPU timing simulator.

    ``engine`` selects the hot-loop implementation: ``"compact"`` (the
    default interned/segment-compacted path) or ``"reference"`` (the
    original per-instruction loop).  ``mem_front_end`` independently
    selects the memory hierarchy implementation: ``"fast"`` (the
    default batched front end), ``"reference"`` (the pre-fast-path
    oracle) or ``"vector"`` (the array-backed front end).  All
    engine x front-end combinations produce bit-identical
    :class:`LaunchResult`\\ s; the reference engine sets ``counters``
    to ``None``.
    """

    ENGINES = ("compact", "reference")
    MEM_FRONT_ENDS = tuple(MEMORY_FRONT_ENDS)

    def __init__(
        self,
        config: GPUConfig | None = None,
        engine: str = "compact",
        mem_front_end: str = "fast",
    ):
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {self.ENGINES}")
        self.config = config or GPUConfig()
        self.engine = engine
        self.mem_front_end = mem_front_end
        self.mem = make_memory(self.config, mem_front_end)
        # Simulator-lifetime trace interning (compact engine): tables
        # survive across run_launch calls, so re-simulating a launch —
        # or simulating the near-identical relaunches TBPoint's
        # inter-launch homogeneity premise expects — skips conversion
        # entirely.  Keyed by (id(op), id(bb)); each entry holds the op
        # array itself (bb is held by the table), so a live entry pins
        # its arrays and the ids cannot be recycled into stale hits.
        self._intern_cache: OrderedDict = OrderedDict()

    def run_launch(
        self,
        launch: LaunchTrace,
        sampler: DispatchSampler | None = None,
        recorder: FixedUnitRecorder | None = None,
        reset_memory: bool = True,
        engine: str | None = None,
    ) -> LaunchResult:
        """Simulate one kernel launch.

        Parameters
        ----------
        launch:
            The launch trace; thread blocks are dispatched greedily in
            ID order, round-robin across SMs.
        sampler:
            Optional intra-launch sampler (TBPoint's homogeneous-region
            sampling).  ``None`` simulates everything at full speed.
        recorder:
            Optional fixed-size-unit recorder (baseline measurement).
        reset_memory:
            Invalidate caches and DRAM bank state first, making every
            launch's timing independent of simulation order (required
            for representative-launch sampling to be meaningful).
        engine:
            Per-call engine override (``"compact"`` / ``"reference"``).
        """
        engine = engine or self.engine
        if engine == "reference":
            return self._run_launch_reference(launch, sampler, recorder, reset_memory)
        if engine != "compact":
            raise ValueError(f"unknown engine {engine!r}; choose from {self.ENGINES}")
        return self._run_launch_compact(launch, sampler, recorder, reset_memory)

    # ------------------------------------------------------------------
    # Compact engine: interned traces + segment-compacted issue loop.
    # ------------------------------------------------------------------

    def _run_launch_compact(
        self,
        launch: LaunchTrace,
        sampler: DispatchSampler | None,
        recorder: FixedUnitRecorder | None,
        reset_memory: bool,
    ) -> LaunchResult:
        cfg = self.config
        if reset_memory:
            self.mem.reset()
        num_sms = cfg.num_sms
        occ = cfg.sm_occupancy(launch.warps_per_block)
        num_blocks = launch.num_blocks

        # Per-SM warp pool.  Entries are mutable lists
        # ``[ready, seq, warp, pc, stall, stop_pc, n, mi]`` reused
        # across re-queues; ``seq`` is globally unique, so comparisons
        # never reach the warp object.  ``stop_pc`` is the next pc that
        # needs special handling — the warp's next memory instruction or
        # its final instruction, whichever comes first — so the hot loop
        # pays one comparison for both cases.
        #
        # Dispatch stages fresh entries in ``nxts[si]`` (min ready time
        # in ``nxtmins[si]``).  The specialized no-hooks loop converts
        # the staged entries into per-SM binary heaps and keeps them
        # there; the general loop (sampler / recorder / lrr) consumes a
        # *round* structure instead: ``rnds[si]`` is a sorted list read
        # through cursor ``ris[si]``, re-queues collect unsorted in
        # ``nxts[si]``, and the two merge whenever a re-queued entry
        # ties or beats the sorted head (``nxtmin <= head.ready``) — so
        # extraction order equals heap order in both cases.
        rnds: list[list] = [[] for _ in range(num_sms)]
        ris = [0] * num_sms
        nxts: list[list] = [[] for _ in range(num_sms)]
        nxtmins = [_INF] * num_sms
        resident = [0] * num_sms
        per_sm_issued = [0] * num_sms
        per_sm_last = [-1] * num_sms

        # Dispatch bookkeeping (mutated by closures below).
        next_tb = 0
        dispatch_free = 0  # the global scheduler issues one block at a time
        seq_counter = 0
        specified_tb = -1
        unit_t0 = 0
        unit_i0 = 0
        issued = 0

        get_block = launch.block
        regen0 = launch.regenerations
        has_sampler = sampler is not None

        # Trace interning: unique warp traces are keyed by the identity
        # of their (op, bb) arrays — shared across blocks by the
        # workload generator's skeleton cache — and converted to table
        # form exactly once per *simulator* (the cache lives on the
        # instance, so relaunches of the same trace skip conversion).
        # Entries are (op, table) pairs: the op reference (plus the
        # bb the table holds) pins the arrays, keeping their ids valid
        # for the cache's whole lifetime.
        intern_cache = self._intern_cache
        intern_hits = 0
        intern_misses = 0

        def make_warp(wt, tbst: _TBState) -> _WarpState:
            nonlocal intern_hits, intern_misses
            op = wt.op
            bb = wt.bb
            key = (id(op), id(bb))
            ent = intern_cache.get(key)
            if ent is None:
                intern_misses += 1
                tbl = _TraceTable(op, bb, np.flatnonzero(is_dram_op(op)))
                intern_cache[key] = (op, tbl)
                if len(intern_cache) > _INTERN_CACHE_MAX:
                    intern_cache.popitem(last=False)
            else:
                intern_hits += 1
                tbl = ent[1]
                intern_cache.move_to_end(key)
            mem_req = wt.mem_req
            # The table's memory positions assume every DRAM op carries
            # transactions.  Unvalidated traces may violate that (a
            # DRAM op with mem_req == 0 stalls statically for 0 cycles);
            # give such warps a private table keyed on actual requests.
            actual = np.flatnonzero(mem_req)
            if not np.array_equal(actual, tbl.pos_np):
                tbl = _TraceTable(op, bb, actual)
            if tbl.m:
                pos_np = tbl.pos_np
                mreq = mem_req[pos_np].tolist()
                maddr = wt.addr[pos_np].tolist()
                mspread = wt.spread[pos_np].tolist()
            else:
                mreq = maddr = mspread = ()
            return _WarpState(tbl, mreq, maddr, mspread, tbst)

        def make_block(block: BlockTrace, tbst: _TBState) -> list[_WarpState]:
            """Build all warp states of one thread block at once.

            The block's warps share one skeleton (identical ``op``/``bb``
            arrays) in every generated workload, so the memory operands
            of all warps can be gathered with three block-level fancy
            indexes instead of three per warp, and the degenerate-trace
            check collapses to two reductions.  Blocks that violate the
            shared-skeleton assumption (or carry degenerate traces) fall
            back to the per-warp path.
            """
            nonlocal intern_hits, intern_misses
            warps = block.warps
            wt0 = warps[0]
            op = wt0.op
            bb = wt0.bb
            for wt in warps:
                if wt.op is not op or wt.bb is not bb:
                    return [make_warp(wt, tbst) for wt in warps]
            nw = len(warps)
            key = (id(op), id(bb))
            ent = intern_cache.get(key)
            fresh = ent is None
            if fresh:
                tbl = _TraceTable(op, bb, np.flatnonzero(is_dram_op(op)))
                intern_cache[key] = (op, tbl)
                if len(intern_cache) > _INTERN_CACHE_MAX:
                    intern_cache.popitem(last=False)
            else:
                tbl = ent[1]
                intern_cache.move_to_end(key)
            m = tbl.m
            if m:
                mr = np.array([wt.mem_req for wt in warps])
                sub = mr[:, tbl.pos_np]
                # Exact equivalent of the per-warp flatnonzero check:
                # every tabled position carries requests and no requests
                # exist elsewhere <=> nonzero(row) == pos for every row.
                if not (sub.all() and np.count_nonzero(mr) == nw * m):
                    return [make_warp(wt, tbst) for wt in warps]
                mreqs = sub.tolist()
                pos_np = tbl.pos_np
                maddrs = np.array([wt.addr for wt in warps])[:, pos_np].tolist()
                mspreads = np.array(
                    [wt.spread for wt in warps]
                )[:, pos_np].tolist()
                out = [
                    _WarpState(tbl, mreqs[i], maddrs[i], mspreads[i], tbst)
                    for i in range(nw)
                ]
            else:
                if np.array([wt.mem_req for wt in warps]).any():
                    return [make_warp(wt, tbst) for wt in warps]
                out = [_WarpState(tbl, (), (), (), tbst) for _ in range(nw)]
            if fresh:
                intern_misses += 1
                intern_hits += nw - 1
            else:
                intern_hits += nw
            return out

        def dispatch_to(si: int, now: int) -> bool:
            """Dispatch the next non-skipped thread block to SM ``si``;
            return False when the launch is exhausted."""
            nonlocal next_tb, dispatch_free, seq_counter
            nonlocal specified_tb, unit_t0, unit_i0
            while next_tb < num_blocks:
                tb_id = next_tb
                next_tb += 1
                if has_sampler and not sampler.on_dispatch(tb_id, now, issued):
                    continue  # fast-forwarded; sampler did the accounting
                # The global scheduler issues one block every few cycles,
                # and each block's warps launch back to back: dispatch is
                # serialized, which also keeps warps from running
                # phase-locked (as they would if everything started at
                # cycle 0 of the initial fill).
                start = dispatch_free if dispatch_free > now else now
                dispatch_free = start + 4
                block: BlockTrace = get_block(tb_id)
                tbst = _TBState(tb_id, len(block.warps))
                nxt = nxts[si]
                nm = nxtmins[si]
                r0 = start
                for w in make_block(block, tbst):
                    nxt.append([
                        r0, seq_counter, w, 0, w.stall,
                        w.pos[0] if w.m else w.n - 1, w.n, 0,
                    ])
                    seq_counter += 1
                    if r0 < nm:
                        nm = r0
                    r0 += 2
                nxtmins[si] = nm
                resident[si] += 1
                if has_sampler and specified_tb < 0:
                    specified_tb = tb_id
                    unit_t0 = now
                    unit_i0 = issued
                    sampler.on_unit_start(now)
                return True
            return False

        def retire_tb(tb: _TBState, si: int, now: int) -> None:
            nonlocal specified_tb
            resident[si] -= 1
            if has_sampler:
                if tb.tb_id == specified_tb:
                    specified_tb = -1
                    sampler.on_unit_complete(
                        issued - unit_i0, max(1, now - unit_t0), now, issued
                    )
                sampler.on_retire(tb.tb_id, now, issued)
            while resident[si] < occ:
                if not dispatch_to(si, now):
                    break

        # Initial greedy fill: thread blocks go to SMs round-robin.
        for _slot in range(occ):
            for si in range(num_sms):
                if not dispatch_to(si, 0):
                    break

        event_heap: list = [(0, si) for si in range(num_sms) if nxts[si]]

        # Hot-loop local bindings.
        mem = self.mem
        mem_load = mem.load
        pop, push = heappop, heappush
        replace = heapreplace
        bisect = bisect_left
        lrr = cfg.scheduler == "lrr"
        rec = recorder
        rec_on = rec is not None
        if rec_on:
            rec_bbv = rec.cur_bbv
            rec_nbb = rec.num_bbs
            rec_unit = rec.unit_insts
            rec_left = rec_unit
            rec_flush = rec.flush
        # Without hooks, non-memory instructions of the SM's sole
        # ready warp touch only private state, so segments may run past
        # the next *global* event; with a sampler or recorder observing
        # the global instruction order, every batch must stay strictly
        # before it.  Memory ops and trace-ending retires always must
        # (shared caches / DRAM / dispatch bookkeeping).
        no_hooks = not has_sampler and not rec_on
        wall = 0

        # Counter locals (folded into SimCounters at the end).
        n_events = 0
        n_pushes = 0
        n_seg_hits = 0
        n_seg_insts = 0
        n_mem = 0
        n_txn = 0
        n_rounds = 0

        # Fast-path engagement snapshot: the hierarchy's counters are
        # cumulative over the simulator's lifetime (reset() zeroes them
        # only when reset_memory is set), so deltas are taken per run.
        mb0 = mem.batches
        md0 = mem.dedup_txns
        m1h0 = mem.batch_l1_hits
        m2h0 = mem.batch_l2_hits
        mvd0 = mem.vector_drains
        msp0 = tuple(getattr(mem.l2, "shard_probes", ()))

        # One global event per SM *window*, not per instruction.  Warps
        # on one SM interact with the rest of the machine only through
        # (a) memory instructions (shared L2/DRAM state and its
        # access-order-dependent timing), (b) thread-block retirement
        # (global dispatch bookkeeping), and (c) sampler/recorder hooks
        # (which observe the global instruction order).  Everything else
        # is private to the SM, so a window simulates the SM's own warp
        # pool in a tight local loop and only defers back to the global
        # heap when one of those *barrier* instructions would run at or
        # past the next global event.
        barrier_all = not no_hooks

        # ---- specialized window loop: no hooks, default scheduler ----
        # The common experiment configuration (no sampler, no recorder,
        # "oldest" scheduling) gets a copy of the window loop with every
        # per-instruction conditional that is constant in that mode
        # removed: no hook accounting, no lrr sequence renumbering, and
        # the issued/busy-cycle tallies accumulate in window-local
        # variables flushed at window end instead of per instruction.
        # The window-entry exemption ("first") collapses to a constant
        # per-window defer threshold (the global heap only changes at
        # defers).  It drains the event heap completely, so the general
        # loop below is skipped; results are bit-identical to both the
        # general loop and the reference engine.
        #
        # Pool structure: each SM's warp pool is a binary heap of the
        # mutable entries — one C-level heapreplace per requeue.  Any
        # pool structure that extracts strictly in (ready, seq) order
        # yields identical results, so the choice is invisible in the
        # output; it is a pure performance decision.  The round
        # structure the general loop below uses (sorted list consumed
        # through a cursor, plus an unsorted spill) was measured
        # against the heap on all twelve registry kernels: DRAM
        # completion jitter preempts the round head on nearly every
        # memory return, degenerating rounds into per-issue
        # insorts/re-sorts, and the heap won everywhere — 0.65-0.99x
        # of the round time, worst exactly on the memory-bound kernels
        # this PR targets (DESIGN.md §8).
        if no_hooks and not lrr:
            whs = []
            for si in range(num_sms):
                wh = nxts[si]
                nxts[si] = []
                nxtmins[si] = _INF
                heapify(wh)
                whs.append(wh)
            # lint: hot
            while event_heap:
                n_events += 1
                t, si = pop(event_heap)
                wh = whs[si]
                if not wh:
                    continue
                # Barrier threshold: constant per window (the global
                # heap only changes at defers).  A barrier at t >= hbar
                # would run at/past the next global event, so it defers
                # and lets (cycle, sm) order decide, exactly as the
                # reference heap does.
                if event_heap:
                    h = event_heap[0]
                    hbar = h[0] if h[1] < si else h[0] + 1
                else:
                    hbar = _INF
                wi = 0
                wlast = -1
                while True:  # issue slots within this SM's window
                    e = wh[0]
                    r = e[0]
                    if r > t:
                        # Idle skip: flush the contiguous issue streak.
                        if wi:
                            issued += wi
                            per_sm_issued[si] += wi
                            wlast = t - 1
                            wi = 0
                        t = r
                    pc = e[3]
                    if pc == e[5]:
                        # ---- stop: next memory op or trace end -------
                        w = e[2]
                        mi = e[7]
                        if mi < w.m and w.pos[mi] == pc:
                            # Memory instruction (always a barrier).
                            if t >= hbar:
                                push(event_heap, (t, si))
                                n_pushes += 1
                                break
                            mr = w.mreq[mi]
                            done = mem_load(
                                si, w.maddr[mi], w.mspread[mi], mr, t
                            )
                            n_mem += 1
                            n_txn += mr
                            mi += 1
                            e[7] = mi
                            wi += 1
                            pc += 1
                            if pc < e[6]:
                                e[3] = pc
                                e[5] = w.pos[mi] if mi < w.m else e[6] - 1
                                e[0] = done
                                # In-place root update: if the new key
                                # stays strictly below both children
                                # (seq ties are impossible — seqs are
                                # unique), heapreplace would sift the
                                # entry straight back to the root and
                                # leave the array untouched, so skip
                                # it.  With sibling warps stalled on
                                # DRAM this is the common case.
                                n2 = len(wh)
                                if n2 > 1:
                                    bound = wh[1][0]
                                    if n2 > 2:
                                        b2 = wh[2][0]
                                        if b2 < bound:
                                            bound = b2
                                    if done >= bound:
                                        replace(wh, e)
                                t += 1
                                continue
                            pop(wh)
                            tb = w.tb
                            tb.live -= 1
                            if tb.live == 0:
                                retire_tb(tb, si, t + 1)
                                nxt = nxts[si]
                                if nxt:
                                    for x in nxt:
                                        push(wh, x)
                                    nxt.clear()
                                    nxtmins[si] = _INF
                            t += 1
                            if not wh:
                                break
                            continue
                        # Final (non-memory) instruction; a barrier only
                        # when it retires the block's last live warp.
                        tb = w.tb
                        if tb.live == 1 and t >= hbar:
                            push(event_heap, (t, si))
                            n_pushes += 1
                            break
                        pop(wh)
                        wi += 1
                        tb.live -= 1
                        if tb.live == 0:
                            retire_tb(tb, si, t + 1)
                            nxt = nxts[si]
                            if nxt:
                                for x in nxt:
                                    push(wh, x)
                                nxt.clear()
                                nxtmins[si] = _INF
                        t += 1
                        if not wh:
                            break
                        continue
                    # ---- non-memory, non-final instruction -----------
                    done = t + e[4][pc]
                    pc1 = pc + 1
                    # Segment bound: the pool's next-ready entry after e
                    # is the smaller of the root's children (e is still
                    # at the root).  The same bound doubles as the
                    # in-place-root test: while the updated key stays
                    # strictly below both children (seq ties impossible,
                    # seqs are unique), heapreplace would return the
                    # entry to the root without moving anything else,
                    # so the heap is left untouched.
                    n2 = len(wh)
                    if n2 > 1:
                        bound = wh[1][0]
                        if n2 > 2:
                            b2 = wh[2][0]
                            if b2 < bound:
                                bound = b2
                    else:
                        bound = _INF
                    if done < bound:
                        w = e[2]
                        if w.batchable:
                            cum = w.cum
                            limit = e[5]
                            base = cum[pc]
                            idx = pc1
                            if idx < limit:
                                idx = bisect(
                                    cum, base + bound - t, idx + 1, limit
                                )
                            u = idx - pc
                            if u >= 2:
                                n_seg_hits += 1
                                n_seg_insts += u
                                done = t + cum[idx] - base
                                e[3] = idx
                                e[0] = done
                                if done >= bound:
                                    replace(wh, e)
                                wi += u
                                t = t + cum[idx - 1] - base + 1
                                continue
                        e[3] = pc1
                        e[0] = done
                        wi += 1
                        t += 1
                        continue
                    e[3] = pc1
                    e[0] = done
                    replace(wh, e)
                    wi += 1
                    t += 1

                if wi:
                    issued += wi
                    per_sm_issued[si] += wi
                    wlast = t - 1
                if wlast >= 0:
                    per_sm_last[si] = wlast
                    if wlast > wall:
                        wall = wlast

        # lint: hot
        while event_heap:
            n_events += 1
            t, si = pop(event_heap)
            rnd = rnds[si]
            ri = ris[si]
            rlen = len(rnd)
            nxt = nxts[si]
            # The spill list's identity never changes within a window
            # (only cleared and refilled), so its bound methods are
            # looked up once per window, not once per issue slot.
            nxt_append = nxt.append
            nxt_clear = nxt.clear
            nxtmin = nxtmins[si]
            first = True
            last_t = -1
            while True:  # issue slots within this SM's window
                # ---- extract the pool minimum ------------------------
                if ri == rlen:
                    if not nxt:
                        break  # SM drained; nothing left to schedule
                    # Round rebuild: one allocation per *round*, not
                    # per issue slot — the amortized cost the round
                    # structure is built on.
                    rnd = sorted(nxt)  # lint: disable=HOT002
                    nxt_clear()
                    rnds[si] = rnd
                    ri = 0
                    rlen = len(rnd)
                    nxtmin = _INF
                    n_rounds += 1
                e = rnd[ri]
                if nxt and nxtmin <= e[0]:
                    # A re-queued entry ties or beats the sorted head:
                    # merge so (ready, seq) order is preserved exactly.
                    # Same once-per-round amortization as above.
                    rnd = sorted(rnd[ri:] + nxt)  # lint: disable=HOT002
                    nxt_clear()
                    rnds[si] = rnd
                    ri = 0
                    rlen = len(rnd)
                    nxtmin = _INF
                    n_rounds += 1
                    e = rnd[0]
                r = e[0]
                if r > t:
                    # Idle skip within the SM: the next slot time moved;
                    # it no longer holds the priority the popped event
                    # had, so barriers must be re-validated.
                    t = r
                    first = False
                pc = e[3]
                if pc == e[5]:
                    # ---- stop instruction: next memory op or trace end
                    w = e[2]
                    mi = e[7]
                    if mi < w.m and w.pos[mi] == pc:
                        # Memory instruction (always a barrier).
                        if not first:
                            eh = event_heap
                            if eh and eh[0][0] <= t:
                                # Would run at/past the next global
                                # event: leave the entry unconsumed and
                                # let global order decide (ties break on
                                # SM id, as the reference heap does).
                                push(eh, (t, si))
                                n_pushes += 1
                                break
                        first = False
                        ri += 1
                        mr = w.mreq[mi]
                        done = mem_load(
                            si, w.maddr[mi], w.mspread[mi], mr, t
                        )
                        n_mem += 1
                        n_txn += mr
                        mi += 1
                        e[7] = mi
                        issued += 1
                        per_sm_issued[si] += 1
                        last_t = t
                        if rec_on:
                            rec_bbv[w.bb[pc]] += 1
                            rec_left -= 1
                            if rec_left == 0:
                                rec_bbv = rec_flush(t + 1, rec_unit)
                                rec_left = rec_unit
                        pc += 1
                        if pc < e[6]:
                            e[3] = pc
                            e[5] = w.pos[mi] if mi < w.m else e[6] - 1
                            if lrr:
                                e[1] = seq_counter
                                seq_counter += 1
                            e[0] = done
                            nxt_append(e)
                            if done < nxtmin:
                                nxtmin = done
                        else:
                            tb = w.tb
                            tb.live -= 1
                            if tb.live == 0:
                                nxtmins[si] = nxtmin
                                retire_tb(tb, si, t + 1)
                                nxtmin = nxtmins[si]
                        t += 1
                        continue
                    # Final (non-memory) instruction: retiring the
                    # block's last live warp mutates global dispatch
                    # state (a barrier).
                    tb = w.tb
                    if (barrier_all or tb.live == 1) and not first:
                        eh = event_heap
                        if eh and eh[0][0] <= t:
                            push(eh, (t, si))
                            n_pushes += 1
                            break
                    first = False
                    ri += 1
                    issued += 1
                    per_sm_issued[si] += 1
                    last_t = t
                    if rec_on:
                        rec_bbv[w.bb[pc]] += 1
                        rec_left -= 1
                        if rec_left == 0:
                            rec_bbv = rec_flush(t + 1, rec_unit)
                            rec_left = rec_unit
                    tb.live -= 1
                    if tb.live == 0:
                        nxtmins[si] = nxtmin
                        retire_tb(tb, si, t + 1)
                        nxtmin = nxtmins[si]
                    t += 1
                    continue
                # ---- non-memory, non-final instruction ---------------
                if barrier_all and not first:
                    eh = event_heap
                    if eh and eh[0][0] <= t:
                        push(eh, (t, si))
                        n_pushes += 1
                        break
                done = t + e[4][pc]
                pc1 = pc + 1
                first = False
                ri += 1
                # Segment extension: bounded by the SM's next-ready
                # entry — minimum over both pool halves — and, when
                # hooks observe the global order, the next global event.
                if ri < rlen:
                    bound = rnd[ri][0]
                    if nxtmin < bound:
                        bound = nxtmin
                else:
                    bound = nxtmin  # _INF when nothing is queued
                if barrier_all and event_heap:
                    e2 = event_heap[0][0]
                    if e2 < bound:
                        bound = e2
                if done < bound:
                    w = e[2]
                    if w.batchable:
                        cum = w.cum
                        # The stop pc caps the batch: memory ops and the
                        # final instruction always take their own slot
                        # (they are barriers with their own defer rules).
                        limit = e[5]
                        base = cum[pc]
                        idx = pc1
                        if idx < limit:
                            idx = bisect(cum, base + bound - t, idx + 1, limit)
                        u = idx - pc
                        if u >= 2:
                            n_seg_hits += 1
                            n_seg_insts += u
                            last_t = t + cum[idx - 1] - base
                            done = t + cum[idx] - base
                            issued += u
                            per_sm_issued[si] += u
                            if rec_on:
                                bb = w.bb
                                j = pc
                                while j < idx:
                                    take = idx - j
                                    if take > rec_left:
                                        take = rec_left
                                    if take < _BINCOUNT_MIN:
                                        for b in bb[j:j + take]:
                                            rec_bbv[b] += 1
                                    else:
                                        # Amortized over >= _BINCOUNT_MIN
                                        # instructions; the vectorized
                                        # tally beats the scalar loop
                                        # despite the temporary.
                                        # lint: disable=HOT002
                                        rec_bbv += np.bincount(
                                            w.bb_np[j:j + take],
                                            minlength=rec_nbb,
                                        )
                                    rec_left -= take
                                    j += take
                                    if rec_left == 0:
                                        rec_bbv = rec_flush(
                                            t + cum[j - 1] - base + 1, rec_unit
                                        )
                                        rec_left = rec_unit
                            if lrr:
                                # One fresh sequence number per notional
                                # re-queue within the batch.
                                seq_counter += u
                                e[1] = seq_counter - 1
                            e[3] = idx
                            e[0] = done
                            nxt_append(e)
                            if done < nxtmin:
                                nxtmin = done
                            t = last_t + 1
                            continue
                # Single non-final issue (covers degenerate zero-stall
                # traces, whose raw ``done = t + stall`` is exact).
                issued += 1
                per_sm_issued[si] += 1
                last_t = t
                if rec_on:
                    rec_bbv[e[2].bb[pc]] += 1
                    rec_left -= 1
                    if rec_left == 0:
                        rec_bbv = rec_flush(t + 1, rec_unit)
                        rec_left = rec_unit
                e[3] = pc1
                if lrr:
                    e[1] = seq_counter
                    seq_counter += 1
                e[0] = done
                nxt_append(e)
                if done < nxtmin:
                    nxtmin = done
                t += 1

            ris[si] = ri
            nxtmins[si] = nxtmin
            if last_t >= 0:
                per_sm_last[si] = last_t
                if last_t > wall:
                    wall = last_t

        wall += 1  # the last issue occupies its cycle
        if has_sampler:
            sampler.finalize(wall, issued)
        if rec_on:
            rec.finalize(wall, rec.unit_insts - rec_left)

        # Sharded-L2 per-shard probe deltas over this run (empty for
        # the unified organization) and their skew summary.
        cur_probes = getattr(mem.l2, "shard_probes", None)
        if cur_probes is not None:
            shard_probes = tuple(p - q for p, q in zip(cur_probes, msp0))
            total_probes = sum(shard_probes)
            shard_imbalance = (
                max(shard_probes) * len(shard_probes) / total_probes - 1.0
                if total_probes
                else 0.0
            )
        else:
            shard_probes = ()
            shard_imbalance = 0.0

        counters = SimCounters(
            events_popped=n_events,
            heap_pushes=n_pushes,
            segment_hits=n_seg_hits,
            segment_insts=n_seg_insts,
            interning_hits=intern_hits,
            interning_misses=intern_misses,
            rounds_sorted=n_rounds,
            mem_insts=n_mem,
            mem_txns=n_txn,
            mem_batches=mem.batches - mb0,
            mem_dedup_txns=mem.dedup_txns - md0,
            mem_batch_l1_hits=mem.batch_l1_hits - m1h0,
            mem_batch_l2_hits=mem.batch_l2_hits - m2h0,
            mem_vector_drains=mem.vector_drains - mvd0,
            l2_shard_probes=shard_probes,
            l2_shard_imbalance=shard_imbalance,
            block_regenerations=launch.regenerations - regen0,
        )
        return LaunchResult(
            launch_id=launch.launch_id,
            issued_warp_insts=issued,
            wall_cycles=wall,
            per_sm_issued=per_sm_issued,
            per_sm_busy_cycles=[last + 1 for last in per_sm_last],
            skipped_warp_insts=sampler.skipped_warp_insts if has_sampler else 0,
            extra_cycles=sampler.extra_cycles if has_sampler else 0.0,
            mem_stats=self.mem.stats(),
            counters=counters,
        )

    # ------------------------------------------------------------------
    # Reference engine: the original per-instruction loop, kept as the
    # equivalence oracle for the compact engine.
    # ------------------------------------------------------------------

    def _run_launch_reference(
        self,
        launch: LaunchTrace,
        sampler: DispatchSampler | None,
        recorder: FixedUnitRecorder | None,
        reset_memory: bool,
    ) -> LaunchResult:
        cfg = self.config
        if reset_memory:
            self.mem.reset()
        num_sms = cfg.num_sms
        occ = cfg.sm_occupancy(launch.warps_per_block)
        num_blocks = launch.num_blocks

        wheaps: list[list] = [[] for _ in range(num_sms)]
        resident = [0] * num_sms
        per_sm_issued = [0] * num_sms
        per_sm_last = [-1] * num_sms

        # Dispatch bookkeeping (mutated by closures below).
        next_tb = 0
        dispatch_free = 0  # the global scheduler issues one block at a time
        seq_counter = 0
        specified_tb = -1
        unit_t0 = 0
        unit_i0 = 0
        issued = 0

        get_block = launch.block
        has_sampler = sampler is not None

        def dispatch_to(si: int, now: int) -> bool:
            """Dispatch the next non-skipped thread block to SM ``si``;
            return False when the launch is exhausted."""
            nonlocal next_tb, dispatch_free, seq_counter
            nonlocal specified_tb, unit_t0, unit_i0
            while next_tb < num_blocks:
                tb_id = next_tb
                next_tb += 1
                if has_sampler and not sampler.on_dispatch(tb_id, now, issued):
                    continue  # fast-forwarded; sampler did the accounting
                # The global scheduler issues one block every few cycles,
                # and each block's warps launch back to back: dispatch is
                # serialized, which also keeps warps from running
                # phase-locked (as they would if everything started at
                # cycle 0 of the initial fill).
                start = dispatch_free if dispatch_free > now else now
                dispatch_free = start + 4
                block: BlockTrace = get_block(tb_id)
                tbst = _TBState(tb_id, len(block.warps))
                wh = wheaps[si]
                for stagger, wt in enumerate(block.warps):
                    heappush(
                        wh,
                        (start + 2 * stagger, seq_counter, _LegacyWarpState(wt, tbst)),
                    )
                    seq_counter += 1
                resident[si] += 1
                if has_sampler and specified_tb < 0:
                    specified_tb = tb_id
                    unit_t0 = now
                    unit_i0 = issued
                    sampler.on_unit_start(now)
                return True
            return False

        def retire_tb(tb: _TBState, si: int, now: int) -> None:
            nonlocal specified_tb
            resident[si] -= 1
            if has_sampler:
                if tb.tb_id == specified_tb:
                    specified_tb = -1
                    sampler.on_unit_complete(
                        issued - unit_i0, max(1, now - unit_t0), now, issued
                    )
                sampler.on_retire(tb.tb_id, now, issued)
            while resident[si] < occ:
                if not dispatch_to(si, now):
                    break

        # Initial greedy fill: thread blocks go to SMs round-robin.
        for _slot in range(occ):
            for si in range(num_sms):
                if not dispatch_to(si, 0):
                    break

        event_heap: list = []
        for si in range(num_sms):
            if wheaps[si]:
                heappush(event_heap, (0, si))

        # Hot-loop local bindings.
        mem_load = self.mem.load
        pop, push = heappop, heappush
        lrr = cfg.scheduler == "lrr"
        rec = recorder
        rec_on = rec is not None
        if rec_on:
            rec_bbv = rec.cur_bbv
            rec_left = rec.unit_insts
        wall = 0

        while event_heap:
            t, si = pop(event_heap)
            wh = wheaps[si]
            if not wh:
                continue
            r, seq, w = pop(wh)
            if r > t:
                # Composition changed since this slot was scheduled.
                push(wh, (r, seq, w))
                push(event_heap, (r, si))
                continue
            pc = w.pc
            mr = w.memreq[pc]
            if mr:
                done = mem_load(si, w.addr[pc], w.spread[pc], mr, t)
            else:
                done = t + w.stall[pc]
            issued += 1
            per_sm_issued[si] += 1
            per_sm_last[si] = t
            if t > wall:
                wall = t
            if rec_on:
                rec_bbv[w.bb[pc]] += 1
                rec_left -= 1
                if rec_left == 0:
                    rec.flush(t + 1, rec.unit_insts)
                    rec_bbv = rec.cur_bbv
                    rec_left = rec.unit_insts
            pc += 1
            if pc < w.n:
                w.pc = pc
                if lrr:
                    # Loose round-robin: re-queue with a fresh sequence
                    # number so ready warps are served least-recently-
                    # issued first.
                    seq = seq_counter
                    seq_counter += 1
                push(wh, (done, seq, w))
            else:
                tb = w.tb
                tb.live -= 1
                if tb.live == 0:
                    retire_tb(tb, si, t + 1)
            if wh:
                nt = wh[0][0]
                tp1 = t + 1
                push(event_heap, (nt if nt > tp1 else tp1, si))

        wall += 1  # the last issue occupies its cycle
        if has_sampler:
            sampler.finalize(wall, issued)
        if rec_on:
            rec.finalize(wall, rec.unit_insts - rec_left)

        return LaunchResult(
            launch_id=launch.launch_id,
            issued_warp_insts=issued,
            wall_cycles=wall,
            per_sm_issued=per_sm_issued,
            per_sm_busy_cycles=[last + 1 for last in per_sm_last],
            skipped_warp_insts=sampler.skipped_warp_insts if has_sampler else 0,
            extra_cycles=sampler.extra_cycles if has_sampler else 0.0,
            mem_stats=self.mem.stats(),
        )


__all__ = [
    "GPUSimulator",
    "LaunchResult",
    "FixedUnitRecorder",
    "UnitRecord",
    "SimCounters",
]
