"""Event-driven multi-SM timing simulator.

The engine keeps one global event heap of (cycle, sm) issue slots.
Popping an event issues exactly one warp instruction on that SM — from
its earliest-ready resident warp — then reschedules the SM for
``max(cycle + 1, next warp ready)``.  Cost is therefore
O(instructions x log) with idle cycles skipped by construction, per the
HPC guideline of spending time only where work happens.

Warp state is kept as plain Python lists (converted once per thread
block from the numpy trace): the hot loop does single-element random
access, where list indexing beats numpy scalar indexing by ~4x.

Sampling support (Section IV-B2):

* an optional :class:`~repro.sim.sampler_hooks.DispatchSampler` decides
  at dispatch time whether each thread block is simulated or skipped
  (fast-forward), and observes retirements;
* *sampling units* are tracked as the paper defines them — the interval
  between the dispatch and retirement of a *specified* thread block
  (first dispatched block at start; a new one is specified after each
  retirement) — and reported to the sampler;
* an optional :class:`FixedUnitRecorder` slices the run into
  fixed-instruction-count units with per-unit IPC and basic-block
  vectors, which is what the Random and Ideal-SimPoint baselines consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

import numpy as np

from repro.config import GPUConfig
from repro.sim.memory import MemoryHierarchy
from repro.sim.sampler_hooks import DispatchSampler
from repro.trace import STALL_CYCLES, LaunchTrace
from repro.trace.blocktrace import BlockTrace


class _WarpState:
    """Mutable per-warp execution state (lists for fast scalar access)."""

    __slots__ = ("pc", "n", "stall", "memreq", "addr", "spread", "bb", "tb")

    def __init__(self, trace, tb: "_TBState"):
        op = trace.op
        # Static scoreboard stall per instruction; 0 marks DRAM-bound
        # memory ops whose latency the hierarchy computes dynamically.
        self.stall = STALL_CYCLES[op].tolist()
        self.memreq = trace.mem_req.tolist()
        self.addr = trace.addr.tolist()
        self.spread = trace.spread.tolist()
        self.bb = trace.bb.tolist()
        self.pc = 0
        self.n = len(op)
        self.tb = tb


class _TBState:
    """Mutable per-thread-block state."""

    __slots__ = ("tb_id", "live")

    def __init__(self, tb_id: int, num_warps: int):
        self.tb_id = tb_id
        self.live = num_warps


@dataclass
class UnitRecord:
    """One fixed-size sampling unit of a full simulation run."""

    start_cycle: int
    end_cycle: int
    insts: int
    bbv: np.ndarray | None = None

    @property
    def cycles(self) -> int:
        return max(1, self.end_cycle - self.start_cycle)

    @property
    def ipc(self) -> float:
        """Machine-wide IPC of the unit."""
        return self.insts / self.cycles

    @property
    def cpi(self) -> float:
        return self.cycles / self.insts


class FixedUnitRecorder:
    """Slices a run into units of ``unit_insts`` machine-wide warp
    instructions, recording per-unit IPC and (optionally) the BBV.

    This reproduces the measurement the paper's baselines need: "we
    collect IPC for every sampling unit with one million instructions"
    (Random) and "we collect the BBV and IPC for every sampling unit"
    (Ideal-SimPoint).
    """

    def __init__(self, unit_insts: int, num_bbs: int, record_bbv: bool = True):
        if unit_insts < 1:
            raise ValueError("unit_insts must be positive")
        if num_bbs < 1:
            raise ValueError("num_bbs must be positive")
        self.unit_insts = unit_insts
        self.num_bbs = num_bbs
        self.record_bbv = record_bbv
        self.units: list[UnitRecord] = []
        self._start = 0
        self.cur_bbv = np.zeros(num_bbs, dtype=np.int64)

    def flush(self, now: int, insts: int) -> None:
        """Close the current unit at cycle ``now`` with ``insts``
        instructions and open the next one."""
        bbv = None
        if self.record_bbv:
            bbv = self.cur_bbv
            self.cur_bbv = np.zeros(self.num_bbs, dtype=np.int64)
        self.units.append(
            UnitRecord(start_cycle=self._start, end_cycle=now, insts=insts, bbv=bbv)
        )
        self._start = now

    def finalize(self, now: int, leftover: int) -> None:
        """Close a trailing partial unit, if any instructions remain."""
        if leftover > 0:
            self.flush(now, leftover)

    @property
    def ipcs(self) -> np.ndarray:
        return np.array([u.ipc for u in self.units])

    @property
    def cpis(self) -> np.ndarray:
        return np.array([u.cpi for u in self.units])

    @property
    def inst_counts(self) -> np.ndarray:
        return np.array([u.insts for u in self.units], dtype=np.int64)

    def bbv_matrix(self, normalize: bool = True) -> np.ndarray:
        """(num_units, num_bbs) matrix of basic-block vectors; rows are
        normalized by the unit's instruction count (Eq. 1's BBV)."""
        if not self.record_bbv:
            raise ValueError("recorder was created with record_bbv=False")
        mat = np.stack([u.bbv for u in self.units]).astype(np.float64)
        if normalize:
            totals = mat.sum(axis=1, keepdims=True)
            totals[totals == 0] = 1.0
            mat /= totals
        return mat


@dataclass
class LaunchResult:
    """Timing result of one (possibly sampled) launch simulation."""

    launch_id: int
    issued_warp_insts: int
    wall_cycles: int
    per_sm_issued: list[int]
    per_sm_busy_cycles: list[int]
    skipped_warp_insts: int = 0
    extra_cycles: float = 0.0
    mem_stats: dict = field(default_factory=dict)

    @property
    def machine_ipc(self) -> float:
        """Measured machine-wide IPC (issued instructions / wall cycles),
        counting only simulated work."""
        return self.issued_warp_insts / max(1, self.wall_cycles)

    @property
    def per_sm_ipc_sum(self) -> float:
        """The paper's Fig. 9 overall-IPC definition:
        sum over SMs of warp_insts_k / cycles_k."""
        return sum(
            i / c for i, c in zip(self.per_sm_issued, self.per_sm_busy_cycles) if c > 0
        )

    @property
    def total_warp_insts(self) -> int:
        """Simulated plus fast-forwarded warp instructions — equals the
        launch's functional instruction count."""
        return self.issued_warp_insts + self.skipped_warp_insts

    @property
    def est_cycles(self) -> float:
        """Estimated cycles for the whole launch: measured wall cycles
        plus the predicted time of fast-forwarded regions (Table IV)."""
        return self.wall_cycles + self.extra_cycles

    @property
    def est_ipc(self) -> float:
        """Estimated machine IPC for the whole launch."""
        return self.total_warp_insts / max(1.0, self.est_cycles)

    @property
    def sampled_fraction(self) -> float:
        """Fraction of the launch's warp instructions actually simulated
        (the Fig. 10 sample-size numerator for this launch)."""
        total = self.total_warp_insts
        return self.issued_warp_insts / total if total else 0.0


class GPUSimulator:
    """Trace-driven, event-driven multi-SM GPU timing simulator."""

    def __init__(self, config: GPUConfig | None = None):
        self.config = config or GPUConfig()
        self.mem = MemoryHierarchy(self.config)

    def run_launch(
        self,
        launch: LaunchTrace,
        sampler: DispatchSampler | None = None,
        recorder: FixedUnitRecorder | None = None,
        reset_memory: bool = True,
    ) -> LaunchResult:
        """Simulate one kernel launch.

        Parameters
        ----------
        launch:
            The launch trace; thread blocks are dispatched greedily in
            ID order, round-robin across SMs.
        sampler:
            Optional intra-launch sampler (TBPoint's homogeneous-region
            sampling).  ``None`` simulates everything at full speed.
        recorder:
            Optional fixed-size-unit recorder (baseline measurement).
        reset_memory:
            Invalidate caches and DRAM bank state first, making every
            launch's timing independent of simulation order (required
            for representative-launch sampling to be meaningful).
        """
        cfg = self.config
        if reset_memory:
            self.mem.reset()
        num_sms = cfg.num_sms
        occ = cfg.sm_occupancy(launch.warps_per_block)
        num_blocks = launch.num_blocks

        wheaps: list[list] = [[] for _ in range(num_sms)]
        resident = [0] * num_sms
        per_sm_issued = [0] * num_sms
        per_sm_last = [0] * num_sms

        # Dispatch bookkeeping (mutated by closures below).
        next_tb = 0
        dispatch_free = 0  # the global scheduler issues one block at a time
        seq_counter = 0
        specified_tb = -1
        unit_t0 = 0
        unit_i0 = 0
        issued = 0

        get_block = launch.block
        has_sampler = sampler is not None

        def dispatch_to(si: int, now: int) -> bool:
            """Dispatch the next non-skipped thread block to SM ``si``;
            return False when the launch is exhausted."""
            nonlocal next_tb, dispatch_free, seq_counter
            nonlocal specified_tb, unit_t0, unit_i0
            while next_tb < num_blocks:
                tb_id = next_tb
                next_tb += 1
                if has_sampler and not sampler.on_dispatch(tb_id, now, issued):
                    continue  # fast-forwarded; sampler did the accounting
                # The global scheduler issues one block every few cycles,
                # and each block's warps launch back to back: dispatch is
                # serialized, which also keeps warps from running
                # phase-locked (as they would if everything started at
                # cycle 0 of the initial fill).
                start = dispatch_free if dispatch_free > now else now
                dispatch_free = start + 4
                block: BlockTrace = get_block(tb_id)
                tbst = _TBState(tb_id, len(block.warps))
                wh = wheaps[si]
                for stagger, wt in enumerate(block.warps):
                    heappush(
                        wh, (start + 2 * stagger, seq_counter, _WarpState(wt, tbst))
                    )
                    seq_counter += 1
                resident[si] += 1
                if has_sampler and specified_tb < 0:
                    specified_tb = tb_id
                    unit_t0 = now
                    unit_i0 = issued
                    sampler.on_unit_start(now)
                return True
            return False

        def retire_tb(tb: _TBState, si: int, now: int) -> None:
            nonlocal specified_tb
            resident[si] -= 1
            if has_sampler:
                if tb.tb_id == specified_tb:
                    specified_tb = -1
                    sampler.on_unit_complete(
                        issued - unit_i0, max(1, now - unit_t0), now, issued
                    )
                sampler.on_retire(tb.tb_id, now, issued)
            while resident[si] < occ:
                if not dispatch_to(si, now):
                    break

        # Initial greedy fill: thread blocks go to SMs round-robin.
        for _slot in range(occ):
            for si in range(num_sms):
                if not dispatch_to(si, 0):
                    break

        event_heap: list = []
        for si in range(num_sms):
            if wheaps[si]:
                heappush(event_heap, (0, si))

        # Hot-loop local bindings.
        mem_load = self.mem.load
        pop, push = heappop, heappush
        lrr = cfg.scheduler == "lrr"
        rec = recorder
        rec_on = rec is not None
        if rec_on:
            rec_bbv = rec.cur_bbv
            rec_left = rec.unit_insts
        wall = 0

        while event_heap:
            t, si = pop(event_heap)
            wh = wheaps[si]
            if not wh:
                continue
            r, seq, w = pop(wh)
            if r > t:
                # Composition changed since this slot was scheduled.
                push(wh, (r, seq, w))
                push(event_heap, (r, si))
                continue
            pc = w.pc
            mr = w.memreq[pc]
            if mr:
                done = mem_load(si, w.addr[pc], w.spread[pc], mr, t)
            else:
                done = t + w.stall[pc]
            issued += 1
            per_sm_issued[si] += 1
            per_sm_last[si] = t
            if t > wall:
                wall = t
            if rec_on:
                rec_bbv[w.bb[pc]] += 1
                rec_left -= 1
                if rec_left == 0:
                    rec.flush(t + 1, rec.unit_insts)
                    rec_bbv = rec.cur_bbv
                    rec_left = rec.unit_insts
            pc += 1
            if pc < w.n:
                w.pc = pc
                if lrr:
                    # Loose round-robin: re-queue with a fresh sequence
                    # number so ready warps are served least-recently-
                    # issued first.
                    seq = seq_counter
                    seq_counter += 1
                push(wh, (done, seq, w))
            else:
                tb = w.tb
                tb.live -= 1
                if tb.live == 0:
                    retire_tb(tb, si, t + 1)
            if wh:
                nt = wh[0][0]
                tp1 = t + 1
                push(event_heap, (nt if nt > tp1 else tp1, si))

        wall += 1  # the last issue occupies its cycle
        if has_sampler:
            sampler.finalize(wall, issued)
        if rec_on:
            rec.finalize(wall, rec.unit_insts - rec_left)

        return LaunchResult(
            launch_id=launch.launch_id,
            issued_warp_insts=issued,
            wall_cycles=wall,
            per_sm_issued=per_sm_issued,
            per_sm_busy_cycles=[last + 1 for last in per_sm_last],
            skipped_warp_insts=sampler.skipped_warp_insts if has_sampler else 0,
            extra_cycles=sampler.extra_cycles if has_sampler else 0.0,
            mem_stats=self.mem.stats(),
        )


__all__ = ["GPUSimulator", "LaunchResult", "FixedUnitRecorder", "UnitRecord"]
