"""Warm per-worker simulator state for launch-level parallel simulation.

When :func:`~repro.exec.engine.parallel_map` fans representative-launch
(or full-run) simulations across worker processes, each task needs a
:class:`~repro.sim.gpu.GPUSimulator`.  Building one per task would
throw away the simulator-lifetime trace interning cache (DESIGN.md §7)
that makes re-simulating the near-identical relaunches of one kernel
cheap — exactly the case launch fan-out handles.  Instead the pool is
spawned with :func:`init_worker` as its initializer, which builds one
simulator per worker process; tasks then fetch it with
:func:`get_simulator`, which reuses the warm instance whenever the
requested (config, engine, front end) triple matches and transparently
rebuilds it otherwise (e.g. a respawned pool serving a different sweep
point, or the in-parent serial fallback of a degraded task).

The *identity under which a warm simulator may be reused* is factored
out as :func:`simulator_key` / :func:`simulator_matches` so every warm
registry in the tree — this per-process slot, and the multi-engine
keyed registry the ``repro serve`` daemon keeps across requests — keys
engines the same way and can never reuse across a config change.

Correctness does not depend on reuse: ``run_launch`` resets the memory
hierarchy per launch and the interning cache is an id-pinned pure
cache, so a warm simulator is bit-identical to a fresh one (the
parallel-vs-serial property tests cover this path).  The module global
is per-process state — never pickled, never shared.

PR 9 widened the single warm slot into a small keyed registry
(:data:`MAX_WARM_SIMULATORS` entries, FIFO-evicted): the serve
daemon's long-lived worker processes serve arbitrary request mixes, and
a single slot thrashes — alternate ``compact``/``reference`` requests
would rebuild the simulator (and throw away its interning tables) on
every job.  Sweep fan-out workers see exactly the old behavior: one
triple, one resident simulator.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.gpu import GPUSimulator

#: Warm simulators kept per process before the oldest is evicted.
#: Small on purpose: each holds engine state plus interning tables, and
#: one process rarely serves more than a few distinct triples.
MAX_WARM_SIMULATORS = 4

#: The process-local warm registry, keyed by :func:`simulator_key`
#: (insertion-ordered dict → FIFO eviction).
_SIMS: dict[tuple, GPUSimulator] = {}


def simulator_key(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> tuple:
    """The reuse identity of a warm simulator: the exact (config,
    engine, front end) triple.  :class:`~repro.config.GPUConfig` is a
    frozen (hashable, eq-by-value) dataclass, so the tuple is usable
    directly as a registry key and two keys compare equal iff a
    simulator built for one is interchangeable with the other."""
    return (gpu, engine, mem_front_end)


def simulator_matches(
    sim: GPUSimulator,
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> bool:
    """Is this warm simulator reusable for the requested triple?"""
    return (
        sim.config == gpu
        and sim.engine == engine
        and sim.mem_front_end == mem_front_end
    )


def init_worker(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> None:
    """Process-pool initializer: build this worker's simulator once.

    Runs at worker spawn (including pool respawns after a broken
    pool).  Only *primes* state — results never depend on it.
    """
    _SIMS.clear()
    get_simulator(gpu, engine=engine, mem_front_end=mem_front_end)


def get_simulator(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> GPUSimulator:
    """The process-local simulator for this configuration triple.

    Returns the resident instance for the triple when one exists
    (built by :func:`init_worker` or a previous task) and builds —
    and registers — a replacement otherwise, evicting the oldest
    resident past :data:`MAX_WARM_SIMULATORS`.
    """
    key = simulator_key(gpu, engine, mem_front_end)
    sim = _SIMS.get(key)
    if sim is None:
        sim = GPUSimulator(gpu, engine=engine, mem_front_end=mem_front_end)
        while len(_SIMS) >= MAX_WARM_SIMULATORS:
            _SIMS.pop(next(iter(_SIMS)))
        _SIMS[key] = sim
    return sim


def warm_simulator_count() -> int:
    """How many simulators this process keeps resident (tests and
    worker stats)."""
    return len(_SIMS)


__all__ = [
    "MAX_WARM_SIMULATORS",
    "init_worker",
    "get_simulator",
    "simulator_key",
    "simulator_matches",
    "warm_simulator_count",
]
