"""Warm per-worker simulator state for launch-level parallel simulation.

When :func:`~repro.exec.engine.parallel_map` fans representative-launch
(or full-run) simulations across worker processes, each task needs a
:class:`~repro.sim.gpu.GPUSimulator`.  Building one per task would
throw away the simulator-lifetime trace interning cache (DESIGN.md §7)
that makes re-simulating the near-identical relaunches of one kernel
cheap — exactly the case launch fan-out handles.  Instead the pool is
spawned with :func:`init_worker` as its initializer, which builds one
simulator per worker process; tasks then fetch it with
:func:`get_simulator`, which reuses the warm instance whenever the
requested (config, engine, front end) triple matches and transparently
rebuilds it otherwise (e.g. a respawned pool serving a different sweep
point, or the in-parent serial fallback of a degraded task).

Correctness does not depend on reuse: ``run_launch`` resets the memory
hierarchy per launch and the interning cache is an id-pinned pure
cache, so a warm simulator is bit-identical to a fresh one (the
parallel-vs-serial property tests cover this path).  The module global
is per-process state — never pickled, never shared.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.gpu import GPUSimulator

#: The process-local warm simulator (None until first use).
_SIM: GPUSimulator | None = None


def init_worker(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> None:
    """Process-pool initializer: build this worker's simulator once.

    Runs at worker spawn (including pool respawns after a broken
    pool).  Only *primes* state — results never depend on it.
    """
    global _SIM
    _SIM = GPUSimulator(gpu, engine=engine, mem_front_end=mem_front_end)


def get_simulator(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> GPUSimulator:
    """The process-local simulator for this configuration triple.

    Returns the warm instance built by :func:`init_worker` (or by a
    previous task) when configuration, engine and memory front end all
    match — :class:`~repro.config.GPUConfig` is a frozen dataclass, so
    the comparison is exact — and builds a replacement otherwise.
    """
    global _SIM
    sim = _SIM
    if (
        sim is None
        or sim.config != gpu
        or sim.engine != engine
        or sim.mem_front_end != mem_front_end
    ):
        sim = GPUSimulator(gpu, engine=engine, mem_front_end=mem_front_end)
        _SIM = sim
    return sim


__all__ = ["init_worker", "get_simulator"]
