"""Warm per-worker simulator state for launch-level parallel simulation.

When :func:`~repro.exec.engine.parallel_map` fans representative-launch
(or full-run) simulations across worker processes, each task needs a
:class:`~repro.sim.gpu.GPUSimulator`.  Building one per task would
throw away the simulator-lifetime trace interning cache (DESIGN.md §7)
that makes re-simulating the near-identical relaunches of one kernel
cheap — exactly the case launch fan-out handles.  Instead the pool is
spawned with :func:`init_worker` as its initializer, which builds one
simulator per worker process; tasks then fetch it with
:func:`get_simulator`, which reuses the warm instance whenever the
requested (config, engine, front end) triple matches and transparently
rebuilds it otherwise (e.g. a respawned pool serving a different sweep
point, or the in-parent serial fallback of a degraded task).

The *identity under which a warm simulator may be reused* is factored
out as :func:`simulator_key` / :func:`simulator_matches` so every warm
registry in the tree — this per-process slot, and the multi-engine
keyed registry the ``repro serve`` daemon keeps across requests — keys
engines the same way and can never reuse across a config change.

Correctness does not depend on reuse: ``run_launch`` resets the memory
hierarchy per launch and the interning cache is an id-pinned pure
cache, so a warm simulator is bit-identical to a fresh one (the
parallel-vs-serial property tests cover this path).  The module global
is per-process state — never pickled, never shared.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.gpu import GPUSimulator

#: The process-local warm simulator (None until first use).
_SIM: GPUSimulator | None = None


def simulator_key(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> tuple:
    """The reuse identity of a warm simulator: the exact (config,
    engine, front end) triple.  :class:`~repro.config.GPUConfig` is a
    frozen (hashable, eq-by-value) dataclass, so the tuple is usable
    directly as a registry key and two keys compare equal iff a
    simulator built for one is interchangeable with the other."""
    return (gpu, engine, mem_front_end)


def simulator_matches(
    sim: GPUSimulator,
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> bool:
    """Is this warm simulator reusable for the requested triple?"""
    return (
        sim.config == gpu
        and sim.engine == engine
        and sim.mem_front_end == mem_front_end
    )


def init_worker(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> None:
    """Process-pool initializer: build this worker's simulator once.

    Runs at worker spawn (including pool respawns after a broken
    pool).  Only *primes* state — results never depend on it.
    """
    global _SIM
    _SIM = GPUSimulator(gpu, engine=engine, mem_front_end=mem_front_end)


def get_simulator(
    gpu: GPUConfig,
    engine: str = "compact",
    mem_front_end: str = "fast",
) -> GPUSimulator:
    """The process-local simulator for this configuration triple.

    Returns the warm instance built by :func:`init_worker` (or by a
    previous task) when :func:`simulator_matches` accepts it, and
    builds a replacement otherwise.
    """
    global _SIM
    sim = _SIM
    if sim is None or not simulator_matches(sim, gpu, engine, mem_front_end):
        sim = GPUSimulator(gpu, engine=engine, mem_front_end=mem_front_end)
        _SIM = sim
    return sim


__all__ = [
    "init_worker",
    "get_simulator",
    "simulator_key",
    "simulator_matches",
]
