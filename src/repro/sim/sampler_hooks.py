"""Hook protocol between the timing simulator and intra-launch sampling.

The simulator is sampling-agnostic: it calls these hooks and honours the
dispatch decision; all TBPoint policy (region entry, warming,
fast-forwarding — Section IV-B2) lives in the implementation
(:class:`repro.core.intralaunch.RegionSampler`).

Hooks and the compact engine: attaching a sampler or recorder switches
the issue loop to its general (hook-aware) variant — segment batches are
clipped at recorder unit boundaries and every callback fires at exactly
the cycle and issued-count the reference engine would report, so hook
observations are bit-identical across engines (property-tested in
``tests/test_sim_compaction.py``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class DispatchSampler(Protocol):
    """Callbacks invoked by :class:`repro.sim.gpu.GPUSimulator`.

    The simulator guarantees the call order per thread block: one
    ``on_dispatch`` (whose return decides simulate-vs-skip), then — for
    simulated blocks only — one ``on_retire``.  Sampling units (the
    lifetime of the *specified* thread block) produce ``on_unit_start``
    / ``on_unit_complete`` pairs.

    Attributes
    ----------
    skipped_warp_insts:
        Warp instructions of all blocks the sampler chose to skip.
    extra_cycles:
        Predicted machine cycles those skipped instructions would have
        taken (skipped instructions divided by the predicted region IPC).
    """

    skipped_warp_insts: int
    extra_cycles: float

    def on_dispatch(self, tb_id: int, now: int, issued: int) -> bool:
        """Decide the fate of thread block ``tb_id`` about to be
        dispatched at cycle ``now`` (with ``issued`` machine-wide warp
        instructions issued so far); return True to simulate it, False
        to skip (fast-forward) it."""
        ...

    def on_retire(self, tb_id: int, now: int, issued: int) -> None:
        """A simulated thread block retired at cycle ``now``."""
        ...

    def on_unit_start(self, now: int) -> None:
        """A new sampling unit began (a specified thread block was
        dispatched)."""
        ...

    def on_unit_complete(self, insts: int, cycles: int, now: int, issued: int) -> None:
        """The specified thread block retired: the sampling unit covered
        ``insts`` machine-wide issued warp instructions over ``cycles``
        cycles."""
        ...

    def finalize(self, now: int, issued: int) -> None:
        """The launch finished simulating at cycle ``now`` (closes any
        fast-forward episode still in progress)."""
        ...


class NullSampler:
    """A sampler that simulates everything (used to exercise the hook
    path in tests; ``sampler=None`` is the fast path)."""

    def __init__(self) -> None:
        self.skipped_warp_insts = 0
        self.extra_cycles = 0.0
        self.units: list[tuple[int, int]] = []

    def on_dispatch(self, tb_id: int, now: int, issued: int) -> bool:
        return True

    def on_retire(self, tb_id: int, now: int, issued: int) -> None:
        return None

    def on_unit_start(self, now: int) -> None:
        return None

    def on_unit_complete(self, insts: int, cycles: int, now: int, issued: int) -> None:
        self.units.append((insts, cycles))

    def finalize(self, now: int, issued: int) -> None:
        return None


__all__ = ["DispatchSampler", "NullSampler"]
