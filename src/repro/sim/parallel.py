"""Bounded-skew SM-group timing simulation (opt-in parallel mode).

The serial engines are *exact*: all SMs share one L2/DRAM and the
cycle loop observes every cross-SM interaction, which is also why one
launch cannot be simulated by more than one process.  This module
trades a measured, bounded amount of that exactness for launch-level
partitioning: the machine's SMs are split into ``sm_groups`` disjoint
groups, each group simulates its share of the thread blocks on an
independent simulator with a proportional share of the L2 (cross-group
L2 ordering is *relaxed* — groups never contend with each other), and
the groups are recomposed as a machine whose wall clock is the slowest
group's (``max``) and whose instruction count is the sum.

Accuracy discipline (DESIGN.md §12, after the way the sampling papers
report error): the deviation is **measured, never silent**.  By
default :func:`simulate_sm_groups` also runs the exact serial engine
on the same launch and reports the relative IPC skew
(``|grouped - serial| / serial``); an explicit ``skew_tolerance``
turns the measurement into a hard gate.  Callers chasing wall-clock
speed on multi-core hosts can pass ``measure_skew=False`` (or supply a
precomputed ``serial_baseline``), in which case the skew is recorded
as *unmeasured* — visibly ``None``, never a silent zero.

Two exact anchors pin the approximation:

* ``sm_groups=1`` degenerates to the serial engine **bit-identically**
  (one group owning every SM and the full L2 is the serial machine);
* block assignment is deterministic (block ``b`` belongs to the group
  owning SM ``b % num_sms``, the dispatcher's initial round-robin
  target), so grouped runs are reproducible and property-testable.

Groups fan out across worker processes through the same fault-tolerant
:func:`~repro.exec.engine.parallel_map` supervisor as launch-level
parallelism, with warm per-worker simulators (``repro.sim.worker``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GPUConfig
from repro.exec.engine import DEFAULT_EXECUTION, ExecutionConfig, parallel_map
from repro.sim.gpu import GPUSimulator, LaunchResult
from repro.sim.worker import get_simulator, init_worker
from repro.trace.blocktrace import BlockTrace
from repro.trace.launch import LaunchTrace


class _GroupBlockFactory:
    """Picklable factory: renumber a group's share of a launch's thread
    blocks into a dense sub-launch (group-local ``tb_id`` order keeps
    the original dispatch order within the group)."""

    def __init__(self, launch: LaunchTrace, block_ids: tuple[int, ...]):
        self.launch = launch
        self.block_ids = block_ids

    def __call__(self, tb_id: int) -> BlockTrace:
        original = self.launch.block(self.block_ids[tb_id])
        return BlockTrace(tb_id, original.warps)


def plan_sm_groups(num_sms: int, sm_groups: int) -> list[list[int]]:
    """Partition SM ids ``0..num_sms-1`` into ``sm_groups`` contiguous
    groups, sizes as even as possible (larger groups first)."""
    if sm_groups < 1:
        raise ValueError("sm_groups must be >= 1")
    if sm_groups > num_sms:
        raise ValueError(
            f"sm_groups={sm_groups} exceeds num_sms={num_sms}: "
            "a group needs at least one SM"
        )
    base, rem = divmod(num_sms, sm_groups)
    groups: list[list[int]] = []
    start = 0
    for g in range(sm_groups):
        size = base + (1 if g < rem else 0)
        groups.append(list(range(start, start + size)))
        start += size
    return groups


def group_config(config: GPUConfig, sm_ids: list[int]) -> GPUConfig:
    """The independent machine one SM group simulates on: its SM count
    and a proportional share of the shared L2 (at least 1 KiB).  All
    other parameters — including ``l2_shards``, so grouped runs still
    exercise per-shard state — are inherited."""
    share = max(1, round(config.l2_kib * len(sm_ids) / config.num_sms))
    return config.with_(num_sms=len(sm_ids), l2_kib=share)


def _sm_group_task(task: tuple) -> LaunchResult:
    """Picklable process-pool entry point: simulate one SM group's
    sub-launch on the worker's warm simulator."""
    sub_launch, cfg, engine, mem_front_end = task
    sim = get_simulator(cfg, engine=engine, mem_front_end=mem_front_end)
    return sim.run_launch(sub_launch)


@dataclass
class SMGroupRun:
    """One launch simulated in bounded-skew SM-group mode.

    ``group_results[g]`` is ``None`` for a group that received no
    thread blocks (more groups than blocks); it contributes nothing to
    the recomposition.  ``serial_ipc`` is the exact serial engine's
    machine IPC when the skew was measured, else ``None`` — and then
    :attr:`ipc_skew` is ``None`` too (unmeasured, never silently 0).
    """

    launch_id: int
    sm_groups: int
    group_sm_ids: list[list[int]]
    group_results: list[LaunchResult | None]
    serial_ipc: float | None = None
    #: How the group fan-out executed (from ``parallel_map``).
    exec_meta: dict = field(default_factory=dict)

    @property
    def issued_warp_insts(self) -> int:
        return sum(
            r.issued_warp_insts for r in self.group_results if r is not None
        )

    @property
    def wall_cycles(self) -> int:
        """The recomposed wall clock: groups run concurrently, so the
        machine is done when its slowest group is."""
        return max(
            (r.wall_cycles for r in self.group_results if r is not None),
            default=0,
        )

    @property
    def machine_ipc(self) -> float:
        wall = self.wall_cycles
        return self.issued_warp_insts / wall if wall else 0.0

    @property
    def per_sm_issued(self) -> list[int]:
        out: list[int] = []
        for sm_ids, r in zip(self.group_sm_ids, self.group_results):
            out.extend(r.per_sm_issued if r is not None else [0] * len(sm_ids))
        return out

    @property
    def ipc_skew(self) -> float | None:
        """Relative IPC deviation from the exact serial engine
        (``None`` when unmeasured)."""
        if self.serial_ipc is None:
            return None
        if self.serial_ipc == 0.0:
            return 0.0 if self.machine_ipc == 0.0 else float("inf")
        return abs(self.machine_ipc - self.serial_ipc) / self.serial_ipc


def simulate_sm_groups(
    launch: LaunchTrace,
    config: GPUConfig | None = None,
    sm_groups: int = 2,
    engine: str = "compact",
    mem_front_end: str = "fast",
    exec_config: ExecutionConfig | None = None,
    measure_skew: bool = True,
    serial_baseline: LaunchResult | None = None,
    skew_tolerance: float | None = None,
) -> SMGroupRun:
    """Simulate one launch in bounded-skew SM-group mode.

    Parameters
    ----------
    sm_groups:
        Number of independent SM groups (1..num_sms).  1 degenerates to
        the exact serial engine bit-identically.
    exec_config:
        Group fan-out across worker processes (``jobs``); groups of
        equal size share warm per-worker simulators.  ``None`` runs the
        groups serially in-process (still deterministic).
    measure_skew / serial_baseline:
        Accuracy oracle.  By default the exact serial engine runs the
        same launch and :attr:`SMGroupRun.ipc_skew` reports the
        relative deviation; a precomputed ``serial_baseline`` (e.g.
        from a paired benchmark run) is used instead of re-simulating.
        ``measure_skew=False`` skips the oracle — the skew is then
        ``None`` (visibly unmeasured), never a silent 0.
    skew_tolerance:
        When given, raise ``ValueError`` if the measured skew exceeds
        it — the hard gate for callers that must bound accuracy loss.
    """
    config = config or GPUConfig()
    exec_config = exec_config or DEFAULT_EXECUTION
    groups = plan_sm_groups(config.num_sms, sm_groups)

    if sm_groups == 1:
        # Exact degeneracy: one group owning the whole machine *is* the
        # serial engine; run it directly so the result (and any skew
        # gate) is trivially exact.
        sim = GPUSimulator(config, engine=engine, mem_front_end=mem_front_end)
        result = sim.run_launch(launch)
        run = SMGroupRun(
            launch_id=launch.launch_id,
            sm_groups=1,
            group_sm_ids=groups,
            group_results=[result],
            serial_ipc=result.machine_ipc if measure_skew else None,
            exec_meta={"path": "serial", "workers": 1, "items": 1,
                       "reason": "sm_groups=1 is the serial engine"},
        )
        return run

    num_sms = config.num_sms
    owner_of_sm: list[int] = []
    for g, sm_ids in enumerate(groups):
        owner_of_sm.extend([g] * len(sm_ids))
    block_ids: list[list[int]] = [[] for _ in groups]
    for b in range(launch.num_blocks):
        block_ids[owner_of_sm[b % num_sms]].append(b)

    tasks = []
    task_group: list[int] = []
    for g, (sm_ids, ids) in enumerate(zip(groups, block_ids)):
        if not ids:
            continue
        sub_launch = LaunchTrace(
            kernel_name=launch.kernel_name,
            launch_id=launch.launch_id,
            num_blocks=len(ids),
            warps_per_block=launch.warps_per_block,
            factory=_GroupBlockFactory(launch, tuple(ids)),
            num_bbs=launch.num_bbs,
        )
        tasks.append(
            (sub_launch, group_config(config, sm_ids), engine, mem_front_end)
        )
        task_group.append(g)

    exec_meta: dict = {}
    jobs = exec_config.effective_jobs
    outcomes = parallel_map(
        _sm_group_task, tasks, jobs, meta=exec_meta, config=exec_config,
        min_items=2, initializer=init_worker,
        initargs=(tasks[0][1], engine, mem_front_end),
    )

    group_results: list[LaunchResult | None] = [None] * len(groups)
    for g, result in zip(task_group, outcomes):
        group_results[g] = result

    serial_ipc: float | None = None
    if serial_baseline is not None:
        serial_ipc = serial_baseline.machine_ipc
    elif measure_skew:
        sim = GPUSimulator(config, engine=engine, mem_front_end=mem_front_end)
        serial_ipc = sim.run_launch(launch).machine_ipc

    run = SMGroupRun(
        launch_id=launch.launch_id,
        sm_groups=sm_groups,
        group_sm_ids=groups,
        group_results=group_results,
        serial_ipc=serial_ipc,
        exec_meta=exec_meta,
    )
    if skew_tolerance is not None:
        skew = run.ipc_skew
        if skew is None:
            raise ValueError(
                "skew_tolerance given but skew was not measured "
                "(measure_skew=False and no serial_baseline)"
            )
        if skew > skew_tolerance:
            raise ValueError(
                f"SM-group IPC skew {skew:.4f} exceeds tolerance "
                f"{skew_tolerance:.4f} (sm_groups={sm_groups})"
            )
    return run


__all__ = [
    "SMGroupRun",
    "simulate_sm_groups",
    "plan_sm_groups",
    "group_config",
]
