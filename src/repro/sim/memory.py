"""Memory hierarchy front end: per-SM L1s -> shared L2 -> DRAM.

One warp memory *instruction* expands to ``mem_req`` line transactions
(its post-coalescing transaction count from the trace); the warp's stall
ends when the slowest transaction completes, matching the
all-lanes-must-return semantics of a SIMT load.

Three front ends share one ``load`` API and are bit-identical in timing,
cache/DRAM state and statistics:

* :class:`MemoryHierarchy` (the default) — the batched fast path: one
  ``load`` entry point for any transaction count (the former
  ``load``/``load1``/``load_multi`` triplication is gone), cache
  operations inlined against the LRU dicts with prebound
  ``move_to_end``/``popitem`` (no per-transaction ``access`` method
  calls), a single-transaction L1-hit shortcut, per-instruction
  same-line transaction dedup, and DRAM misses drained through
  :meth:`DRAMModel.access_n` in one batch per instruction.  Hit/miss
  counters accumulate in locals and flush once per warp instruction.
* :class:`ReferenceMemoryHierarchy` — the pre-fast-path implementation
  (nested per-transaction ``access`` method calls), kept in-tree as
  the equivalence oracle; property tests drive random
  ``(addr, spread, num_req)`` sequences through both and assert
  identical completion times, cache contents, LRU orders, DRAM state
  and statistics (``tests/test_sim_memory_fastpath.py``).
* :class:`VectorMemoryHierarchy` — the array-backed front end: the
  same batched ``load`` protocol, but cache recency lives in
  :class:`~repro.sim.caches.ArrayLRUCache` ring logs (flat int64
  buffers with zero-copy NumPy views) and DRAM bank state in
  :class:`~repro.sim.dram.ArrayDRAMModel` arrays, with large miss
  drains vectorized.  Bit-identical to the oracle across the same
  property grid; the flat state representation is the prerequisite
  for sharding the L2 across processes (ROADMAP item 2).

The ``fast`` and ``reference`` front ends share
:class:`~repro.sim.caches.LRUCache` storage (``OrderedDict``; see
caches.py for why the plain-dict alternative was measured and
rejected), so their cache *state* is identical by construction — the
property tests pin down the timing, statistics and DRAM interleaving
of the batched path.  The ``vector`` front end stores the same LRU
*relation* in a different representation, so the property tests
compare it to the oracle through the observable projection
(``lru_lines()``, counters, timings, DRAM state).

Dedup soundness: after any transaction touches L1 line ``L`` (hit or
miss), ``L`` is resident and most-recently-used.  A *consecutive*
transaction of the same instruction mapping to the same ``L`` is then
necessarily an L1 hit whose ``move_to_end`` is the identity and whose
completion time is the instruction's L1 floor — so it can be resolved
by bumping the hit counter alone, with no cache operation.  Only
consecutive same-line transactions are deduplicated; a same-line
transaction arriving after an intervening different line still takes
the full path (its recency update is observable).
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.caches import ArrayLRUCache, LRUCache, make_l2
from repro.sim.dram import ArrayDRAMModel, DRAMModel


class MemoryHierarchy:
    """L1-per-SM / shared-L2 / DRAM hierarchy (Table V geometry) —
    batched fast path.

    ``batches`` / ``dedup_txns`` / ``batch_l1_hits`` / ``batch_l2_hits``
    count fast-path engagement (multi-transaction instructions, same-line
    transactions resolved without cache operations, and per-level hits
    inside the batched path); the compact engine snapshots them into
    :class:`~repro.sim.gpu.SimCounters` so benchmarks can verify the
    fast paths actually ran.
    """

    FRONT_END = "fast"

    #: Vectorized DRAM drains (class-level zero: this front end never
    #: takes one; the engine snapshots the counter unconditionally).
    vector_drains = 0

    __slots__ = (
        "config", "l1s", "l2", "dram", "l1_latency", "l2_latency",
        "batches", "dedup_txns", "batch_l1_hits", "batch_l2_hits",
        # Flattened hot references (see _flatten): one slot lookup each
        # instead of an attribute chain per transaction.
        "_sm", "_l1_shift", "_l1_cap",
        "_l2_lines", "_l2_move", "_l2_evict", "_l2_shift", "_l2_cap",
        "_l2_direct", "_l2_access",
        "_dram_free", "_dram_rows", "_bank_mask", "_num_banks",
        "_dram_line_shift", "_row_shift", "_dram_base", "_row_miss",
        "_service", "_jitter",
    )

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s = [
            LRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = make_l2(
            config.l2_kib * 1024, config.l2_line, config.l2_shards, LRUCache
        )
        self.dram = DRAMModel(config)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency
        self.batches = 0
        self.dedup_txns = 0
        self.batch_l1_hits = 0
        self.batch_l2_hits = 0
        self._flatten()

    def _flatten(self) -> None:
        """Cache flat references to the hot per-level state.

        The container objects these point into are mutated in place by
        ``reset`` (dict ``clear``, list slice assignment), never
        rebound, so the references stay valid for the hierarchy's
        lifetime.  Statistics counters and the DRAM jitter state are
        deliberately *not* flattened — they live on the level objects
        (``LRUCache.hits`` ..., ``DRAMModel.requests`` ...) as the
        single source of truth the oracle and the property tests read.
        """
        self._sm = [
            (c._lines, c._lines.move_to_end, c._lines.popitem, c)
            for c in self.l1s
        ]
        self._l1_shift = self.l1s[0].line_shift
        self._l1_cap = self.l1s[0].num_lines
        l2 = self.l2
        # The inlined L2 fast path only exists for the unified (single
        # cache object) organization; a sharded L2 coordinates global
        # LRU state internally, so every access goes through its
        # ``access`` method (counters included — no external flush).
        self._l2_direct = self.config.l2_shards == 1
        self._l2_access = l2.access
        if self._l2_direct:
            self._l2_lines = l2._lines
            self._l2_move = l2._lines.move_to_end
            self._l2_evict = l2._lines.popitem
            self._l2_cap = l2.num_lines
        self._l2_shift = l2.line_shift
        dram = self.dram
        self._dram_free = dram.free_at
        self._dram_rows = dram.open_row
        self._bank_mask = dram.bank_mask
        self._num_banks = dram.num_banks
        self._dram_line_shift = dram.line_shift
        self._row_shift = dram.row_shift
        self._dram_base = dram.base_latency
        self._row_miss = dram.row_miss_penalty
        self._service = dram.service
        self._jitter = dram.jitter

    # lint: hot
    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Perform one warp memory instruction's ``num_req`` transactions
        starting at ``addr`` with byte ``spread`` between them; return
        the completion time of the slowest transaction (floored at the
        L1 latency, the all-lanes-return time of a fully L1-resident
        access)."""
        l1_lines, l1_move, l1_evict, l1 = self._sm[sm_id]
        line = addr >> self._l1_shift
        l1_done = now + self.l1_latency
        if num_req == 1:
            # Fully specialized single-transaction path (the dominant
            # call shape for unit-stride kernels): no batch-local
            # hoisting, no DRAM address list, straight-line level walk,
            # and the DRAM access inlined (bit-identical to
            # :meth:`DRAMModel.access`, including the jitter LCG
            # stream; the property tests hold this duplicate to the
            # oracle).  Completion times need no ``max`` with the L1
            # floor — every deeper level's latency exceeds the L1's.
            if line in l1_lines:
                l1_move(line)
                l1.hits += 1
                return l1_done
            l1_lines[line] = None
            if len(l1_lines) > self._l1_cap:
                l1_evict(False)
            l1.misses += 1
            if self._l2_direct:
                l2_lines = self._l2_lines
                l2_line = addr >> self._l2_shift
                if l2_line in l2_lines:
                    self._l2_move(l2_line)
                    self.l2.hits += 1
                    return now + self.l2_latency
                l2_lines[l2_line] = None
                if len(l2_lines) > self._l2_cap:
                    self._l2_evict(False)
                self.l2.misses += 1
            elif self._l2_access(addr):
                # Sharded L2: one ``access`` per transaction (stats
                # counted inside the shards — no external flush).
                return now + self.l2_latency
            dram = self.dram
            dline = addr >> self._dram_line_shift
            mask = self._bank_mask
            bank = dline & mask if mask else dline % self._num_banks
            free_at = self._dram_free
            free = free_at[bank]
            start = free if free > now else now
            latency = self._dram_base
            jitter = self._jitter
            if jitter:
                state = (
                    dram._jitter_state * 1103515245 + 12345
                ) & 0x7FFFFFFF
                dram._jitter_state = state
                latency += (state >> 16) % jitter
            rows = self._dram_rows
            row = addr >> self._row_shift
            if rows[bank] == row:
                dram.row_hits += 1
            else:
                latency += self._row_miss
                rows[bank] = row
            free_at[bank] = start + self._service
            dram.requests += 1
            dram.total_queue_cycles += start - now
            return start + latency + self.l1_latency
        # General batched path: multi-transaction instructions.
        # Everything is hoisted into locals once per instruction —
        # including the bound ``move_to_end`` / ``popitem`` methods, so
        # per-transaction cache operations are single C calls;
        # statistics flush once at the end; DRAM misses are collected
        # and drained in one ``access_n`` batch.
        l2 = self.l2
        l2_direct = self._l2_direct
        if l2_direct:
            l2_lines = self._l2_lines
            l2_move = self._l2_move
            l2_evict = self._l2_evict
            l2_cap = self._l2_cap
        else:
            l2_access = self._l2_access
        l1_shift = self._l1_shift
        l1_cap = self._l1_cap
        l2_shift = self._l2_shift
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        prev_line = -1  # no real line is negative: addresses are >= 0
        l1_hits = 0
        l1_misses = 0
        l2_hits = 0
        l2_misses = 0
        dedup = 0
        dram_addrs = None
        for _ in range(num_req):
            line = a >> l1_shift
            if line == prev_line:
                # Consecutive same-line transaction: provably an L1 hit
                # at the instruction's L1 floor with an identity recency
                # update (see module docstring) — no cache operation.
                dedup += 1
                l1_hits += 1
                a += spread
                continue
            prev_line = line
            if line in l1_lines:
                l1_move(line)
                l1_hits += 1
                # done == l1_done == the floor: never raises ``worst``.
            else:
                l1_lines[line] = None
                if len(l1_lines) > l1_cap:
                    l1_evict(False)
                l1_misses += 1
                if l2_direct:
                    l2_line = a >> l2_shift
                    if l2_line in l2_lines:
                        l2_move(l2_line)
                        l2_hits += 1
                        if l2_done > worst:
                            worst = l2_done
                    else:
                        l2_lines[l2_line] = None
                        if len(l2_lines) > l2_cap:
                            l2_evict(False)
                        l2_misses += 1
                        if dram_addrs is None:
                            # Allocated at most once per *instruction*
                            # (on the first DRAM miss), not per
                            # transaction.
                            dram_addrs = [a]  # lint: disable=HOT002
                        else:
                            dram_addrs.append(a)
                elif l2_access(a):
                    # Sharded L2: stats counted inside the shards.
                    l2_hits += 1
                    if l2_done > worst:
                        worst = l2_done
                else:
                    l2_misses += 1
                    if dram_addrs is None:
                        # Allocated at most once per instruction.
                        dram_addrs = [a]  # lint: disable=HOT002
                    else:
                        dram_addrs.append(a)
            a += spread
        if dram_addrs is not None:
            done = self.dram.access_n(dram_addrs, now) + self.l1_latency
            if done > worst:
                worst = done
        l1.hits += l1_hits
        l1.misses += l1_misses
        if l1_misses and l2_direct:
            # The sharded organization counts hits/misses inside its
            # shards during ``access``; flushing here would double-count.
            l2.hits += l2_hits
            l2.misses += l2_misses
        self.batches += 1
        self.dedup_txns += dedup
        self.batch_l1_hits += l1_hits
        self.batch_l2_hits += l2_hits
        return worst

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all caches and DRAM bank state (between launches,
        so every launch's timing is independent of simulation order —
        a prerequisite for simulating only representative launches)."""
        for l1 in self.l1s:
            l1.reset(keep_stats)
        self.l2.reset(keep_stats)
        self.dram.reset(keep_stats)
        if not keep_stats:
            self.batches = 0
            self.dedup_txns = 0
            self.batch_l1_hits = 0
            self.batch_l2_hits = 0

    def stats(self) -> dict:
        """Aggregate hierarchy statistics.  A sharded L2 additionally
        reports its per-shard probe counts and access-skew summary
        (tuples, so the dict stays hashable for test fingerprints)."""
        l1_hits = sum(c.hits for c in self.l1s)
        l1_total = sum(c.accesses for c in self.l1s)
        out = {
            "l1_hit_rate": l1_hits / l1_total if l1_total else 0.0,
            "l2_hit_rate": self.l2.hit_rate,
            "dram_requests": self.dram.requests,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "dram_mean_queue_delay": self.dram.mean_queue_delay,
        }
        shard_probes = getattr(self.l2, "shard_probes", None)
        if shard_probes is not None:
            out["l2_shards"] = self.l2.num_shards
            out["l2_shard_probes"] = tuple(shard_probes)
            out["l2_shard_imbalance"] = self.l2.shard_imbalance
        return out


class ReferenceMemoryHierarchy:
    """The pre-fast-path front end, kept as the equivalence oracle.

    One nested ``access`` method call per level per transaction —
    exactly the implementation the fast path replaced.  Carries the
    same zero-valued fast-path counters so engine code can snapshot
    either front end unconditionally (they stay 0 here, which is
    truthful: no fast path ever engages).
    """

    FRONT_END = "reference"

    #: Zero-valued like the other fast-path counters above.
    vector_drains = 0

    __slots__ = (
        "config", "l1s", "l2", "dram", "l1_latency", "l2_latency",
        "batches", "dedup_txns", "batch_l1_hits", "batch_l2_hits",
    )

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s = [
            LRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = make_l2(
            config.l2_kib * 1024, config.l2_line, config.l2_shards, LRUCache
        )
        self.dram = DRAMModel(config)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency
        self.batches = 0
        self.dedup_txns = 0
        self.batch_l1_hits = 0
        self.batch_l2_hits = 0

    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Per-transaction reference path: one nested ``access`` call
        per level per transaction."""
        l1 = self.l1s[sm_id]
        l2 = self.l2
        dram = self.dram
        l1_done = now + self.l1_latency
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        for _ in range(num_req):
            if l1.access(a):
                done = l1_done
            elif l2.access(a):
                done = l2_done
            else:
                done = dram.access(a, now) + self.l1_latency
            if done > worst:
                worst = done
            a += spread
        return worst

    reset = MemoryHierarchy.reset
    stats = MemoryHierarchy.stats


class VectorMemoryHierarchy:
    """Array-backed front end: ring-log LRU caches + flat DRAM state.

    Same ``load`` contract and observable behaviour as the other two
    front ends (bit-identical completion times, LRU eviction order,
    statistics and DRAM jitter stream — property-tested against the
    oracle), but every piece of hierarchy state is a preallocated flat
    buffer: per-SM L1 and shared L2 recency in
    :class:`~repro.sim.caches.ArrayLRUCache` ring logs, DRAM bank
    ``free_at``/``open_row`` in :class:`~repro.sim.dram.ArrayDRAMModel`
    ``array('q')`` buffers with NumPy views.  That representation is
    what ROADMAP item 2 (cross-process L2 sharding) needs; it also
    enables the vectorized paths this class dispatches to:

    * Batches of at least ``dram.vector_threshold`` transactions take
      the *careful* path, whose collected DRAM misses drain through
      :meth:`~repro.sim.dram.ArrayDRAMModel.access_n` — fully
      vectorized bank grouping, start-time and row-hit computation,
      and closed-form jitter (``vector_drains`` counts engagements).
    * :meth:`~repro.sim.caches.ArrayLRUCache.probe_lines` gives
      sharding-ready vectorized membership probes over the tag arrays.

    Warp-sized batches (<= 32 transactions) stay on interpreted
    per-transaction ring operations: on this host NumPy's fixed
    ~2 us/op dispatch cost puts the vectorization crossover near 96
    elements, far above any warp batch (measured; DESIGN.md §11), so
    forcing arrays under the crossover would *slow the simulator
    down*.  The scalar ring path is timing- and state-equivalent to
    the ``fast`` front end by the same argument fast is equivalent to
    the oracle, with the ring-specific parts (stale-entry skipping on
    eviction, compaction) proven by the cache-level property tests.

    Batch-path preconditions (checked per instruction, with fallback
    to the careful path when they fail):

    * ``spread >= l1_line`` — transaction lines strictly increase, so
      no same-line dedup can occur and each transaction appends
      exactly one ring entry per level;
    * *strict* ring headroom for ``num_req`` appends at both levels
      (compacting once if needed): the batch must end with occupancy
      strictly below the ring size, never exactly at it — so the loop
      needs no per-transaction compaction checks and head/tail stay
      in locals;
    * a unified (single cache object) L2 — a sharded L2 coordinates
      global LRU state internally, so batches run through the careful
      path's per-transaction ``access`` calls instead.
    """

    FRONT_END = "vector"

    __slots__ = (
        "config", "l1s", "l2", "dram", "l1_latency", "l2_latency",
        "batches", "dedup_txns", "batch_l1_hits", "batch_l2_hits",
        # Flattened hot references (same discipline as MemoryHierarchy:
        # containers are mutated in place by reset/compaction, never
        # rebound, so these stay valid for the hierarchy's lifetime).
        "_sm", "_l1_shift", "_l1_cap", "_l1_rmask", "_l1_ringsz",
        "_l1_line",
        "_l2_pos", "_l2_get", "_l2_ring", "_l2_ht", "_l2_rmask",
        "_l2_ringsz", "_l2_shift", "_l2_cap",
        "_l2_direct", "_l2_access",
        "_dram_free", "_dram_rows", "_bank_mask", "_num_banks",
        "_dram_line_shift", "_row_shift", "_dram_base", "_row_miss",
        "_service", "_jitter", "_careful_at",
    )

    def __init__(
        self, config: GPUConfig, vector_threshold: int | None = None
    ):
        self.config = config
        self.l1s = [
            ArrayLRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = make_l2(
            config.l2_kib * 1024, config.l2_line, config.l2_shards,
            ArrayLRUCache,
        )
        self.dram = ArrayDRAMModel(config, vector_threshold)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency
        self.batches = 0
        self.dedup_txns = 0
        self.batch_l1_hits = 0
        self.batch_l2_hits = 0
        self._flatten()

    @property
    def vector_drains(self) -> int:
        """Vectorized DRAM drains taken (for engine counter snapshots)."""
        return self.dram.vector_batches

    def _flatten(self) -> None:
        """Cache flat references to the hot per-level state.

        Everything referenced here is mutated strictly in place by
        ``reset``, ``_compact`` and ``_evict_one`` (dict ``clear`` +
        ``update``, list element assignment, buffer fills) — never
        rebound — which is a documented invariant of
        :class:`~repro.sim.caches.ArrayLRUCache` and
        :class:`~repro.sim.dram.ArrayDRAMModel`."""
        self._sm = [
            (c._pos, c._pos.get, c._ring, c._ht, c) for c in self.l1s
        ]
        l1 = self.l1s[0]
        self._l1_shift = l1.line_shift
        self._l1_cap = l1.num_lines
        self._l1_rmask = l1._rmask
        self._l1_ringsz = l1._ring_size
        self._l1_line = self.config.l1_line
        l2 = self.l2
        # Same contract as the fast front end: the inlined/batched ring
        # paths exist only for the unified organization; a sharded L2
        # is driven through its ``access`` method (counters internal).
        self._l2_direct = self.config.l2_shards == 1
        self._l2_access = l2.access
        if self._l2_direct:
            self._l2_pos = l2._pos
            self._l2_get = l2._pos.get
            self._l2_ring = l2._ring
            self._l2_ht = l2._ht
            self._l2_rmask = l2._rmask
            self._l2_ringsz = l2._ring_size
            self._l2_cap = l2.num_lines
        self._l2_shift = l2.line_shift
        dram = self.dram
        self._dram_free = dram.free_at
        self._dram_rows = dram.open_row
        self._bank_mask = dram.bank_mask
        self._num_banks = dram.num_banks
        self._dram_line_shift = dram.line_shift
        self._row_shift = dram.row_shift
        self._dram_base = dram.base_latency
        self._row_miss = dram.row_miss_penalty
        self._service = dram.service
        self._jitter = dram.jitter
        self._careful_at = dram.vector_threshold

    # lint: hot
    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Perform one warp memory instruction's ``num_req`` transactions
        starting at ``addr`` with byte ``spread`` between them; return
        the completion time of the slowest transaction (same contract
        and bit-identical results as the other front ends)."""
        pos, pget, ring, ht, l1 = self._sm[sm_id]
        line = addr >> self._l1_shift
        if num_req == 1:
            # Single-transaction path: inlined ring-log accesses (the
            # bodies of ``ArrayLRUCache.access``) and the DRAM access
            # inlined bit-identically to ``DRAMModel.access``.
            l1_rmask = self._l1_rmask
            tail = ht[1]
            hit = pget(line, -1) >= 0
            ring[tail & l1_rmask] = line
            pos[line] = tail
            tail += 1
            ht[1] = tail
            if hit:
                l1.hits += 1
                if tail - ht[0] >= self._l1_ringsz:
                    l1._compact()
                return now + self.l1_latency
            l1.misses += 1
            if len(pos) > self._l1_cap:
                h = ht[0]
                while True:
                    victim = ring[h & l1_rmask]
                    at = h
                    h += 1
                    if pget(victim, -1) == at:
                        del pos[victim]
                        break
                ht[0] = h
            elif tail - ht[0] >= self._l1_ringsz:
                l1._compact()
            if self._l2_direct:
                l2_pos = self._l2_pos
                l2_get = self._l2_get
                l2_ring = self._l2_ring
                l2_ht = self._l2_ht
                l2_rmask = self._l2_rmask
                l2 = self.l2
                l2_line = addr >> self._l2_shift
                tail = l2_ht[1]
                hit = l2_get(l2_line, -1) >= 0
                l2_ring[tail & l2_rmask] = l2_line
                l2_pos[l2_line] = tail
                tail += 1
                l2_ht[1] = tail
                if hit:
                    l2.hits += 1
                    if tail - l2_ht[0] >= self._l2_ringsz:
                        l2._compact()
                    return now + self.l2_latency
                l2.misses += 1
                if len(l2_pos) > self._l2_cap:
                    h = l2_ht[0]
                    while True:
                        victim = l2_ring[h & l2_rmask]
                        at = h
                        h += 1
                        if l2_get(victim, -1) == at:
                            del l2_pos[victim]
                            break
                    l2_ht[0] = h
                elif tail - l2_ht[0] >= self._l2_ringsz:
                    l2._compact()
            elif self._l2_access(addr):
                # Sharded L2: one ``access`` per transaction (shard
                # ring invariants, stats and global LRU all internal).
                return now + self.l2_latency
            dram = self.dram
            dline = addr >> self._dram_line_shift
            mask = self._bank_mask
            bank = dline & mask if mask else dline % self._num_banks
            free_at = self._dram_free
            free = free_at[bank]
            start = free if free > now else now
            latency = self._dram_base
            jitter = self._jitter
            if jitter:
                state = (
                    dram._jitter_state * 1103515245 + 12345
                ) & 0x7FFFFFFF
                dram._jitter_state = state
                latency += (state >> 16) % jitter
            rows = self._dram_rows
            row = addr >> self._row_shift
            if rows[bank] == row:
                dram.row_hits += 1
            else:
                latency += self._row_miss
                rows[bank] = row
            free_at[bank] = start + self._service
            dram.requests += 1
            dram.total_queue_cycles += start - now
            return start + latency + self.l1_latency
        # Batch-path preconditions (see class docstring); everything
        # that fails them resolves through the careful path instead.
        # A sharded L2 has no flattened ring to drive, so sharded mode
        # always resolves multi-transaction batches carefully.
        if (
            spread < self._l1_line
            or num_req >= self._careful_at
            or not self._l2_direct
        ):
            return self._load_careful(sm_id, addr, spread, num_req, now)
        head = ht[0]
        tail = ht[1]
        l1_ringsz = self._l1_ringsz
        # Strict headroom (>=): a batch must not even *end* with
        # tail - head == ring size, because later appends check
        # fullness only after appending — once occupancy passes the
        # ring size those triggers can never fire again and the ring
        # would wrap over live log entries.
        if tail + num_req - head >= l1_ringsz:
            l1._compact()
            head = ht[0]
            tail = ht[1]
            if tail + num_req - head >= l1_ringsz:
                return self._load_careful(sm_id, addr, spread, num_req, now)
        l2_ht = self._l2_ht
        l2_ringsz = self._l2_ringsz
        if l2_ht[1] + num_req - l2_ht[0] >= l2_ringsz:
            self.l2._compact()
            if l2_ht[1] + num_req - l2_ht[0] >= l2_ringsz:
                return self._load_careful(sm_id, addr, spread, num_req, now)
        # Batched ring path: head/tail in locals (headroom reserved
        # above, so no per-transaction compaction checks), DRAM misses
        # resolved inline against the flat bank arrays, statistics in
        # locals flushed once per instruction.
        l1_rmask = self._l1_rmask
        l1_cap = self._l1_cap
        l1_shift = self._l1_shift
        l2_pos = self._l2_pos
        l2_get = self._l2_get
        l2_ring = self._l2_ring
        l2_rmask = self._l2_rmask
        l2_cap = self._l2_cap
        l2_shift = self._l2_shift
        l2_head = l2_ht[0]
        l2_tail = l2_ht[1]
        dram = self.dram
        free_at = self._dram_free
        rows = self._dram_rows
        mask = self._bank_mask
        num_banks = self._num_banks
        d_base = self._dram_base
        d_miss = self._row_miss
        service = self._service
        jit = self._jitter
        row_shift = self._row_shift
        dls = self._dram_line_shift
        jstate = dram._jitter_state
        l1_lat = self.l1_latency
        l1_done = now + l1_lat
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        l1_hits = 0
        l1_misses = 0
        l2_hits = 0
        l2_misses = 0
        d_rowhits = 0
        d_queue = 0
        for _ in range(num_req):
            line = a >> l1_shift
            hit = pget(line, -1) >= 0
            ring[tail & l1_rmask] = line
            pos[line] = tail
            tail += 1
            if hit:
                l1_hits += 1
                a += spread
                continue
            l1_misses += 1
            if len(pos) > l1_cap:
                while True:
                    victim = ring[head & l1_rmask]
                    at = head
                    head += 1
                    if pget(victim, -1) == at:
                        del pos[victim]
                        break
            l2_line = a >> l2_shift
            hit = l2_get(l2_line, -1) >= 0
            l2_ring[l2_tail & l2_rmask] = l2_line
            l2_pos[l2_line] = l2_tail
            l2_tail += 1
            if hit:
                l2_hits += 1
                if l2_done > worst:
                    worst = l2_done
                a += spread
                continue
            l2_misses += 1
            if len(l2_pos) > l2_cap:
                while True:
                    victim = l2_ring[l2_head & l2_rmask]
                    at = l2_head
                    l2_head += 1
                    if l2_get(victim, -1) == at:
                        del l2_pos[victim]
                        break
            dline = a >> dls
            bank = dline & mask if mask else dline % num_banks
            free = free_at[bank]
            start = free if free > now else now
            latency = d_base
            if jit:
                jstate = (jstate * 1103515245 + 12345) & 0x7FFFFFFF
                latency += (jstate >> 16) % jit
            row = a >> row_shift
            if rows[bank] == row:
                d_rowhits += 1
            else:
                latency += d_miss
                rows[bank] = row
            free_at[bank] = start + service
            d_queue += start - now
            done = start + latency + l1_lat
            if done > worst:
                worst = done
            a += spread
        ht[0] = head
        ht[1] = tail
        l2_ht[0] = l2_head
        l2_ht[1] = l2_tail
        l1.hits += l1_hits
        l1.misses += l1_misses
        if l1_misses:
            l2 = self.l2
            l2.hits += l2_hits
            l2.misses += l2_misses
            if l2_misses:
                dram.requests += l2_misses
                dram.row_hits += d_rowhits
                dram.total_queue_cycles += d_queue
                dram._jitter_state = jstate
        # No dedup is possible on this path (lines strictly increase),
        # so ``dedup_txns`` is correctly left untouched.
        self.batches += 1
        self.batch_l1_hits += l1_hits
        self.batch_l2_hits += l2_hits
        return worst

    def _load_careful(
        self, sm_id: int, addr: int, spread: int, num_req: int, now: int
    ) -> int:
        """Generic batch path for shapes the ring loop does not claim:
        sub-line spreads (same-line dedup possible), batches at or
        above the DRAM vectorization threshold (collected misses drain
        through the vectorized ``access_n``), and ring-headroom
        overflow.  Per-transaction ``ArrayLRUCache.access`` calls keep
        every invariant (compaction, eviction) locally checked; the
        batch counter semantics mirror ``MemoryHierarchy.load``'s
        batched path exactly."""
        l1 = self.l1s[sm_id]
        l2 = self.l2
        l1_shift = self._l1_shift
        l1_done = now + self.l1_latency
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        prev_line = -1  # no real line is negative: addresses are >= 0
        dedup = 0
        l1_hits = 0
        l2_hits = 0
        dram_addrs = None
        for _ in range(num_req):
            line = a >> l1_shift
            if line == prev_line:
                # Consecutive same-line transaction: provably an L1
                # hit at the instruction's L1 floor (the dedup
                # argument of the module docstring holds unchanged —
                # re-appending an MRU line to the ring is the
                # recency identity up to unobservable log slots).
                dedup += 1
                l1_hits += 1
                l1.hits += 1
                a += spread
                continue
            prev_line = line
            if l1.access(a):
                l1_hits += 1
            elif l2.access(a):
                l2_hits += 1
                if l2_done > worst:
                    worst = l2_done
            else:
                if dram_addrs is None:
                    # Allocated at most once per *instruction* (on
                    # the first DRAM miss), not per transaction.
                    dram_addrs = [a]  # lint: disable=HOT002
                else:
                    dram_addrs.append(a)
            a += spread
        if dram_addrs is not None:
            done = self.dram.access_n(dram_addrs, now) + self.l1_latency
            if done > worst:
                worst = done
        self.batches += 1
        self.dedup_txns += dedup
        self.batch_l1_hits += l1_hits
        self.batch_l2_hits += l2_hits
        return worst

    reset = MemoryHierarchy.reset
    stats = MemoryHierarchy.stats


#: Front-end registry used by :class:`~repro.sim.gpu.GPUSimulator`.
MEMORY_FRONT_ENDS = {
    "fast": MemoryHierarchy,
    "reference": ReferenceMemoryHierarchy,
    "vector": VectorMemoryHierarchy,
}


def make_memory(config: GPUConfig, front_end: str = "fast"):
    """Build a memory front end by name
    (``"fast"`` / ``"reference"`` / ``"vector"``)."""
    try:
        cls = MEMORY_FRONT_ENDS[front_end]
    except KeyError:
        raise ValueError(
            f"unknown memory front end {front_end!r}; "
            f"choose from {tuple(MEMORY_FRONT_ENDS)}"
        ) from None
    return cls(config)


__all__ = [
    "MemoryHierarchy",
    "ReferenceMemoryHierarchy",
    "VectorMemoryHierarchy",
    "MEMORY_FRONT_ENDS",
    "make_memory",
]
