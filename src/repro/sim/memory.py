"""Memory hierarchy front end: per-SM L1s -> shared L2 -> DRAM.

One warp memory *instruction* expands to ``mem_req`` line transactions
(its post-coalescing transaction count from the trace); the warp's stall
ends when the slowest transaction completes, matching the
all-lanes-must-return semantics of a SIMT load.

Two front ends share one ``load`` API and are bit-identical in timing,
cache/DRAM state and statistics:

* :class:`MemoryHierarchy` (the default) — the batched fast path: one
  ``load`` entry point for any transaction count (the former
  ``load``/``load1``/``load_multi`` triplication is gone), cache
  operations inlined against the LRU dicts with prebound
  ``move_to_end``/``popitem`` (no per-transaction ``access`` method
  calls), a single-transaction L1-hit shortcut, per-instruction
  same-line transaction dedup, and DRAM misses drained through
  :meth:`DRAMModel.access_n` in one batch per instruction.  Hit/miss
  counters accumulate in locals and flush once per warp instruction.
* :class:`ReferenceMemoryHierarchy` — the pre-fast-path implementation
  (nested per-transaction ``access`` method calls), kept in-tree as
  the equivalence oracle; property tests drive random
  ``(addr, spread, num_req)`` sequences through both and assert
  identical completion times, cache contents, LRU orders, DRAM state
  and statistics (``tests/test_sim_memory_fastpath.py``).

Both front ends share :class:`~repro.sim.caches.LRUCache` storage
(``OrderedDict``; see caches.py for why the plain-dict alternative was
measured and rejected), so their cache *state* is identical by
construction — the property tests pin down the timing, statistics and
DRAM interleaving of the batched path.

Dedup soundness: after any transaction touches L1 line ``L`` (hit or
miss), ``L`` is resident and most-recently-used.  A *consecutive*
transaction of the same instruction mapping to the same ``L`` is then
necessarily an L1 hit whose ``move_to_end`` is the identity and whose
completion time is the instruction's L1 floor — so it can be resolved
by bumping the hit counter alone, with no cache operation.  Only
consecutive same-line transactions are deduplicated; a same-line
transaction arriving after an intervening different line still takes
the full path (its recency update is observable).
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.caches import LRUCache
from repro.sim.dram import DRAMModel


class MemoryHierarchy:
    """L1-per-SM / shared-L2 / DRAM hierarchy (Table V geometry) —
    batched fast path.

    ``batches`` / ``dedup_txns`` / ``batch_l1_hits`` / ``batch_l2_hits``
    count fast-path engagement (multi-transaction instructions, same-line
    transactions resolved without cache operations, and per-level hits
    inside the batched path); the compact engine snapshots them into
    :class:`~repro.sim.gpu.SimCounters` so benchmarks can verify the
    fast paths actually ran.
    """

    FRONT_END = "fast"

    __slots__ = (
        "config", "l1s", "l2", "dram", "l1_latency", "l2_latency",
        "batches", "dedup_txns", "batch_l1_hits", "batch_l2_hits",
        # Flattened hot references (see _flatten): one slot lookup each
        # instead of an attribute chain per transaction.
        "_sm", "_l1_shift", "_l1_cap",
        "_l2_lines", "_l2_move", "_l2_evict", "_l2_shift", "_l2_cap",
        "_dram_free", "_dram_rows", "_bank_mask", "_num_banks",
        "_dram_line_shift", "_row_shift", "_dram_base", "_row_miss",
        "_service", "_jitter",
    )

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s = [
            LRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = LRUCache(config.l2_kib * 1024, config.l2_line)
        self.dram = DRAMModel(config)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency
        self.batches = 0
        self.dedup_txns = 0
        self.batch_l1_hits = 0
        self.batch_l2_hits = 0
        self._flatten()

    def _flatten(self) -> None:
        """Cache flat references to the hot per-level state.

        The container objects these point into are mutated in place by
        ``reset`` (dict ``clear``, list slice assignment), never
        rebound, so the references stay valid for the hierarchy's
        lifetime.  Statistics counters and the DRAM jitter state are
        deliberately *not* flattened — they live on the level objects
        (``LRUCache.hits`` ..., ``DRAMModel.requests`` ...) as the
        single source of truth the oracle and the property tests read.
        """
        self._sm = [
            (c._lines, c._lines.move_to_end, c._lines.popitem, c)
            for c in self.l1s
        ]
        self._l1_shift = self.l1s[0].line_shift
        self._l1_cap = self.l1s[0].num_lines
        l2 = self.l2
        self._l2_lines = l2._lines
        self._l2_move = l2._lines.move_to_end
        self._l2_evict = l2._lines.popitem
        self._l2_shift = l2.line_shift
        self._l2_cap = l2.num_lines
        dram = self.dram
        self._dram_free = dram.free_at
        self._dram_rows = dram.open_row
        self._bank_mask = dram.bank_mask
        self._num_banks = dram.num_banks
        self._dram_line_shift = dram.line_shift
        self._row_shift = dram.row_shift
        self._dram_base = dram.base_latency
        self._row_miss = dram.row_miss_penalty
        self._service = dram.service
        self._jitter = dram.jitter

    # lint: hot
    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Perform one warp memory instruction's ``num_req`` transactions
        starting at ``addr`` with byte ``spread`` between them; return
        the completion time of the slowest transaction (floored at the
        L1 latency, the all-lanes-return time of a fully L1-resident
        access)."""
        l1_lines, l1_move, l1_evict, l1 = self._sm[sm_id]
        line = addr >> self._l1_shift
        l1_done = now + self.l1_latency
        if num_req == 1:
            # Fully specialized single-transaction path (the dominant
            # call shape for unit-stride kernels): no batch-local
            # hoisting, no DRAM address list, straight-line level walk,
            # and the DRAM access inlined (bit-identical to
            # :meth:`DRAMModel.access`, including the jitter LCG
            # stream; the property tests hold this duplicate to the
            # oracle).  Completion times need no ``max`` with the L1
            # floor — every deeper level's latency exceeds the L1's.
            if line in l1_lines:
                l1_move(line)
                l1.hits += 1
                return l1_done
            l1_lines[line] = None
            if len(l1_lines) > self._l1_cap:
                l1_evict(False)
            l1.misses += 1
            l2_lines = self._l2_lines
            l2_line = addr >> self._l2_shift
            if l2_line in l2_lines:
                self._l2_move(l2_line)
                self.l2.hits += 1
                return now + self.l2_latency
            l2_lines[l2_line] = None
            if len(l2_lines) > self._l2_cap:
                self._l2_evict(False)
            self.l2.misses += 1
            dram = self.dram
            dline = addr >> self._dram_line_shift
            mask = self._bank_mask
            bank = dline & mask if mask else dline % self._num_banks
            free_at = self._dram_free
            free = free_at[bank]
            start = free if free > now else now
            latency = self._dram_base
            jitter = self._jitter
            if jitter:
                state = (
                    dram._jitter_state * 1103515245 + 12345
                ) & 0x7FFFFFFF
                dram._jitter_state = state
                latency += (state >> 16) % jitter
            rows = self._dram_rows
            row = addr >> self._row_shift
            if rows[bank] == row:
                dram.row_hits += 1
            else:
                latency += self._row_miss
                rows[bank] = row
            free_at[bank] = start + self._service
            dram.requests += 1
            dram.total_queue_cycles += start - now
            return start + latency + self.l1_latency
        # General batched path: multi-transaction instructions.
        # Everything is hoisted into locals once per instruction —
        # including the bound ``move_to_end`` / ``popitem`` methods, so
        # per-transaction cache operations are single C calls;
        # statistics flush once at the end; DRAM misses are collected
        # and drained in one ``access_n`` batch.
        l2 = self.l2
        l2_lines = self._l2_lines
        l2_move = self._l2_move
        l2_evict = self._l2_evict
        l1_shift = self._l1_shift
        l1_cap = self._l1_cap
        l2_shift = self._l2_shift
        l2_cap = self._l2_cap
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        prev_line = -1  # no real line is negative: addresses are >= 0
        l1_hits = 0
        l1_misses = 0
        l2_hits = 0
        l2_misses = 0
        dedup = 0
        dram_addrs = None
        for _ in range(num_req):
            line = a >> l1_shift
            if line == prev_line:
                # Consecutive same-line transaction: provably an L1 hit
                # at the instruction's L1 floor with an identity recency
                # update (see module docstring) — no cache operation.
                dedup += 1
                l1_hits += 1
                a += spread
                continue
            prev_line = line
            if line in l1_lines:
                l1_move(line)
                l1_hits += 1
                # done == l1_done == the floor: never raises ``worst``.
            else:
                l1_lines[line] = None
                if len(l1_lines) > l1_cap:
                    l1_evict(False)
                l1_misses += 1
                l2_line = a >> l2_shift
                if l2_line in l2_lines:
                    l2_move(l2_line)
                    l2_hits += 1
                    if l2_done > worst:
                        worst = l2_done
                else:
                    l2_lines[l2_line] = None
                    if len(l2_lines) > l2_cap:
                        l2_evict(False)
                    l2_misses += 1
                    if dram_addrs is None:
                        # Allocated at most once per *instruction* (on
                        # the first DRAM miss), not per transaction.
                        dram_addrs = [a]  # lint: disable=HOT002
                    else:
                        dram_addrs.append(a)
            a += spread
        if dram_addrs is not None:
            done = self.dram.access_n(dram_addrs, now) + self.l1_latency
            if done > worst:
                worst = done
        l1.hits += l1_hits
        l1.misses += l1_misses
        if l1_misses:
            l2.hits += l2_hits
            l2.misses += l2_misses
        self.batches += 1
        self.dedup_txns += dedup
        self.batch_l1_hits += l1_hits
        self.batch_l2_hits += l2_hits
        return worst

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all caches and DRAM bank state (between launches,
        so every launch's timing is independent of simulation order —
        a prerequisite for simulating only representative launches)."""
        for l1 in self.l1s:
            l1.reset(keep_stats)
        self.l2.reset(keep_stats)
        self.dram.reset(keep_stats)
        if not keep_stats:
            self.batches = 0
            self.dedup_txns = 0
            self.batch_l1_hits = 0
            self.batch_l2_hits = 0

    def stats(self) -> dict:
        """Aggregate hierarchy statistics."""
        l1_hits = sum(c.hits for c in self.l1s)
        l1_total = sum(c.accesses for c in self.l1s)
        return {
            "l1_hit_rate": l1_hits / l1_total if l1_total else 0.0,
            "l2_hit_rate": self.l2.hit_rate,
            "dram_requests": self.dram.requests,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "dram_mean_queue_delay": self.dram.mean_queue_delay,
        }


class ReferenceMemoryHierarchy:
    """The pre-fast-path front end, kept as the equivalence oracle.

    One nested ``access`` method call per level per transaction —
    exactly the implementation the fast path replaced.  Carries the
    same zero-valued fast-path counters so engine code can snapshot
    either front end unconditionally (they stay 0 here, which is
    truthful: no fast path ever engages).
    """

    FRONT_END = "reference"

    __slots__ = (
        "config", "l1s", "l2", "dram", "l1_latency", "l2_latency",
        "batches", "dedup_txns", "batch_l1_hits", "batch_l2_hits",
    )

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s = [
            LRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = LRUCache(config.l2_kib * 1024, config.l2_line)
        self.dram = DRAMModel(config)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency
        self.batches = 0
        self.dedup_txns = 0
        self.batch_l1_hits = 0
        self.batch_l2_hits = 0

    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Per-transaction reference path: one nested ``access`` call
        per level per transaction."""
        l1 = self.l1s[sm_id]
        l2 = self.l2
        dram = self.dram
        l1_done = now + self.l1_latency
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        for _ in range(num_req):
            if l1.access(a):
                done = l1_done
            elif l2.access(a):
                done = l2_done
            else:
                done = dram.access(a, now) + self.l1_latency
            if done > worst:
                worst = done
            a += spread
        return worst

    reset = MemoryHierarchy.reset
    stats = MemoryHierarchy.stats


#: Front-end registry used by :class:`~repro.sim.gpu.GPUSimulator`.
MEMORY_FRONT_ENDS = {
    "fast": MemoryHierarchy,
    "reference": ReferenceMemoryHierarchy,
}


def make_memory(config: GPUConfig, front_end: str = "fast"):
    """Build a memory front end by name (``"fast"`` / ``"reference"``)."""
    try:
        cls = MEMORY_FRONT_ENDS[front_end]
    except KeyError:
        raise ValueError(
            f"unknown memory front end {front_end!r}; "
            f"choose from {tuple(MEMORY_FRONT_ENDS)}"
        ) from None
    return cls(config)


__all__ = [
    "MemoryHierarchy",
    "ReferenceMemoryHierarchy",
    "MEMORY_FRONT_ENDS",
    "make_memory",
]
