"""Memory hierarchy front end: per-SM L1s -> shared L2 -> DRAM.

One warp memory *instruction* expands to ``mem_req`` line transactions
(its post-coalescing transaction count from the trace); the warp's stall
ends when the slowest transaction completes, matching the
all-lanes-must-return semantics of a SIMT load.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.caches import LRUCache
from repro.sim.dram import DRAMModel


class MemoryHierarchy:
    """L1-per-SM / shared-L2 / DRAM hierarchy (Table V geometry)."""

    __slots__ = ("config", "l1s", "l2", "dram", "l1_latency", "l2_latency")

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s = [
            LRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = LRUCache(config.l2_kib * 1024, config.l2_line)
        self.dram = DRAMModel(config)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency

    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Perform one warp memory instruction's ``num_req`` transactions
        starting at ``addr`` with byte ``spread`` between them; return
        the completion time of the slowest transaction."""
        l1 = self.l1s[sm_id]
        l2 = self.l2
        dram = self.dram
        l1_done = now + self.l1_latency
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        for _ in range(num_req):
            if l1.access(a):
                done = l1_done
            elif l2.access(a):
                done = l2_done
            else:
                done = dram.access(a, now) + self.l1_latency
            if done > worst:
                worst = done
            a += spread
        return worst

    def load1(self, sm_id: int, addr: int, now: int) -> int:
        """Single-transaction fast path: one warp memory instruction
        whose coalescer produced exactly one line transaction (the
        common case for unit-stride access).  Mirrors :meth:`load`'s
        worst-case-of-transactions semantics exactly — including the
        floor at L1 latency — with the cache and DRAM bookkeeping
        inlined, so the two paths are bit-identical in timing, state,
        and statistics but this one costs no nested method calls."""
        l1 = self.l1s[sm_id]
        l1_done = now + self.l1_latency
        lines = l1._lines
        line = addr >> l1.line_shift
        if line in lines:
            lines.move_to_end(line)
            l1.hits += 1
            return l1_done
        lines[line] = None
        if len(lines) > l1.num_lines:
            lines.popitem(last=False)
        l1.misses += 1
        l2 = self.l2
        lines = l2._lines
        line = addr >> l2.line_shift
        if line in lines:
            lines.move_to_end(line)
            l2.hits += 1
            l2_done = now + self.l2_latency
            return l2_done if l2_done > l1_done else l1_done
        lines[line] = None
        if len(lines) > l2.num_lines:
            lines.popitem(last=False)
        l2.misses += 1
        dram = self.dram
        bank = (addr >> dram.line_shift) % dram.num_banks
        row = addr >> dram.row_shift
        free = dram.free_at[bank]
        start = free if free > now else now
        dram.total_queue_cycles += start - now
        latency = dram.base_latency
        if dram.jitter:
            state = (dram._jitter_state * 1103515245 + 12345) & 0x7FFFFFFF
            dram._jitter_state = state
            latency += (state >> 16) % dram.jitter
        if dram.open_row[bank] == row:
            dram.row_hits += 1
        else:
            latency += dram.row_miss_penalty
            dram.open_row[bank] = row
        dram.free_at[bank] = start + dram.service
        dram.requests += 1
        done = start + latency + self.l1_latency
        return done if done > l1_done else l1_done

    def load_multi(
        self, sm_id: int, addr: int, spread: int, num_req: int, now: int
    ) -> int:
        """Multi-transaction fast path: :meth:`load` with the per-line
        L1/L2/DRAM bookkeeping inlined into one loop (no nested method
        calls, statistics accumulated locally and folded in once).
        Bit-identical to :meth:`load` in returned timing, cache/DRAM
        state transitions, and statistics."""
        l1 = self.l1s[sm_id]
        l2 = self.l2
        dram = self.dram
        l1_done = now + self.l1_latency
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        l1_lines = l1._lines
        l1_shift = l1.line_shift
        l1_cap = l1.num_lines
        l1_hits = 0
        l1_misses = 0
        l2_lines = l2._lines
        l2_shift = l2.line_shift
        l2_cap = l2.num_lines
        l2_hits = 0
        l2_misses = 0
        d_requests = 0
        d_row_hits = 0
        d_queue = 0
        d_state = dram._jitter_state
        for _ in range(num_req):
            line = a >> l1_shift
            if line in l1_lines:
                l1_lines.move_to_end(line)
                l1_hits += 1
                done = l1_done
            else:
                l1_lines[line] = None
                if len(l1_lines) > l1_cap:
                    l1_lines.popitem(last=False)
                l1_misses += 1
                line = a >> l2_shift
                if line in l2_lines:
                    l2_lines.move_to_end(line)
                    l2_hits += 1
                    done = l2_done
                else:
                    l2_lines[line] = None
                    if len(l2_lines) > l2_cap:
                        l2_lines.popitem(last=False)
                    l2_misses += 1
                    bank = (a >> dram.line_shift) % dram.num_banks
                    row = a >> dram.row_shift
                    free = dram.free_at[bank]
                    start = free if free > now else now
                    d_queue += start - now
                    latency = dram.base_latency
                    if dram.jitter:
                        d_state = (d_state * 1103515245 + 12345) & 0x7FFFFFFF
                        latency += (d_state >> 16) % dram.jitter
                    if dram.open_row[bank] == row:
                        d_row_hits += 1
                    else:
                        latency += dram.row_miss_penalty
                        dram.open_row[bank] = row
                    dram.free_at[bank] = start + dram.service
                    d_requests += 1
                    done = start + latency + self.l1_latency
            if done > worst:
                worst = done
            a += spread
        l1.hits += l1_hits
        l1.misses += l1_misses
        l2.hits += l2_hits
        l2.misses += l2_misses
        if d_requests:
            dram.requests += d_requests
            dram.row_hits += d_row_hits
            dram.total_queue_cycles += d_queue
            dram._jitter_state = d_state
        return worst

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all caches and DRAM bank state (between launches,
        so every launch's timing is independent of simulation order —
        a prerequisite for simulating only representative launches)."""
        for l1 in self.l1s:
            l1.reset(keep_stats)
        self.l2.reset(keep_stats)
        self.dram.reset(keep_stats)

    def stats(self) -> dict:
        """Aggregate hierarchy statistics."""
        l1_hits = sum(c.hits for c in self.l1s)
        l1_total = sum(c.accesses for c in self.l1s)
        return {
            "l1_hit_rate": l1_hits / l1_total if l1_total else 0.0,
            "l2_hit_rate": self.l2.hit_rate,
            "dram_requests": self.dram.requests,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "dram_mean_queue_delay": self.dram.mean_queue_delay,
        }


__all__ = ["MemoryHierarchy"]
