"""Memory hierarchy front end: per-SM L1s -> shared L2 -> DRAM.

One warp memory *instruction* expands to ``mem_req`` line transactions
(its post-coalescing transaction count from the trace); the warp's stall
ends when the slowest transaction completes, matching the
all-lanes-must-return semantics of a SIMT load.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.caches import LRUCache
from repro.sim.dram import DRAMModel


class MemoryHierarchy:
    """L1-per-SM / shared-L2 / DRAM hierarchy (Table V geometry)."""

    __slots__ = ("config", "l1s", "l2", "dram", "l1_latency", "l2_latency")

    def __init__(self, config: GPUConfig):
        self.config = config
        self.l1s = [
            LRUCache(config.l1_kib * 1024, config.l1_line)
            for _ in range(config.num_sms)
        ]
        self.l2 = LRUCache(config.l2_kib * 1024, config.l2_line)
        self.dram = DRAMModel(config)
        self.l1_latency = config.l1_latency
        self.l2_latency = config.l2_latency

    def load(self, sm_id: int, addr: int, spread: int, num_req: int, now: int) -> int:
        """Perform one warp memory instruction's ``num_req`` transactions
        starting at ``addr`` with byte ``spread`` between them; return
        the completion time of the slowest transaction."""
        l1 = self.l1s[sm_id]
        l2 = self.l2
        dram = self.dram
        l1_done = now + self.l1_latency
        l2_done = now + self.l2_latency
        worst = l1_done
        a = addr
        for _ in range(num_req):
            if l1.access(a):
                done = l1_done
            elif l2.access(a):
                done = l2_done
            else:
                done = dram.access(a, now) + self.l1_latency
            if done > worst:
                worst = done
            a += spread
        return worst

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all caches and DRAM bank state (between launches,
        so every launch's timing is independent of simulation order —
        a prerequisite for simulating only representative launches)."""
        for l1 in self.l1s:
            l1.reset(keep_stats)
        self.l2.reset(keep_stats)
        self.dram.reset(keep_stats)

    def stats(self) -> dict:
        """Aggregate hierarchy statistics."""
        l1_hits = sum(c.hits for c in self.l1s)
        l1_total = sum(c.accesses for c in self.l1s)
        return {
            "l1_hit_rate": l1_hits / l1_total if l1_total else 0.0,
            "l2_hit_rate": self.l2.hit_rate,
            "dram_requests": self.dram.requests,
            "dram_row_hit_rate": self.dram.row_hit_rate,
            "dram_mean_queue_delay": self.dram.mean_queue_delay,
        }


__all__ = ["MemoryHierarchy"]
