"""DRAM model: channels x banks, open-row policy, bank queueing.

This is where the *variable* stall latency of the paper's model comes
from: a request's completion time depends on whether it hits the bank's
open row and on how backed up the bank is (queueing delay), so the same
static instruction sees a distribution of latencies — the random
variable ``M`` of Section IV-A.  Row-buffer locality plus
oldest-first service per bank approximates FR-FCFS (Table V) at the
fidelity the sampling study needs.
"""

from __future__ import annotations

from repro.config import GPUConfig


class DRAMModel:
    """Banked DRAM with open-row tracking and per-bank service queues.

    Each (channel, bank) pair keeps the currently open row and the time
    the bank is next free.  A request at time ``now``:

    * waits until the bank is free (queueing delay),
    * pays the base access latency, plus the row-miss penalty if it does
      not hit the open row,
    * occupies the bank for ``dram_service`` cycles (burst transfer),
      which is what creates queueing under load.

    ``bank_mask`` is precomputed at construction: when the bank count is
    a power of two the line-to-bank map is a single AND instead of a
    modulo (the Table V geometry, 6 channels x 16 banks = 96, takes the
    modulo path; power-of-two configs take the mask).
    """

    __slots__ = (
        "num_banks",
        "bank_mask",
        "base_latency",
        "row_miss_penalty",
        "service",
        "line_shift",
        "row_shift",
        "open_row",
        "free_at",
        "requests",
        "row_hits",
        "total_queue_cycles",
        "jitter",
        "_jitter_state",
    )

    def __init__(self, config: GPUConfig):
        self.num_banks = config.dram_channels * config.dram_banks
        # 0 marks "not a power of two: use modulo"; the truthiness test
        # is unambiguous because a real mask is never 0 (num_banks == 1
        # maps every line to bank 0 via modulo just as correctly).
        self.bank_mask = (
            self.num_banks - 1
            if self.num_banks & (self.num_banks - 1) == 0 and self.num_banks > 1
            else 0
        )
        self.base_latency = config.dram_latency
        self.row_miss_penalty = config.dram_row_miss_penalty
        self.service = config.dram_service
        self.line_shift = config.l2_line.bit_length() - 1
        self.row_shift = config.dram_row_bytes.bit_length() - 1
        # Per-access latency jitter (0..jitter-1 cycles) from a
        # deterministic LCG.  Real DRAM timing varies by a few cycles
        # per access (refresh, command scheduling); without it, launches
        # of perfectly uniform thread blocks stay phase-locked in waves
        # for thousands of cycles, which no real machine does.
        self.jitter = config.dram_jitter
        self.open_row = [-1] * self.num_banks
        self.free_at = [0] * self.num_banks
        self.requests = 0
        self.row_hits = 0
        self.total_queue_cycles = 0
        self._jitter_state = 1

    def access(self, addr: int, now: int) -> int:
        """Issue one line-sized request; return its completion time."""
        line = addr >> self.line_shift
        mask = self.bank_mask
        bank = line & mask if mask else line % self.num_banks
        row = addr >> self.row_shift
        free = self.free_at[bank]
        start = free if free > now else now
        queue = start - now

        latency = self.base_latency
        if self.jitter:
            self._jitter_state = (
                self._jitter_state * 1103515245 + 12345
            ) & 0x7FFFFFFF
            latency += (self._jitter_state >> 16) % self.jitter
        if self.open_row[bank] == row:
            self.row_hits += 1
        else:
            latency += self.row_miss_penalty
            self.open_row[bank] = row

        self.free_at[bank] = start + self.service
        self.requests += 1
        self.total_queue_cycles += queue
        return start + latency

    def access_n(self, addrs, now: int) -> int:
        """Issue the byte addresses in order; return the completion time
        of the slowest request.

        Bit-identical in bank state, statistics and jitter stream to
        issuing the same addresses through :meth:`access` one by one,
        with the per-request bookkeeping amortized: all model parameters
        are hoisted into locals once per batch, statistics accumulate in
        locals flushed once, and runs of consecutive requests to the
        *same* bank keep that bank's ``free_at``/``open_row`` in locals,
        writing the lists only when the batch moves to another bank.
        """
        free_at = self.free_at
        open_row = self.open_row
        mask = self.bank_mask
        num_banks = self.num_banks
        line_shift = self.line_shift
        row_shift = self.row_shift
        base_latency = self.base_latency
        row_miss_penalty = self.row_miss_penalty
        service = self.service
        jitter = self.jitter
        state = self._jitter_state
        row_hits = 0
        queue = 0
        worst = 0
        last_bank = -1
        last_free = 0
        last_row = -1
        for addr in addrs:
            line = addr >> line_shift
            bank = line & mask if mask else line % num_banks
            if bank != last_bank:
                if last_bank >= 0:
                    free_at[last_bank] = last_free
                    open_row[last_bank] = last_row
                last_free = free_at[bank]
                last_row = open_row[bank]
                last_bank = bank
            row = addr >> row_shift
            start = last_free if last_free > now else now
            queue += start - now
            latency = base_latency
            if jitter:
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                latency += (state >> 16) % jitter
            if last_row == row:
                row_hits += 1
            else:
                latency += row_miss_penalty
                last_row = row
            last_free = start + service
            done = start + latency
            if done > worst:
                worst = done
        if last_bank >= 0:
            free_at[last_bank] = last_free
            open_row[last_bank] = last_row
        self.requests += len(addrs)
        self.row_hits += row_hits
        self.total_queue_cycles += queue
        self._jitter_state = state
        return worst

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0

    def reset(self, keep_stats: bool = False) -> None:
        """Close all rows and clear bank timing (between launches).

        Mutates the bank lists in place rather than rebinding them:
        the fast memory front end keeps direct references to these
        lists, which must survive a reset."""
        self.open_row[:] = [-1] * self.num_banks
        self.free_at[:] = [0] * self.num_banks
        self._jitter_state = 1
        if not keep_stats:
            self.requests = 0
            self.row_hits = 0
            self.total_queue_cycles = 0


__all__ = ["DRAMModel"]
