"""DRAM model: channels x banks, open-row policy, bank queueing.

This is where the *variable* stall latency of the paper's model comes
from: a request's completion time depends on whether it hits the bank's
open row and on how backed up the bank is (queueing delay), so the same
static instruction sees a distribution of latencies — the random
variable ``M`` of Section IV-A.  Row-buffer locality plus
oldest-first service per bank approximates FR-FCFS (Table V) at the
fidelity the sampling study needs.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.config import GPUConfig

#: LCG multiplier/increment of the jitter stream (glibc ``rand`` family;
#: the modulus is 2**31 via the ``& 0x7FFFFFFF`` masks below).
_LCG_A = 1103515245
_LCG_C = 12345
_LCG_MASK = 0x7FFFFFFF


class DRAMModel:
    """Banked DRAM with open-row tracking and per-bank service queues.

    Each (channel, bank) pair keeps the currently open row and the time
    the bank is next free.  A request at time ``now``:

    * waits until the bank is free (queueing delay),
    * pays the base access latency, plus the row-miss penalty if it does
      not hit the open row,
    * occupies the bank for ``dram_service`` cycles (burst transfer),
      which is what creates queueing under load.

    ``bank_mask`` is precomputed at construction: when the bank count is
    a power of two the line-to-bank map is a single AND instead of a
    modulo (the Table V geometry, 6 channels x 16 banks = 96, takes the
    modulo path; power-of-two configs take the mask).
    """

    __slots__ = (
        "num_banks",
        "bank_mask",
        "base_latency",
        "row_miss_penalty",
        "service",
        "line_shift",
        "row_shift",
        "open_row",
        "free_at",
        "requests",
        "row_hits",
        "total_queue_cycles",
        "jitter",
        "_jitter_state",
    )

    def __init__(self, config: GPUConfig):
        self.num_banks = config.dram_channels * config.dram_banks
        # 0 marks "not a power of two: use modulo"; the truthiness test
        # is unambiguous because a real mask is never 0 (num_banks == 1
        # maps every line to bank 0 via modulo just as correctly).
        self.bank_mask = (
            self.num_banks - 1
            if self.num_banks & (self.num_banks - 1) == 0 and self.num_banks > 1
            else 0
        )
        self.base_latency = config.dram_latency
        self.row_miss_penalty = config.dram_row_miss_penalty
        self.service = config.dram_service
        self.line_shift = config.l2_line.bit_length() - 1
        self.row_shift = config.dram_row_bytes.bit_length() - 1
        # Per-access latency jitter (0..jitter-1 cycles) from a
        # deterministic LCG.  Real DRAM timing varies by a few cycles
        # per access (refresh, command scheduling); without it, launches
        # of perfectly uniform thread blocks stay phase-locked in waves
        # for thousands of cycles, which no real machine does.
        self.jitter = config.dram_jitter
        self.open_row = [-1] * self.num_banks
        self.free_at = [0] * self.num_banks
        self.requests = 0
        self.row_hits = 0
        self.total_queue_cycles = 0
        self._jitter_state = 1

    def access(self, addr: int, now: int) -> int:
        """Issue one line-sized request; return its completion time."""
        line = addr >> self.line_shift
        mask = self.bank_mask
        bank = line & mask if mask else line % self.num_banks
        row = addr >> self.row_shift
        free = self.free_at[bank]
        start = free if free > now else now
        queue = start - now

        latency = self.base_latency
        if self.jitter:
            self._jitter_state = (
                self._jitter_state * 1103515245 + 12345
            ) & 0x7FFFFFFF
            latency += (self._jitter_state >> 16) % self.jitter
        if self.open_row[bank] == row:
            self.row_hits += 1
        else:
            latency += self.row_miss_penalty
            self.open_row[bank] = row

        self.free_at[bank] = start + self.service
        self.requests += 1
        self.total_queue_cycles += queue
        return start + latency

    def access_n(self, addrs, now: int) -> int:
        """Issue the byte addresses in order; return the completion time
        of the slowest request.

        Bit-identical in bank state, statistics and jitter stream to
        issuing the same addresses through :meth:`access` one by one,
        with the per-request bookkeeping amortized: all model parameters
        are hoisted into locals once per batch, statistics accumulate in
        locals flushed once, and runs of consecutive requests to the
        *same* bank keep that bank's ``free_at``/``open_row`` in locals,
        writing the lists only when the batch moves to another bank.
        """
        free_at = self.free_at
        open_row = self.open_row
        mask = self.bank_mask
        num_banks = self.num_banks
        line_shift = self.line_shift
        row_shift = self.row_shift
        base_latency = self.base_latency
        row_miss_penalty = self.row_miss_penalty
        service = self.service
        jitter = self.jitter
        state = self._jitter_state
        row_hits = 0
        queue = 0
        worst = 0
        last_bank = -1
        last_free = 0
        last_row = -1
        for addr in addrs:
            line = addr >> line_shift
            bank = line & mask if mask else line % num_banks
            if bank != last_bank:
                if last_bank >= 0:
                    free_at[last_bank] = last_free
                    open_row[last_bank] = last_row
                last_free = free_at[bank]
                last_row = open_row[bank]
                last_bank = bank
            row = addr >> row_shift
            start = last_free if last_free > now else now
            queue += start - now
            latency = base_latency
            if jitter:
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                latency += (state >> 16) % jitter
            if last_row == row:
                row_hits += 1
            else:
                latency += row_miss_penalty
                last_row = row
            last_free = start + service
            done = start + latency
            if done > worst:
                worst = done
        if last_bank >= 0:
            free_at[last_bank] = last_free
            open_row[last_bank] = last_row
        self.requests += len(addrs)
        self.row_hits += row_hits
        self.total_queue_cycles += queue
        self._jitter_state = state
        return worst

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0

    def reset(self, keep_stats: bool = False) -> None:
        """Close all rows and clear bank timing (between launches).

        Mutates the bank lists in place rather than rebinding them:
        the fast memory front end keeps direct references to these
        lists, which must survive a reset."""
        self.open_row[:] = [-1] * self.num_banks
        self.free_at[:] = [0] * self.num_banks
        self._jitter_state = 1
        if not keep_stats:
            self.requests = 0
            self.row_hits = 0
            self.total_queue_cycles = 0


def _pow2_at_least(n: int) -> int:
    r = 1
    while r < n:
        r <<= 1
    return r


class ArrayDRAMModel(DRAMModel):
    """DRAM model with bank state in preallocated flat arrays and a
    vectorized batch drain.

    Behaviourally identical to :class:`DRAMModel` (same ``access`` /
    ``access_n`` contract, bit-identical timing, statistics and jitter
    stream — property-tested in ``tests/test_sim_dram.py`` and
    ``tests/test_sim_memory_fastpath.py``), with two representation
    changes:

    * ``open_row`` / ``free_at`` live in ``array('q')`` buffers with
      zero-copy NumPy views (``_open_np`` / ``_free_np``): scalar
      indexing stays as cheap as a list, and whole-state vector reads
      and resets are single NumPy ops.  Flat buffers are also what a
      cross-process shared memory mapping needs (ROADMAP item 2).
    * ``access_n`` drains batches of at least ``vector_threshold``
      requests through :meth:`_access_n_vector`: banks are grouped with
      one stable argsort, per-bank start times follow from the closed
      form ``start_k = max(free, now) + k * service`` (bank occupancy
      only grows within a batch), row hits are one shifted compare, and
      the per-request jitter comes from the LCG's closed form
      ``s_j = (A^j s_0 + c_j) mod 2^31`` with precomputed power/prefix
      tables — no per-request Python bytecode at all.

    ``vector_threshold`` is a constructor parameter (not an environment
    read — the simulator must stay deterministic per DET004): below it
    the scalar drain of the base class wins, because the vectorized
    drain pays ~50-65 µs of fixed NumPy dispatch cost per batch
    (~25 array ops at ~2 µs each on the benchmark host) while the
    scalar loop handles a request in well under 1 µs (measured
    crossover near 96 requests; DESIGN.md §11).  ``vector_batches``
    counts vectorized drains so benchmarks can verify engagement.
    """

    #: Batch size at which the vectorized drain starts to win over the
    #: scalar loop (measured on the benchmark host; see DESIGN.md §11).
    #: Warp-level batches top out at 32 transactions, so with the
    #: default threshold the vectorized drain only engages for
    #: super-warp batches (e.g. a sharded L2 draining merged misses);
    #: per-warp traffic takes the measured-faster scalar loop.
    VECTOR_THRESHOLD = 96

    __slots__ = (
        "_free_np", "_open_np", "_a_pows", "_c_sums",
        "vector_threshold", "vector_batches",
    )

    def __init__(
        self, config: GPUConfig, vector_threshold: int | None = None
    ):
        super().__init__(config)
        self.open_row = array("q", [-1]) * self.num_banks
        self.free_at = array("q", [0]) * self.num_banks
        self._open_np = np.frombuffer(self.open_row, dtype=np.int64)
        self._free_np = np.frombuffer(self.free_at, dtype=np.int64)
        self.vector_threshold = (
            self.VECTOR_THRESHOLD if vector_threshold is None
            else vector_threshold
        )
        self.vector_batches = 0
        self._a_pows = np.empty(0, dtype=np.int64)
        self._c_sums = np.empty(0, dtype=np.int64)
        self._grow_lcg_tables(64)

    def _grow_lcg_tables(self, n: int) -> None:
        """Precompute ``A^j mod 2^31`` and the additive prefix ``c_j``
        (``c_0 = 0``, ``c_{j+1} = (A c_j + C) mod 2^31``) for
        ``j = 0..size-1`` so a batch's whole jitter stream is two
        vector ops from the current seed."""
        size = _pow2_at_least(n + 1)
        a_pows = np.empty(size, dtype=np.int64)
        c_sums = np.empty(size, dtype=np.int64)
        ap = 1
        cs = 0
        for j in range(size):
            a_pows[j] = ap
            c_sums[j] = cs
            ap = (ap * _LCG_A) & _LCG_MASK
            cs = (cs * _LCG_A + _LCG_C) & _LCG_MASK
        self._a_pows = a_pows
        self._c_sums = c_sums

    def access_n(self, addrs, now: int) -> int:
        """Batch drain: scalar loop below ``vector_threshold`` (where
        NumPy dispatch overhead dominates), vectorized at or above it."""
        if len(addrs) < self.vector_threshold:
            return DRAMModel.access_n(self, addrs, now)
        return self._access_n_vector(addrs, now)

    def _access_n_vector(self, addrs, now: int) -> int:
        """Vectorized, order-exact equivalent of the scalar drain.

        Why the closed forms hold for sequential issue semantics:

        * Within one batch a bank's ``free_at`` only moves forward, so
          for the ``k``-th request of the batch hitting bank ``b``
          (in issue order): the first starts at
          ``max(free_at[b], now)`` and each later one exactly
          ``service`` after its predecessor.
        * A request row-hits iff its row equals the *previous* request
          to the same bank within the batch (or the bank's open row for
          the first) — a shifted compare after a stable sort by bank.
        * The jitter LCG advances once per request in issue order; its
          ``j``-th state is ``(A^j s_0 + c_j) mod 2^31``, safe in int64
          because both factors are below ``2^31``.
        """
        n = len(addrs)
        if n == 0:
            return 0
        a = np.asarray(addrs, dtype=np.int64)
        lines = a >> self.line_shift
        mask = self.bank_mask
        banks = lines & mask if mask else lines % self.num_banks
        rows = a >> self.row_shift
        order = np.argsort(banks, kind="stable")
        b_sorted = banks[order]
        r_sorted = rows[order]
        is_first = np.empty(n, dtype=bool)
        is_first[0] = True
        np.not_equal(b_sorted[1:], b_sorted[:-1], out=is_first[1:])
        group_start = np.flatnonzero(is_first)
        counts = np.diff(np.append(group_start, n))
        group_banks = b_sorted[group_start]
        first_start = np.maximum(self._free_np[group_banks], now)
        rank = np.arange(n, dtype=np.int64) - np.repeat(group_start, counts)
        starts = np.repeat(first_start, counts) + rank * self.service
        prev_rows = np.empty(n, dtype=np.int64)
        prev_rows[1:] = r_sorted[:-1]
        prev_rows[group_start] = self._open_np[group_banks]
        row_hit = prev_rows == r_sorted
        latency = np.where(
            row_hit,
            self.base_latency,
            self.base_latency + self.row_miss_penalty,
        )
        jitter = self.jitter
        if jitter:
            if n >= len(self._a_pows):
                self._grow_lcg_tables(n)
            states = (
                self._a_pows[1 : n + 1] * self._jitter_state
                + self._c_sums[1 : n + 1]
            ) & _LCG_MASK
            self._jitter_state = int(states[-1])
            latency = latency + ((states[order] >> 16) % jitter)
        done = starts + latency
        # State write-back: per bank, the final free time and the last
        # row issued (the batch's last request to that bank).
        self._free_np[group_banks] = first_start + counts * self.service
        self._open_np[group_banks] = r_sorted[group_start + counts - 1]
        self.requests += n
        self.row_hits += int(row_hit.sum())
        self.total_queue_cycles += int(starts.sum()) - n * now
        self.vector_batches += 1
        return int(done.max())

    def reset(self, keep_stats: bool = False) -> None:
        """Close all rows and clear bank timing — in place on the flat
        buffers (the vector front end aliases them)."""
        self._open_np.fill(-1)
        self._free_np.fill(0)
        self._jitter_state = 1
        if not keep_stats:
            self.requests = 0
            self.row_hits = 0
            self.total_queue_cycles = 0
            self.vector_batches = 0


__all__ = ["DRAMModel", "ArrayDRAMModel"]
