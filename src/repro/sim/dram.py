"""DRAM model: channels x banks, open-row policy, bank queueing.

This is where the *variable* stall latency of the paper's model comes
from: a request's completion time depends on whether it hits the bank's
open row and on how backed up the bank is (queueing delay), so the same
static instruction sees a distribution of latencies — the random
variable ``M`` of Section IV-A.  Row-buffer locality plus
oldest-first service per bank approximates FR-FCFS (Table V) at the
fidelity the sampling study needs.
"""

from __future__ import annotations

from repro.config import GPUConfig


class DRAMModel:
    """Banked DRAM with open-row tracking and per-bank service queues.

    Each (channel, bank) pair keeps the currently open row and the time
    the bank is next free.  A request at time ``now``:

    * waits until the bank is free (queueing delay),
    * pays the base access latency, plus the row-miss penalty if it does
      not hit the open row,
    * occupies the bank for ``dram_service`` cycles (burst transfer),
      which is what creates queueing under load.
    """

    __slots__ = (
        "num_banks",
        "base_latency",
        "row_miss_penalty",
        "service",
        "line_shift",
        "row_shift",
        "open_row",
        "free_at",
        "requests",
        "row_hits",
        "total_queue_cycles",
        "jitter",
        "_jitter_state",
    )

    def __init__(self, config: GPUConfig):
        self.num_banks = config.dram_channels * config.dram_banks
        self.base_latency = config.dram_latency
        self.row_miss_penalty = config.dram_row_miss_penalty
        self.service = config.dram_service
        self.line_shift = config.l2_line.bit_length() - 1
        self.row_shift = config.dram_row_bytes.bit_length() - 1
        # Per-access latency jitter (0..jitter-1 cycles) from a
        # deterministic LCG.  Real DRAM timing varies by a few cycles
        # per access (refresh, command scheduling); without it, launches
        # of perfectly uniform thread blocks stay phase-locked in waves
        # for thousands of cycles, which no real machine does.
        self.jitter = config.dram_jitter
        self.open_row = [-1] * self.num_banks
        self.free_at = [0] * self.num_banks
        self.requests = 0
        self.row_hits = 0
        self.total_queue_cycles = 0
        self._jitter_state = 1

    def access(self, addr: int, now: int) -> int:
        """Issue one line-sized request; return its completion time."""
        bank = (addr >> self.line_shift) % self.num_banks
        row = addr >> self.row_shift
        free = self.free_at[bank]
        start = free if free > now else now
        queue = start - now

        latency = self.base_latency
        if self.jitter:
            self._jitter_state = (
                self._jitter_state * 1103515245 + 12345
            ) & 0x7FFFFFFF
            latency += (self._jitter_state >> 16) % self.jitter
        if self.open_row[bank] == row:
            self.row_hits += 1
        else:
            latency += self.row_miss_penalty
            self.open_row[bank] = row

        self.free_at[bank] = start + self.service
        self.requests += 1
        self.total_queue_cycles += queue
        return start + latency

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def mean_queue_delay(self) -> float:
        return self.total_queue_cycles / self.requests if self.requests else 0.0

    def reset(self, keep_stats: bool = False) -> None:
        """Close all rows and clear bank timing (between launches)."""
        self.open_row = [-1] * self.num_banks
        self.free_at = [0] * self.num_banks
        self._jitter_state = 1
        if not keep_stats:
            self.requests = 0
            self.row_hits = 0
            self.total_queue_cycles = 0


__all__ = ["DRAMModel"]
