"""Cache models.

Caches are modelled as capacity-bounded LRU maps over line addresses —
a fully-associative approximation of the 8-way set-associative caches of
Table V.  What the sampling experiments depend on is *warm-up* (the
reason intra-launch sampling has a warming period) and *capacity*
behaviour, both of which survive the associativity approximation.

Storage choice (measured, see DESIGN.md §8): the LRU set lives in an
``OrderedDict``.  The tempting "plain dict" alternative — CPython dicts
preserve insertion order, so a hit could refresh recency by delete +
reinsert and eviction could remove ``next(iter(...))`` — is *exactly*
LRU-equivalent but catastrophically slower under eviction pressure:
deleting from the front of a plain dict leaves tombstones in the dense
entry array that ``iter()`` must skip until the next resize compacts
them, so eviction cost grows with the deletions since the last resize
(~5.9 µs/eviction at L2 size, 6144 lines, vs ~150 ns for
``OrderedDict.popitem`` — the linked list exists precisely to make
both ends O(1)).  Hits are also slower (~79 ns for del+reinsert vs
~50 ns for a prebound ``move_to_end``).  :class:`DictLRUCache` keeps
that variant in-tree as the documented, property-tested rejection;
``tests/test_sim_memory_fastpath.py`` checks it stays bit-identical to
:class:`LRUCache` on random access sequences, which is what makes the
performance comparison apples-to-apples.

The memory fast path (:class:`~repro.sim.memory.MemoryHierarchy`) does
not call :meth:`LRUCache.access` at all — it works directly on
``_lines`` with prebound ``move_to_end``/``popitem`` and accumulates
hit/miss counts in locals — so the per-transaction method-call overhead
this module's ``access`` carries is paid only by the reference front
end (the equivalence oracle).
"""

from __future__ import annotations

from array import array
from collections import OrderedDict

import numpy as np


class _LRUStatsMixin:
    """Derived statistics shared by the LRU implementations."""

    __slots__ = ()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._lines)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class LRUCache(_LRUStatsMixin):
    """Capacity-bounded LRU cache over line addresses.

    Parameters
    ----------
    capacity_bytes:
        Total capacity; ``capacity_bytes // line_size`` lines are kept.
    line_size:
        Line size in bytes (power of two).
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: OrderedDict[int, None] = OrderedDict()

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            lines.popitem(last=False)
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order (the observable recency
        state; every implementation exposes it for the equivalence
        tests, whatever its internal storage)."""
        return list(self._lines)

    def peek_lru(self) -> int:
        """The least-recently-used resident line (cache must be
        non-empty).  Non-mutating for this implementation."""
        return next(iter(self._lines))

    def evict_lru(self) -> int:
        """Remove and return the least-recently-used resident line
        (cache must be non-empty).  No statistics are touched — same as
        the eviction inside :meth:`access`."""
        return self._lines.popitem(last=False)[0]

    def probe_lines(self, lines: "np.ndarray") -> "np.ndarray":
        """Vectorized non-mutating membership probe: a boolean per
        *line* address against the resident tag set (same contract as
        :meth:`ArrayLRUCache.probe_lines`)."""
        n = len(self._lines)
        tags = np.fromiter(self._lines.keys(), np.int64, n)
        return np.isin(lines, tags)

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


class DictLRUCache(_LRUStatsMixin):
    """Plain-dict LRU: the measured-and-rejected alternative.

    Exactly LRU-equivalent to :class:`LRUCache` — a dict ordered by
    insertion is an LRU list if every hit reinserts its key (delete +
    add moves it to the back, what ``move_to_end`` does) and the front
    (``next(iter(...))``) is always the oldest — but eviction pays the
    tombstone scan described in the module docstring, so it loses badly
    on eviction-heavy (memory-bound) workloads.  Kept for the
    equivalence property test and as the recorded measurement behind
    the storage choice; not used by either memory front end.
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: dict[int, None] = {}

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            del lines[line]
            lines[line] = None
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            del lines[next(iter(lines))]
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order."""
        return list(self._lines)

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


def _pow2_at_least(n: int) -> int:
    r = 1
    while r < n:
        r <<= 1
    return r


class ArrayLRUCache(_LRUStatsMixin):
    """Exact LRU over a preallocated recency *log* array (ring buffer).

    The recency order lives in a flat ``array('q')`` ring instead of an
    ``OrderedDict``'s linked list: every access appends its line at the
    log tail, a position index (``line -> log index``) marks which log
    entry is each line's *current* one, and eviction scans forward from
    the log head, skipping entries whose position no longer matches
    (stale appends superseded by a later touch).  Amortized O(1): every
    log slot is written once and consumed at most once.

    When the ring fills (``tail - head`` reaches the ring size, which
    needs a long hit streak — hits append without consuming), it is
    *compacted* with one vectorized pass: ``np.argsort`` of the live
    positions rewrites the ring prefix in LRU order and renumbers the
    index.  The fullness triggers test ``>=`` rather than ``==`` so
    that a caller which batches appends (the vector front end) can
    never leave occupancy strictly past a boundary that equality-only
    checks would then miss forever.
    ``compactions`` counts these; on eviction-heavy streams it stays 0
    because misses consume log slots as fast as hits produce them.

    Same observable contract as :class:`LRUCache` (bit-identical hits,
    misses, eviction order — property-tested), but the recency state is
    a flat int64 buffer: ``np.frombuffer`` exposes it zero-copy to
    NumPy, which is what the planned cross-process L2 sharding
    (ROADMAP item 2) needs — a shared-memory ring is mergeable, a
    linked-list ``OrderedDict`` is not.  :meth:`probe_lines` gives the
    vectorized membership probe over the tag array.
    """

    #: Extra ring slots beyond capacity so a warp-sized batch can append
    #: without mid-batch compaction checks (the vector front end
    #: reserves headroom once per batch instead).
    MIN_HEADROOM = 64

    __slots__ = (
        "num_lines", "line_shift", "hits", "misses", "compactions",
        "_pos", "_ring", "_ring_np", "_ring_size", "_rmask", "_ht",
    )

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self.compactions = 0
        size = _pow2_at_least(
            max(4 * self.num_lines, self.num_lines + self.MIN_HEADROOM)
        )
        self._ring_size = size
        self._rmask = size - 1
        self._ring = array("q", bytes(8 * size))
        self._ring_np = np.frombuffer(self._ring, dtype=np.int64)
        self._pos: dict[int, int] = {}
        # [head, tail] as a list so flattened fast paths can alias it;
        # both are *absolute* log indices (monotonic), masked into the
        # ring on use.
        self._ht = [0, 0]

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        pos = self._pos
        ht = self._ht
        tail = ht[1]
        hit = pos.get(line, -1) >= 0
        self._ring[tail & self._rmask] = line
        pos[line] = tail
        ht[1] = tail + 1
        if hit:
            self.hits += 1
            if ht[1] - ht[0] >= self._ring_size:
                self._compact()
            return True
        self.misses += 1
        if len(pos) > self.num_lines:
            self._evict_one()
        elif ht[1] - ht[0] >= self._ring_size:
            self._compact()
        return False

    def _evict_one(self) -> None:
        """Remove the least-recently-used line: scan from the log head,
        skipping superseded entries."""
        pos = self._pos
        pget = pos.get
        ring = self._ring
        rmask = self._rmask
        ht = self._ht
        h = ht[0]
        while True:
            victim = ring[h & rmask]
            at = h
            h += 1
            if pget(victim, -1) == at:
                del pos[victim]
                break
        ht[0] = h

    def _compact(self) -> None:
        """Rewrite the ring prefix in LRU order (vectorized argsort of
        the live positions) and renumber the index in place.

        Mutates ``_pos`` and ``_ht`` in place — never rebinds them —
        because the vector memory front end keeps flat aliases to both.
        """
        pos = self._pos
        n = len(pos)
        if n:
            lines = np.fromiter(pos.keys(), np.int64, n)
            stamps = np.fromiter(pos.values(), np.int64, n)
            ordered = lines[np.argsort(stamps, kind="stable")]
            self._ring_np[:n] = ordered
            pos.clear()
            pos.update(zip(ordered.tolist(), range(n)))
        self._ht[0] = 0
        self._ht[1] = n
        self.compactions += 1

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._pos

    def probe_lines(self, lines: "np.ndarray") -> "np.ndarray":
        """Vectorized non-mutating membership probe: a boolean per line
        address (not byte address), against the resident tag set.

        One ``np.isin`` over the position index's keys resolves the
        whole batch — the tag-compare primitive a sharded L2 serves
        lookups with.  Genuinely non-mutating: no recency update, no
        fill, no statistics, and no compaction.
        """
        n = len(self._pos)
        tags = np.fromiter(self._pos.keys(), np.int64, n)
        return np.isin(lines, tags)

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order."""
        return [ln for ln, _ in sorted(self._pos.items(), key=lambda kv: kv[1])]

    def peek_lru(self) -> int:
        """The least-recently-used resident line (cache must be
        non-empty).  Advances the log head past superseded (stale)
        entries as a side effect — exactly the skip :meth:`_evict_one`
        would perform, so it is unobservable in the LRU relation."""
        pos_get = self._pos.get
        ring = self._ring
        rmask = self._rmask
        ht = self._ht
        h = ht[0]
        while True:
            victim = ring[h & rmask]
            if pos_get(victim, -1) == h:
                ht[0] = h
                return victim
            h += 1

    def evict_lru(self) -> int:
        """Remove and return the least-recently-used resident line
        (cache must be non-empty).  No statistics are touched — same as
        the eviction inside :meth:`access`."""
        victim = self.peek_lru()
        del self._pos[victim]
        self._ht[0] += 1
        return victim

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._pos)

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters).

        In-place (dict ``clear``, list element assignment): the vector
        front end keeps flat references into this state."""
        self._pos.clear()
        self._ht[0] = 0
        self._ht[1] = 0
        if not keep_stats:
            self.hits = 0
            self.misses = 0
            self.compactions = 0


class ShardedL2:
    """L2 state partitioned into per-address-slice banks (shards).

    Each line address maps to exactly one shard (``line & (shards-1)``,
    a power-of-two mask over the *line* address), so residency is a
    disjoint union over shards and a lookup touches exactly one bank —
    the partitioning that lets SM groups probe different shards without
    serializing on one recency structure (DESIGN.md §12).

    Bit-identity invariant (property-tested against the single-cache
    oracle): hits, misses, eviction order and the full LRU relation are
    identical to one unified LRU of the same total capacity.  Hit/miss
    equality is immediate — a line is resident in its shard iff it is
    resident in the unified cache, because both structures hold the
    same line set (induction below).  Eviction equality needs *global*
    LRU coordination: a per-shard-capacity LRU would evict the locally
    oldest line of a full shard, which is not in general the globally
    oldest.  So recency is tracked on a single shared clock: every
    access stamps its line with the next global tick in its shard's
    stamp table, and eviction removes the line with the *minimum stamp
    across shards*.  Within one shard, local LRU order equals stamp
    order (both are access order — :meth:`ArrayLRUCache._compact`
    renumbers local log indices but preserves their relative order, and
    the global stamp tables are never renumbered), so each shard's
    :meth:`peek_lru` line carries that shard's minimum stamp and the
    global victim is an O(shards) argmin, O(1) per access otherwise.

    Shard backing stores are the existing single-cache implementations
    (:class:`LRUCache` or :class:`ArrayLRUCache`, per ``line_cls``),
    each deliberately constructed one line *larger* than the whole
    cache so its internal eviction trigger (``len > num_lines``) can
    never fire — the shard must not evict its own locally-oldest line
    when the global victim lives elsewhere.  Occupancy is bounded here
    (``_occ``), and :meth:`_evict_global` performs the coordinated
    eviction through the shard's :meth:`evict_lru`.

    Observability: ``shard_probes`` counts accesses per shard and
    ``shard_imbalance`` summarizes their skew (0.0 = perfectly
    balanced; the hottest shard's excess over a balanced share),
    surfaced through ``SimCounters`` and ``repro simulate --mem-stats``.
    :meth:`probe_lines` batches a membership probe across shards with
    one vectorized ``np.isin`` per touched shard.
    """

    __slots__ = (
        "num_shards", "num_lines", "line_shift", "shards",
        "shard_probes", "_shard_mask", "_gstamps", "_clock", "_occ",
    )

    def __init__(
        self,
        capacity_bytes: int,
        line_size: int,
        num_shards: int,
        line_cls: type = LRUCache,
    ):
        if num_shards <= 0 or num_shards & (num_shards - 1):
            raise ValueError("num_shards must be a positive power of two")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.num_shards = num_shards
        self._shard_mask = num_shards - 1
        # One line of extra per-shard capacity: see class docstring —
        # shard-internal eviction must never fire.
        self.shards = [
            line_cls(capacity_bytes + line_size, line_size)
            for _ in range(num_shards)
        ]
        self._gstamps: list[dict[int, int]] = [{} for _ in range(num_shards)]
        self.shard_probes = [0] * num_shards
        self._clock = 0
        self._occ = 0

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict the *globally* least-recently-used line if full)."""
        line = addr >> self.line_shift
        si = line & self._shard_mask
        hit = self.shards[si].access(addr)
        self._gstamps[si][line] = self._clock
        self._clock += 1
        self.shard_probes[si] += 1
        if hit:
            return True
        self._occ += 1
        if self._occ > self.num_lines:
            self._evict_global()
        return False

    def _evict_global(self) -> None:
        """Evict the line with the minimum global stamp: argmin over
        the non-empty shards of each shard's LRU-line stamp."""
        gstamps = self._gstamps
        best_si = -1
        best_stamp = -1
        for si, shard in enumerate(self.shards):
            if not shard.occupancy:
                continue
            stamp = gstamps[si][shard.peek_lru()]
            if best_si < 0 or stamp < best_stamp:
                best_si = si
                best_stamp = stamp
        victim = self.shards[best_si].evict_lru()
        del gstamps[best_si][victim]
        self._occ -= 1

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        line = addr >> self.line_shift
        return self.shards[line & self._shard_mask].contains(addr)

    def probe_lines(self, lines: "np.ndarray") -> "np.ndarray":
        """Vectorized non-mutating membership probe: a boolean per
        *line* address.  Lines are routed to their shards by mask and
        each touched shard answers its slice with one vectorized
        ``probe_lines`` call (``np.isin`` over its tag set)."""
        lines = np.asarray(lines, dtype=np.int64)
        out = np.zeros(lines.shape, dtype=bool)
        shard_of = lines & self._shard_mask
        for si, shard in enumerate(self.shards):
            sel = shard_of == si
            if sel.any():
                out[sel] = shard.probe_lines(lines[sel])
        return out

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order: the shard stamp tables
        merged by global stamp."""
        pairs: list[tuple[int, int]] = []
        for gs in self._gstamps:
            pairs.extend(gs.items())
        pairs.sort(key=lambda kv: kv[1])
        return [line for line, _ in pairs]

    def peek_lru(self) -> int:
        """The globally least-recently-used resident line (cache must
        be non-empty)."""
        best_line = -1
        best_stamp = -1
        for si, shard in enumerate(self.shards):
            if not shard.occupancy:
                continue
            line = shard.peek_lru()
            stamp = self._gstamps[si][line]
            if best_line < 0 or stamp < best_stamp:
                best_line = line
                best_stamp = stamp
        return best_line

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self.shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self.shards)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident (all shards)."""
        return self._occ

    @property
    def compactions(self) -> int:
        """Ring compactions across shards (0 for OrderedDict shards)."""
        return sum(getattr(shard, "compactions", 0) for shard in self.shards)

    @property
    def shard_imbalance(self) -> float:
        """Access-skew summary: the hottest shard's probe count as an
        excess fraction over a perfectly balanced share (0.0 when
        balanced or idle; 1.0 means the hottest shard saw twice its
        fair share)."""
        total = sum(self.shard_probes)
        if not total:
            return 0.0
        return max(self.shard_probes) * self.num_shards / total - 1.0

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all shards (and by default zero the counters)."""
        for shard in self.shards:
            shard.reset(keep_stats)
        for gs in self._gstamps:
            gs.clear()
        self._clock = 0
        self._occ = 0
        if not keep_stats:
            for si in range(self.num_shards):
                self.shard_probes[si] = 0


def _make_unified_l2(
    capacity_bytes: int, line_size: int, num_shards: int, line_cls: type
):
    """One cache object holds the whole L2 (``num_shards`` must be 1)."""
    if num_shards != 1:
        raise ValueError("unified L2 organization requires num_shards == 1")
    return line_cls(capacity_bytes, line_size)


def _make_sharded_l2(
    capacity_bytes: int, line_size: int, num_shards: int, line_cls: type
):
    """Per-address-slice banks behind the global-LRU coordinator."""
    return ShardedL2(capacity_bytes, line_size, num_shards, line_cls)


#: L2 organization registry (same discipline as ``ENGINES`` and
#: ``MEMORY_FRONT_ENDS``): every entry must appear in the oracle-parity
#: tests (``repro lint`` ORA001 enforces this).
L2_ORGANIZATIONS = {
    "unified": _make_unified_l2,
    "sharded": _make_sharded_l2,
}


def make_l2(
    capacity_bytes: int,
    line_size: int,
    num_shards: int = 1,
    line_cls: type = LRUCache,
):
    """Build an L2 for the given shard count: a plain ``line_cls``
    cache for 1 shard (the default, zero-overhead organization) or a
    :class:`ShardedL2` over ``line_cls`` banks for a power-of-two
    ``num_shards > 1``.  Both are bit-identical in observable behaviour
    (hits/misses/LRU order/eviction order) by the invariant documented
    on :class:`ShardedL2`."""
    org = "sharded" if num_shards > 1 else "unified"
    return L2_ORGANIZATIONS[org](capacity_bytes, line_size, num_shards, line_cls)


__all__ = [
    "LRUCache",
    "DictLRUCache",
    "ArrayLRUCache",
    "ShardedL2",
    "L2_ORGANIZATIONS",
    "make_l2",
]
