"""Cache models.

Caches are modelled as capacity-bounded LRU maps over line addresses —
a fully-associative approximation of the 8-way set-associative caches of
Table V.  What the sampling experiments depend on is *warm-up* (the
reason intra-launch sampling has a warming period) and *capacity*
behaviour, both of which survive the associativity approximation.

Storage choice (measured, see DESIGN.md §8): the LRU set lives in an
``OrderedDict``.  The tempting "plain dict" alternative — CPython dicts
preserve insertion order, so a hit could refresh recency by delete +
reinsert and eviction could remove ``next(iter(...))`` — is *exactly*
LRU-equivalent but catastrophically slower under eviction pressure:
deleting from the front of a plain dict leaves tombstones in the dense
entry array that ``iter()`` must skip until the next resize compacts
them, so eviction cost grows with the deletions since the last resize
(~5.9 µs/eviction at L2 size, 6144 lines, vs ~150 ns for
``OrderedDict.popitem`` — the linked list exists precisely to make
both ends O(1)).  Hits are also slower (~79 ns for del+reinsert vs
~50 ns for a prebound ``move_to_end``).  :class:`DictLRUCache` keeps
that variant in-tree as the documented, property-tested rejection;
``tests/test_sim_memory_fastpath.py`` checks it stays bit-identical to
:class:`LRUCache` on random access sequences, which is what makes the
performance comparison apples-to-apples.

The memory fast path (:class:`~repro.sim.memory.MemoryHierarchy`) does
not call :meth:`LRUCache.access` at all — it works directly on
``_lines`` with prebound ``move_to_end``/``popitem`` and accumulates
hit/miss counts in locals — so the per-transaction method-call overhead
this module's ``access`` carries is paid only by the reference front
end (the equivalence oracle).
"""

from __future__ import annotations

from array import array
from collections import OrderedDict

import numpy as np


class _LRUStatsMixin:
    """Derived statistics shared by the LRU implementations."""

    __slots__ = ()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._lines)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class LRUCache(_LRUStatsMixin):
    """Capacity-bounded LRU cache over line addresses.

    Parameters
    ----------
    capacity_bytes:
        Total capacity; ``capacity_bytes // line_size`` lines are kept.
    line_size:
        Line size in bytes (power of two).
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: OrderedDict[int, None] = OrderedDict()

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            lines.popitem(last=False)
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order (the observable recency
        state; every implementation exposes it for the equivalence
        tests, whatever its internal storage)."""
        return list(self._lines)

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


class DictLRUCache(_LRUStatsMixin):
    """Plain-dict LRU: the measured-and-rejected alternative.

    Exactly LRU-equivalent to :class:`LRUCache` — a dict ordered by
    insertion is an LRU list if every hit reinserts its key (delete +
    add moves it to the back, what ``move_to_end`` does) and the front
    (``next(iter(...))``) is always the oldest — but eviction pays the
    tombstone scan described in the module docstring, so it loses badly
    on eviction-heavy (memory-bound) workloads.  Kept for the
    equivalence property test and as the recorded measurement behind
    the storage choice; not used by either memory front end.
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: dict[int, None] = {}

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            del lines[line]
            lines[line] = None
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            del lines[next(iter(lines))]
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order."""
        return list(self._lines)

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


def _pow2_at_least(n: int) -> int:
    r = 1
    while r < n:
        r <<= 1
    return r


class ArrayLRUCache(_LRUStatsMixin):
    """Exact LRU over a preallocated recency *log* array (ring buffer).

    The recency order lives in a flat ``array('q')`` ring instead of an
    ``OrderedDict``'s linked list: every access appends its line at the
    log tail, a position index (``line -> log index``) marks which log
    entry is each line's *current* one, and eviction scans forward from
    the log head, skipping entries whose position no longer matches
    (stale appends superseded by a later touch).  Amortized O(1): every
    log slot is written once and consumed at most once.

    When the ring fills (``tail - head`` reaches the ring size, which
    needs a long hit streak — hits append without consuming), it is
    *compacted* with one vectorized pass: ``np.argsort`` of the live
    positions rewrites the ring prefix in LRU order and renumbers the
    index.  The fullness triggers test ``>=`` rather than ``==`` so
    that a caller which batches appends (the vector front end) can
    never leave occupancy strictly past a boundary that equality-only
    checks would then miss forever.
    ``compactions`` counts these; on eviction-heavy streams it stays 0
    because misses consume log slots as fast as hits produce them.

    Same observable contract as :class:`LRUCache` (bit-identical hits,
    misses, eviction order — property-tested), but the recency state is
    a flat int64 buffer: ``np.frombuffer`` exposes it zero-copy to
    NumPy, which is what the planned cross-process L2 sharding
    (ROADMAP item 2) needs — a shared-memory ring is mergeable, a
    linked-list ``OrderedDict`` is not.  :meth:`probe_lines` gives the
    vectorized membership probe over the tag array.
    """

    #: Extra ring slots beyond capacity so a warp-sized batch can append
    #: without mid-batch compaction checks (the vector front end
    #: reserves headroom once per batch instead).
    MIN_HEADROOM = 64

    __slots__ = (
        "num_lines", "line_shift", "hits", "misses", "compactions",
        "_pos", "_ring", "_ring_np", "_ring_size", "_rmask", "_ht",
    )

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self.compactions = 0
        size = _pow2_at_least(
            max(4 * self.num_lines, self.num_lines + self.MIN_HEADROOM)
        )
        self._ring_size = size
        self._rmask = size - 1
        self._ring = array("q", bytes(8 * size))
        self._ring_np = np.frombuffer(self._ring, dtype=np.int64)
        self._pos: dict[int, int] = {}
        # [head, tail] as a list so flattened fast paths can alias it;
        # both are *absolute* log indices (monotonic), masked into the
        # ring on use.
        self._ht = [0, 0]

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        pos = self._pos
        ht = self._ht
        tail = ht[1]
        hit = pos.get(line, -1) >= 0
        self._ring[tail & self._rmask] = line
        pos[line] = tail
        ht[1] = tail + 1
        if hit:
            self.hits += 1
            if ht[1] - ht[0] >= self._ring_size:
                self._compact()
            return True
        self.misses += 1
        if len(pos) > self.num_lines:
            self._evict_one()
        elif ht[1] - ht[0] >= self._ring_size:
            self._compact()
        return False

    def _evict_one(self) -> None:
        """Remove the least-recently-used line: scan from the log head,
        skipping superseded entries."""
        pos = self._pos
        pget = pos.get
        ring = self._ring
        rmask = self._rmask
        ht = self._ht
        h = ht[0]
        while True:
            victim = ring[h & rmask]
            at = h
            h += 1
            if pget(victim, -1) == at:
                del pos[victim]
                break
        ht[0] = h

    def _compact(self) -> None:
        """Rewrite the ring prefix in LRU order (vectorized argsort of
        the live positions) and renumber the index in place.

        Mutates ``_pos`` and ``_ht`` in place — never rebinds them —
        because the vector memory front end keeps flat aliases to both.
        """
        pos = self._pos
        n = len(pos)
        if n:
            lines = np.fromiter(pos.keys(), np.int64, n)
            stamps = np.fromiter(pos.values(), np.int64, n)
            ordered = lines[np.argsort(stamps, kind="stable")]
            self._ring_np[:n] = ordered
            pos.clear()
            pos.update(zip(ordered.tolist(), range(n)))
        self._ht[0] = 0
        self._ht[1] = n
        self.compactions += 1

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._pos

    def probe_lines(self, lines: "np.ndarray") -> "np.ndarray":
        """Vectorized non-mutating membership probe: a boolean per line
        address (not byte address), against the resident tag set.

        One ``np.isin`` over the position index's keys resolves the
        whole batch — the tag-compare primitive a sharded L2 serves
        lookups with.  Genuinely non-mutating: no recency update, no
        fill, no statistics, and no compaction.
        """
        n = len(self._pos)
        tags = np.fromiter(self._pos.keys(), np.int64, n)
        return np.isin(lines, tags)

    def lru_lines(self) -> list[int]:
        """Resident lines in LRU-to-MRU order."""
        return [ln for ln, _ in sorted(self._pos.items(), key=lambda kv: kv[1])]

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._pos)

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters).

        In-place (dict ``clear``, list element assignment): the vector
        front end keeps flat references into this state."""
        self._pos.clear()
        self._ht[0] = 0
        self._ht[1] = 0
        if not keep_stats:
            self.hits = 0
            self.misses = 0
            self.compactions = 0


__all__ = ["LRUCache", "DictLRUCache", "ArrayLRUCache"]
