"""Cache models.

Caches are modelled as capacity-bounded LRU maps over line addresses —
a fully-associative approximation of the 8-way set-associative caches of
Table V.  What the sampling experiments depend on is *warm-up* (the
reason intra-launch sampling has a warming period) and *capacity*
behaviour, both of which survive the associativity approximation; the
``OrderedDict`` implementation keeps the per-access cost at a couple of
C-level dict operations, which matters because the cache sits on the
simulator's hot path.
"""

from __future__ import annotations

from collections import OrderedDict


class LRUCache:
    """Capacity-bounded LRU cache over line addresses.

    Parameters
    ----------
    capacity_bytes:
        Total capacity; ``capacity_bytes // line_size`` lines are kept.
    line_size:
        Line size in bytes (power of two).
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: OrderedDict[int, None] = OrderedDict()

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            lines.popitem(last=False)
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._lines)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


__all__ = ["LRUCache"]
