"""Cache models.

Caches are modelled as capacity-bounded LRU maps over line addresses —
a fully-associative approximation of the 8-way set-associative caches of
Table V.  What the sampling experiments depend on is *warm-up* (the
reason intra-launch sampling has a warming period) and *capacity*
behaviour, both of which survive the associativity approximation.

Storage choice (measured, see DESIGN.md §8): the LRU set lives in an
``OrderedDict``.  The tempting "plain dict" alternative — CPython dicts
preserve insertion order, so a hit could refresh recency by delete +
reinsert and eviction could remove ``next(iter(...))`` — is *exactly*
LRU-equivalent but catastrophically slower under eviction pressure:
deleting from the front of a plain dict leaves tombstones in the dense
entry array that ``iter()`` must skip until the next resize compacts
them, so eviction cost grows with the deletions since the last resize
(~5.9 µs/eviction at L2 size, 6144 lines, vs ~150 ns for
``OrderedDict.popitem`` — the linked list exists precisely to make
both ends O(1)).  Hits are also slower (~79 ns for del+reinsert vs
~50 ns for a prebound ``move_to_end``).  :class:`DictLRUCache` keeps
that variant in-tree as the documented, property-tested rejection;
``tests/test_sim_memory_fastpath.py`` checks it stays bit-identical to
:class:`LRUCache` on random access sequences, which is what makes the
performance comparison apples-to-apples.

The memory fast path (:class:`~repro.sim.memory.MemoryHierarchy`) does
not call :meth:`LRUCache.access` at all — it works directly on
``_lines`` with prebound ``move_to_end``/``popitem`` and accumulates
hit/miss counts in locals — so the per-transaction method-call overhead
this module's ``access`` carries is paid only by the reference front
end (the equivalence oracle).
"""

from __future__ import annotations

from collections import OrderedDict


class _LRUStatsMixin:
    """Derived statistics shared by the LRU implementations."""

    __slots__ = ()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._lines)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0


class LRUCache(_LRUStatsMixin):
    """Capacity-bounded LRU cache over line addresses.

    Parameters
    ----------
    capacity_bytes:
        Total capacity; ``capacity_bytes // line_size`` lines are kept.
    line_size:
        Line size in bytes (power of two).
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: OrderedDict[int, None] = OrderedDict()

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            lines.popitem(last=False)
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


class DictLRUCache(_LRUStatsMixin):
    """Plain-dict LRU: the measured-and-rejected alternative.

    Exactly LRU-equivalent to :class:`LRUCache` — a dict ordered by
    insertion is an LRU list if every hit reinserts its key (delete +
    add moves it to the back, what ``move_to_end`` does) and the front
    (``next(iter(...))``) is always the oldest — but eviction pays the
    tombstone scan described in the module docstring, so it loses badly
    on eviction-heavy (memory-bound) workloads.  Kept for the
    equivalence property test and as the recorded measurement behind
    the storage choice; not used by either memory front end.
    """

    __slots__ = ("num_lines", "line_shift", "hits", "misses", "_lines")

    def __init__(self, capacity_bytes: int, line_size: int):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if capacity_bytes < line_size:
            raise ValueError("capacity smaller than one line")
        self.num_lines = capacity_bytes // line_size
        self.line_shift = line_size.bit_length() - 1
        self.hits = 0
        self.misses = 0
        self._lines: dict[int, None] = {}

    def access(self, addr: int) -> bool:
        """Access one byte address; return True on hit.  Misses allocate
        (and evict LRU if full)."""
        line = addr >> self.line_shift
        lines = self._lines
        if line in lines:
            del lines[line]
            lines[line] = None
            self.hits += 1
            return True
        lines[line] = None
        if len(lines) > self.num_lines:
            del lines[next(iter(lines))]
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (no LRU update, no fill, no stats)."""
        return (addr >> self.line_shift) in self._lines

    def reset(self, keep_stats: bool = False) -> None:
        """Invalidate all lines (and by default zero the counters)."""
        self._lines.clear()
        if not keep_stats:
            self.hits = 0
            self.misses = 0


__all__ = ["LRUCache", "DictLRUCache"]
