"""Cycle-approximate GPGPU timing simulator (the Macsim substitute).

An event-driven multi-SM model: a global event heap orders SM issue
slots; each SM issues one warp instruction per cycle from its
earliest-ready resident warp (in-order, scoreboarded — Table V); memory
instructions traverse per-SM L1s, a shared L2 and banked DRAM with
open-row and queueing behaviour, which produces the *variable* stall
latencies the paper's model calls ``M``.

The simulator exposes the hooks TBPoint's intra-launch sampling needs:
a dispatch-time skip decision and sampling-unit tracking where a unit is
the lifetime of a *specified* thread block (Section IV-B2).
"""

from repro.sim.caches import LRUCache
from repro.sim.dram import DRAMModel
from repro.sim.memory import MemoryHierarchy
from repro.sim.gpu import (
    FixedUnitRecorder,
    GPUSimulator,
    LaunchResult,
    SimCounters,
    UnitRecord,
)

__all__ = [
    "LRUCache",
    "DRAMModel",
    "MemoryHierarchy",
    "GPUSimulator",
    "LaunchResult",
    "SimCounters",
    "FixedUnitRecorder",
    "UnitRecord",
]
