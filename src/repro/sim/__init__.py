"""Cycle-approximate GPGPU timing simulator (the Macsim substitute).

An event-driven multi-SM model: a global event heap orders SM issue
slots; each SM issues one warp instruction per cycle from its
earliest-ready resident warp (in-order, scoreboarded — Table V); memory
instructions traverse per-SM L1s, a shared L2 and banked DRAM with
open-row and queueing behaviour, which produces the *variable* stall
latencies the paper's model calls ``M``.

The memory subsystem has three front ends: the batched fast path
(``MemoryHierarchy``, the default), the per-transaction reference
implementation (``ReferenceMemoryHierarchy``) kept as the equivalence
oracle, and the array-backed ``VectorMemoryHierarchy`` (ring-log LRU
caches, flat DRAM bank state, vectorized large-batch miss drains) —
all produce bit-identical timing, cache/DRAM state and statistics
(property-tested in ``tests/test_sim_memory_fastpath.py``).  Select
one via ``make_memory(config, front_end)`` or
``GPUSimulator(..., mem_front_end=...)``.

The simulator exposes the hooks TBPoint's intra-launch sampling needs:
a dispatch-time skip decision and sampling-unit tracking where a unit is
the lifetime of a *specified* thread block (Section IV-B2).

Two orthogonal parallelization layers (DESIGN.md §12): the L2 can be
organized as per-address-slice shards (``GPUConfig.l2_shards`` /
``ShardedL2`` — bit-identical to the unified cache under every front
end), and a launch can be simulated across independent SM groups with
relaxed cross-group L2 ordering (``simulate_sm_groups`` — approximate,
with the IPC skew against the exact serial engine measured by default
and gateable, never silent).  Launch-*level* parallelism lives in the
execution engine and stays exact.
"""

from repro.sim.caches import (
    L2_ORGANIZATIONS,
    ArrayLRUCache,
    DictLRUCache,
    LRUCache,
    ShardedL2,
    make_l2,
)
from repro.sim.dram import ArrayDRAMModel, DRAMModel
from repro.sim.memory import (
    MEMORY_FRONT_ENDS,
    MemoryHierarchy,
    ReferenceMemoryHierarchy,
    VectorMemoryHierarchy,
    make_memory,
)
from repro.sim.gpu import (
    FixedUnitRecorder,
    GPUSimulator,
    LaunchResult,
    SimCounters,
    UnitRecord,
)
from repro.sim.parallel import (
    SMGroupRun,
    group_config,
    plan_sm_groups,
    simulate_sm_groups,
)
from repro.sim.worker import get_simulator, init_worker

__all__ = [
    "LRUCache",
    "DictLRUCache",
    "ArrayLRUCache",
    "ShardedL2",
    "L2_ORGANIZATIONS",
    "make_l2",
    "DRAMModel",
    "ArrayDRAMModel",
    "MemoryHierarchy",
    "ReferenceMemoryHierarchy",
    "VectorMemoryHierarchy",
    "MEMORY_FRONT_ENDS",
    "make_memory",
    "GPUSimulator",
    "LaunchResult",
    "SimCounters",
    "FixedUnitRecorder",
    "UnitRecord",
    "SMGroupRun",
    "simulate_sm_groups",
    "plan_sm_groups",
    "group_config",
    "init_worker",
    "get_simulator",
]
