"""Scale-sensitivity study (beyond the paper).

EXPERIMENTS.md attributes the reduced-scale TBPoint sample sizes to
warm-up overhead that amortizes at paper scale.  This driver makes that
claim checkable: it runs TBPoint (against a full reference) on one
kernel across workload scales and reports how error and sample size move
as launches grow toward Table VI size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import run_full
from repro.config import GPUConfig, SamplingConfig
from repro.core.estimates import sampling_error
from repro.core.pipeline import run_tbpoint
from repro.profiler import profile_kernel
from repro.sim import GPUSimulator
from repro.workloads import get_workload


@dataclass(frozen=True)
class ScalePoint:
    """TBPoint accuracy/cost at one workload scale."""

    kernel: str
    scale: float
    num_blocks: int
    total_warp_insts: int
    full_ipc: float
    tbpoint_ipc: float
    error: float
    sample_size: float


def run_scaling(
    kernel_name: str,
    scales: tuple[float, ...] = (0.0625, 0.125, 0.25, 0.5),
    seed: int = 2014,
    gpu: GPUConfig | None = None,
    sampling: SamplingConfig | None = None,
) -> list[ScalePoint]:
    """Measure TBPoint error and sample size across workload scales.

    Each scale gets its own full-simulation reference, so the cost grows
    linearly with the largest scale; keep the list modest for big
    kernels.
    """
    gpu = gpu or GPUConfig()
    sampling = sampling or SamplingConfig()
    points: list[ScalePoint] = []
    for scale in scales:
        kernel = get_workload(kernel_name, scale=scale, seed=seed)
        profile = profile_kernel(kernel)
        simulator = GPUSimulator(gpu)
        full = run_full(kernel, gpu, simulator)
        tbp = run_tbpoint(
            kernel, gpu, sampling, profile=profile, simulator=simulator
        )
        points.append(
            ScalePoint(
                kernel=kernel_name,
                scale=scale,
                num_blocks=kernel.num_blocks,
                total_warp_insts=profile.total_warp_insts,
                full_ipc=full.overall_ipc,
                tbpoint_ipc=tbp.overall_ipc,
                error=sampling_error(tbp.overall_ipc, full.overall_ipc),
                sample_size=tbp.sample_size,
            )
        )
    return points


__all__ = ["ScalePoint", "run_scaling"]
