"""Scale-sensitivity study (beyond the paper).

EXPERIMENTS.md attributes the reduced-scale TBPoint sample sizes to
warm-up overhead that amortizes at paper scale.  This driver makes that
claim checkable: it runs TBPoint (against a full reference) on one
kernel across workload scales and reports how error and sample size move
as launches grow toward Table VI size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import run_full
from repro.config import GPUConfig, SamplingConfig
from repro.core.estimates import sampling_error
from repro.core.pipeline import run_tbpoint
from repro.exec.cache import cached_profile
from repro.exec.engine import DEFAULT_EXECUTION, ExecutionConfig, parallel_map
from repro.exec.journal import open_sweep_journal
from repro.sim import GPUSimulator
from repro.workloads import get_workload


@dataclass(frozen=True)
class ScalePoint:
    """TBPoint accuracy/cost at one workload scale."""

    kernel: str
    scale: float
    num_blocks: int
    total_warp_insts: int
    full_ipc: float
    tbpoint_ipc: float
    error: float
    sample_size: float


def _scale_task(task) -> ScalePoint:
    """Picklable per-scale worker (each scale is an independent trace)."""
    kernel_name, scale, seed, gpu, sampling, exec_config = task
    kernel = get_workload(kernel_name, scale=scale, seed=seed)
    profile = cached_profile(kernel, exec_config)
    simulator = GPUSimulator(gpu)
    full = run_full(kernel, gpu, simulator, exec_config=exec_config)
    tbp = run_tbpoint(
        kernel,
        gpu,
        sampling,
        profile=profile,
        simulator=simulator,
        exec_config=exec_config,
    )
    return ScalePoint(
        kernel=kernel_name,
        scale=scale,
        num_blocks=kernel.num_blocks,
        total_warp_insts=profile.total_warp_insts,
        full_ipc=full.overall_ipc,
        tbpoint_ipc=tbp.overall_ipc,
        error=sampling_error(tbp.overall_ipc, full.overall_ipc),
        sample_size=tbp.sample_size,
    )


def run_scaling(
    kernel_name: str,
    scales: tuple[float, ...] = (0.0625, 0.125, 0.25, 0.5),
    seed: int = 2014,
    gpu: GPUConfig | None = None,
    sampling: SamplingConfig | None = None,
    exec_config: ExecutionConfig | None = None,
) -> list[ScalePoint]:
    """Measure TBPoint error and sample size across workload scales.

    Each scale gets its own full-simulation reference, so the cost grows
    linearly with the largest scale; keep the list modest for big
    kernels.  With ``exec_config.jobs > 1`` the scales fan out across
    worker processes (each one serial inside); points come back in
    input-scale order regardless.  With ``exec_config.journal`` each
    completed scale point is checkpointed, and ``exec_config.resume``
    skips journaled scales (CLI ``--resume``).
    """
    gpu = gpu or GPUConfig()
    sampling = sampling or SamplingConfig()
    exec_config = exec_config or DEFAULT_EXECUTION
    jobs = exec_config.effective_jobs
    if jobs > 1 and len(scales) > 1:
        inner = exec_config.serial()
    else:
        inner = exec_config.with_(fault_plan=None, journal=False, resume=False)
    journal, done = open_sweep_journal(
        "scaling", (kernel_name, tuple(scales), seed, gpu, sampling),
        exec_config,
    )
    todo = [scale for scale in scales if repr(scale) not in done]
    tasks = [
        (kernel_name, scale, seed, gpu, sampling, inner) for scale in todo
    ]
    on_result = None
    if journal is not None:
        on_result = lambda i, point: journal.record(repr(todo[i]), point)  # noqa: E731
    fresh = parallel_map(
        _scale_task, tasks, jobs, config=exec_config, on_result=on_result
    )
    by_scale = {**done, **{repr(s): p for s, p in zip(todo, fresh)}}
    return [by_scale[repr(scale)] for scale in scales]


__all__ = ["ScalePoint", "run_scaling"]
