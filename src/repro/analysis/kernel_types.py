"""Regular/irregular kernel classification from thread-block sizes (Fig. 8).

Fig. 8 plots the *thread-block size ratio* (block size normalized by the
launch-population average) against thread-block ID: regular kernels show
a small set of flat levels, irregular kernels a scattered cloud.  The
classifier below captures that: a kernel is regular when its launches'
size distributions are tightly quantized (low within-launch variation or
very few distinct size levels)."""

from __future__ import annotations

import numpy as np

from repro.profiler.functional import KernelProfile, LaunchProfile

#: Within-launch size CoV below which a launch counts as uniform.
COV_THRESHOLD = 0.15

#: Fraction of distinct (rounded) size levels below which a launch
#: counts as quantized even if its CoV is high.
DISTINCT_FRACTION = 0.05


def block_size_ratios(profile: KernelProfile) -> np.ndarray:
    """Concatenated thread-block size ratios across all launches —
    the Y series of one Fig. 8 panel (X is the running thread-block ID)."""
    return np.concatenate([p.block_size_ratio for p in profile.launches])


def launch_is_regular(launch: LaunchProfile) -> bool:
    """One launch is regular when its block sizes are uniform or take
    only a handful of distinct levels."""
    ratios = launch.block_size_ratio
    cov = launch.block_size_cov
    if cov < COV_THRESHOLD:
        return True
    distinct = len(np.unique(np.round(ratios, 2)))
    return distinct / len(ratios) < DISTINCT_FRACTION


def classify_kernel(profile: KernelProfile) -> str:
    """Classify a kernel as ``"regular"`` or ``"irregular"`` — regular
    when the majority of its launches are regular."""
    votes = sum(launch_is_regular(p) for p in profile.launches)
    return "regular" if votes * 2 >= profile.num_launches else "irregular"


__all__ = [
    "block_size_ratios",
    "launch_is_regular",
    "classify_kernel",
    "COV_THRESHOLD",
    "DISTINCT_FRACTION",
]
