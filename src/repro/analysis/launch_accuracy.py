"""Per-launch prediction accuracy (finer-grained than Fig. 9).

The paper evaluates whole-kernel IPC, but TBPoint's Table IV composition
also yields a per-launch IPC prediction (each unsimulated launch
inherits its representative's IPC).  This module compares those
per-launch predictions against the full run's per-launch measurements —
useful when a user cares about one launch's behaviour, and a stricter
check of the inter-launch clustering than the kernel aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.full import FullRunResult
from repro.core.estimates import KernelEstimate


@dataclass(frozen=True)
class LaunchAccuracy:
    """Per-launch prediction errors of one TBPoint run."""

    errors: np.ndarray  # relative |est - full| / full, per launch
    simulated: np.ndarray  # bool per launch

    @property
    def max_error(self) -> float:
        return float(self.errors.max())

    @property
    def mean_error(self) -> float:
        return float(self.errors.mean())

    @property
    def mean_unsimulated_error(self) -> float:
        """Error over launches whose IPC was *predicted* (inherited from
        a representative) rather than measured — the pure inter-launch
        extrapolation error."""
        mask = ~self.simulated
        if not mask.any():
            return 0.0
        return float(self.errors[mask].mean())


def launch_accuracy(
    estimate: KernelEstimate, full: FullRunResult
) -> LaunchAccuracy:
    """Compare a kernel estimate's per-launch IPCs against a full run."""
    if len(estimate.launches) != len(full.launch_results):
        raise ValueError("estimate and full run disagree on launch count")
    errors = np.empty(len(estimate.launches))
    simulated = np.empty(len(estimate.launches), dtype=bool)
    for i, (est, ref) in enumerate(zip(estimate.launches, full.launch_results)):
        full_ipc = ref.machine_ipc
        errors[i] = abs(est.est_ipc - full_ipc) / full_ipc
        simulated[i] = est.simulated
    return LaunchAccuracy(errors=errors, simulated=simulated)


__all__ = ["LaunchAccuracy", "launch_accuracy"]
