"""Plain-text rendering of tables and series for benches and examples."""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:,.3f}" if abs(value) < 100 else f"{value:,.0f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(r) for r in str_rows)
    return "\n".join(lines)


def render_series(
    name: str, xs: Sequence, ys: Sequence[float], max_points: int = 12
) -> str:
    """Render a named (x, y) series compactly, subsampling long series."""
    if len(xs) != len(ys):
        raise ValueError("series length mismatch")
    n = len(xs)
    if n > max_points:
        idx = [round(i * (n - 1) / (max_points - 1)) for i in range(max_points)]
    else:
        idx = range(n)
    pairs = ", ".join(f"{xs[i]}:{ys[i]:.3g}" for i in idx)
    return f"{name}: {pairs}"


__all__ = ["render_table", "render_series"]
