"""Experiment drivers and reporting for the paper's tables and figures."""

from repro.analysis.kernel_types import block_size_ratios, classify_kernel
from repro.analysis.experiments import (
    ComparisonSummary,
    KernelComparison,
    SensitivityPoint,
    run_fig5_model,
    run_fig9_fig10,
    run_kernel_comparison,
    run_sensitivity,
    run_table1,
)
from repro.analysis.launch_accuracy import LaunchAccuracy, launch_accuracy
from repro.analysis.report import render_series, render_table
from repro.analysis.scaling import ScalePoint, run_scaling

__all__ = [
    "block_size_ratios",
    "classify_kernel",
    "KernelComparison",
    "ComparisonSummary",
    "SensitivityPoint",
    "run_kernel_comparison",
    "run_fig9_fig10",
    "run_sensitivity",
    "run_fig5_model",
    "run_table1",
    "render_table",
    "render_series",
    "LaunchAccuracy",
    "launch_accuracy",
    "ScalePoint",
    "run_scaling",
]
