"""Per-figure experiment drivers.

Each public ``run_*`` function regenerates the data behind one of the
paper's tables or figures; the benches under ``benchmarks/`` are thin
wrappers that time these drivers and print their rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    BaselineEstimate,
    estimate_random,
    estimate_simpoint,
    run_full,
)
from repro.config import ExperimentConfig, GPUConfig, SamplingConfig
from repro.core.estimates import geometric_mean, sampling_error
from repro.core.pipeline import TBPointResult, run_tbpoint
from repro.exec.cache import cached_profile
from repro.exec.engine import DEFAULT_EXECUTION, ExecutionConfig, parallel_map
from repro.exec.journal import open_sweep_journal
from repro.model.montecarlo import IPCVariation, ipc_variation
from repro.profiler.functional import KernelProfile
from repro.sim.gpu import GPUSimulator
from repro.workloads import ALL_KERNELS, benchmark_info, get_workload

#: Minimum sampling-unit size (warp instructions): keeps units from
#: collapsing to a handful of cycles on tiny scaled-down workloads.
MIN_UNIT_INSTS = 2_000


@dataclass
class KernelComparison:
    """Fig. 9 / Fig. 10 data for one kernel: the four techniques."""

    kernel: str
    kind: str
    full_ipc: float
    tbpoint: TBPointResult
    simpoint: BaselineEstimate
    random: BaselineEstimate
    total_warp_insts: int

    @property
    def tbpoint_error(self) -> float:
        return sampling_error(self.tbpoint.overall_ipc, self.full_ipc)

    @property
    def simpoint_error(self) -> float:
        return sampling_error(self.simpoint.overall_ipc, self.full_ipc)

    @property
    def random_error(self) -> float:
        return sampling_error(self.random.overall_ipc, self.full_ipc)

    @property
    def tbpoint_sample_size(self) -> float:
        return self.tbpoint.sample_size

    @property
    def simpoint_sample_size(self) -> float:
        return self.simpoint.sample_size

    @property
    def random_sample_size(self) -> float:
        return self.random.sample_size

    @property
    def skip_breakdown(self) -> tuple[float, float]:
        """(inter, intra) relative skipped-instruction shares (Fig. 11)."""
        return self.tbpoint.skip_breakdown()


@dataclass
class ComparisonSummary:
    """The full Fig. 9 + Fig. 10 sweep with headline geomeans."""

    comparisons: list[KernelComparison] = field(default_factory=list)
    #: How the per-kernel fan-out actually executed (``path``/``workers``/
    #: ``items`` plus the fault-handling counters ``attempts``/``retries``/
    #: ``pool_respawns``/``timed_out``/``serial_fallback``, from
    #: ``parallel_map``).  ``items`` counts only the kernels actually
    #: computed this invocation — on ``--resume`` it excludes
    #: journal-recovered kernels, which is how the chaos tests verify
    #: that resumption skipped completed work.
    exec_meta: dict = field(default_factory=dict)

    def geomean_errors(self) -> dict[str, float]:
        return {
            "tbpoint": geometric_mean(c.tbpoint_error for c in self.comparisons),
            "ideal-simpoint": geometric_mean(
                c.simpoint_error for c in self.comparisons
            ),
            "random": geometric_mean(c.random_error for c in self.comparisons),
        }

    def geomean_sample_sizes(self) -> dict[str, float]:
        return {
            "tbpoint": geometric_mean(
                c.tbpoint_sample_size for c in self.comparisons
            ),
            "ideal-simpoint": geometric_mean(
                c.simpoint_sample_size for c in self.comparisons
            ),
            "random": geometric_mean(
                c.random_sample_size for c in self.comparisons
            ),
        }


def _unit_size(total_warp_insts: int, target_units: int) -> int:
    return max(MIN_UNIT_INSTS, total_warp_insts // target_units)


def run_kernel_comparison(
    name: str,
    experiment: ExperimentConfig | None = None,
    gpu: GPUConfig | None = None,
    sampling: SamplingConfig | None = None,
    profile: KernelProfile | None = None,
    exec_config: ExecutionConfig | None = None,
) -> KernelComparison:
    """Run Full, TBPoint, Ideal-SimPoint and Random on one kernel."""
    experiment = experiment or ExperimentConfig()
    gpu = gpu or GPUConfig()
    sampling = sampling or SamplingConfig()
    exec_config = exec_config or DEFAULT_EXECUTION

    kernel = get_workload(name, scale=experiment.scale, seed=experiment.seed)
    if profile is None:
        profile = cached_profile(kernel, exec_config)
    simulator = GPUSimulator(gpu)

    unit_insts = _unit_size(profile.total_warp_insts, experiment.target_units)
    full = run_full(
        kernel, gpu, simulator, unit_insts=unit_insts, exec_config=exec_config
    )

    tbp = run_tbpoint(
        kernel,
        gpu,
        sampling,
        profile=profile,
        simulator=simulator,
        exec_config=exec_config,
    )
    rng = np.random.default_rng(experiment.seed)
    simpoint = estimate_simpoint(full, max_k=experiment.simpoint_max_k, rng=rng)
    random_est = estimate_random(
        full, fraction=experiment.random_fraction, rng=rng
    )
    return KernelComparison(
        kernel=name,
        kind=benchmark_info(name).kind,
        full_ipc=full.overall_ipc,
        tbpoint=tbp,
        simpoint=simpoint,
        random=random_est,
        total_warp_insts=full.total_warp_insts,
    )


def _comparison_task(task) -> KernelComparison:
    """Picklable per-kernel worker for the Fig. 9/10 sweep."""
    name, experiment, gpu, sampling, exec_config = task
    return run_kernel_comparison(
        name, experiment, gpu, sampling, exec_config=exec_config
    )


def _inner_config(exec_config: ExecutionConfig, fanout: bool) -> ExecutionConfig:
    """The execution config handed to per-task workers.  Fan-out tasks
    run fully serial inside (pools never nest); either way the fault
    plan and journaling stay with the sweep-level map that owns the
    task indices."""
    if fanout:
        return exec_config.serial()
    return exec_config.with_(fault_plan=None, journal=False, resume=False)


def run_fig9_fig10(
    kernels: tuple[str, ...] = ALL_KERNELS,
    experiment: ExperimentConfig | None = None,
    gpu: GPUConfig | None = None,
    sampling: SamplingConfig | None = None,
    exec_config: ExecutionConfig | None = None,
) -> ComparisonSummary:
    """The headline evaluation: all kernels x all techniques.

    With ``exec_config.jobs > 1`` the per-kernel comparisons fan out
    across worker processes (each worker runs its kernel serially, so
    pools never nest); results are merged in kernel order, identical to
    the serial sweep.

    With ``exec_config.journal`` each completed kernel is checkpointed
    to the sweep journal the moment it finishes, and
    ``exec_config.resume`` recovers journaled kernels from a killed
    earlier run instead of recomputing them (CLI ``--resume``).
    """
    experiment = experiment or ExperimentConfig()
    gpu = gpu or GPUConfig()
    sampling = sampling or SamplingConfig()
    exec_config = exec_config or DEFAULT_EXECUTION
    jobs = exec_config.effective_jobs
    inner = _inner_config(exec_config, fanout=jobs > 1 and len(kernels) > 1)
    journal, done = open_sweep_journal(
        "fig9_fig10", (tuple(kernels), experiment, gpu, sampling), exec_config
    )
    todo = [name for name in kernels if name not in done]
    tasks = [(name, experiment, gpu, sampling, inner) for name in todo]
    exec_meta: dict = {}
    on_result = None
    if journal is not None:
        on_result = lambda i, result: journal.record(todo[i], result)  # noqa: E731
    fresh = parallel_map(
        _comparison_task, tasks, jobs,
        meta=exec_meta, config=exec_config, on_result=on_result,
    )
    by_name = {**done, **dict(zip(todo, fresh))}
    summary = ComparisonSummary(exec_meta=exec_meta)
    summary.comparisons.extend(by_name[name] for name in kernels)
    return summary


# ----------------------------------------------------------------------
# Fig. 11: inter/intra skipped-instruction breakdown
# ----------------------------------------------------------------------
def _breakdown_task(task) -> TBPointResult:
    """Picklable per-kernel worker for the Fig. 11 sweep."""
    name, experiment, gpu, sampling, exec_config = task
    experiment = experiment or ExperimentConfig()
    kernel = get_workload(name, scale=experiment.scale, seed=experiment.seed)
    return run_tbpoint(kernel, gpu, sampling, exec_config=exec_config)


def run_breakdown(
    kernels: tuple[str, ...] = ALL_KERNELS,
    experiment: ExperimentConfig | None = None,
    gpu: GPUConfig | None = None,
    sampling: SamplingConfig | None = None,
    exec_config: ExecutionConfig | None = None,
) -> list[TBPointResult]:
    """TBPoint runs for Fig. 11's skipped-instruction breakdown, one
    result per kernel in input order."""
    exec_config = exec_config or DEFAULT_EXECUTION
    jobs = exec_config.effective_jobs
    inner = _inner_config(exec_config, fanout=jobs > 1 and len(kernels) > 1)
    tasks = [(name, experiment, gpu, sampling, inner) for name in kernels]
    return parallel_map(_breakdown_task, tasks, jobs, config=exec_config)


# ----------------------------------------------------------------------
# Sensitivity to hardware configuration (Figs. 12-13)
# ----------------------------------------------------------------------
@dataclass
class SensitivityPoint:
    """TBPoint error and sample size for one (warps/SM, #SMs) config."""

    kernel: str
    warps_per_sm: int
    num_sms: int
    error: float
    sample_size: float

    @property
    def label(self) -> str:
        """Fig. 12 legend style: W<warps>S<SMs>."""
        return f"W{self.warps_per_sm}S{self.num_sms}"


#: The hardware configurations swept in Figs. 12-13 (W warps per SM,
#: S SMs) — occupancy varies 4x across the sweep.
SENSITIVITY_CONFIGS: tuple[tuple[int, int], ...] = (
    (24, 7),
    (48, 7),
    (24, 14),
    (48, 14),
)


def _sensitivity_task(task) -> list[SensitivityPoint]:
    """Picklable per-kernel worker: all hardware configs of one kernel
    against one shared (cached) functional profile."""
    name, configs, experiment, sampling, exec_config = task
    kernel = get_workload(name, scale=experiment.scale, seed=experiment.seed)
    profile = cached_profile(kernel, exec_config)  # one-time profiling
    points: list[SensitivityPoint] = []
    for warps, sms in configs:
        gpu = GPUConfig().with_(warps_per_sm=warps, num_sms=sms)
        simulator = GPUSimulator(gpu)
        full = run_full(kernel, gpu, simulator, exec_config=exec_config)
        tbp = run_tbpoint(
            kernel,
            gpu,
            sampling,
            profile=profile,
            simulator=simulator,
            exec_config=exec_config,
        )
        points.append(
            SensitivityPoint(
                kernel=name,
                warps_per_sm=warps,
                num_sms=sms,
                error=sampling_error(tbp.overall_ipc, full.overall_ipc),
                sample_size=tbp.sample_size,
            )
        )
    return points


def run_sensitivity(
    kernels: tuple[str, ...],
    configs: tuple[tuple[int, int], ...] = SENSITIVITY_CONFIGS,
    experiment: ExperimentConfig | None = None,
    sampling: SamplingConfig | None = None,
    exec_config: ExecutionConfig | None = None,
) -> list[SensitivityPoint]:
    """Run TBPoint against a full reference for each hardware config.

    Per Section V-C, the functional profile is computed once per kernel
    and reused across configurations; only the epoch clustering (inside
    ``run_tbpoint``) is redone, because the system occupancy changes.
    With ``exec_config.jobs > 1`` kernels fan out across worker
    processes; points are returned in (kernel, config) input order
    either way.  With ``exec_config.journal`` each completed kernel
    (all its hardware configs) is checkpointed, and
    ``exec_config.resume`` skips journaled kernels (CLI ``--resume``).
    """
    experiment = experiment or ExperimentConfig()
    sampling = sampling or SamplingConfig()
    exec_config = exec_config or DEFAULT_EXECUTION
    jobs = exec_config.effective_jobs
    inner = _inner_config(exec_config, fanout=jobs > 1 and len(kernels) > 1)
    journal, done = open_sweep_journal(
        "sensitivity", (tuple(kernels), tuple(configs), experiment, sampling),
        exec_config,
    )
    todo = [name for name in kernels if name not in done]
    tasks = [(name, configs, experiment, sampling, inner) for name in todo]
    on_result = None
    if journal is not None:
        on_result = lambda i, points: journal.record(todo[i], points)  # noqa: E731
    fresh = parallel_map(
        _sensitivity_task, tasks, jobs, config=exec_config, on_result=on_result
    )
    by_name = {**done, **dict(zip(todo, fresh))}
    return [point for name in kernels for point in by_name[name]]


# ----------------------------------------------------------------------
# Fig. 5: the Markov / Monte-Carlo model study
# ----------------------------------------------------------------------
#: The (p, M, N) configurations shown in Fig. 5's legend.
FIG5_CONFIGS: tuple[tuple[float, float, int], ...] = (
    (0.05, 100, 4),
    (0.05, 400, 4),
    (0.1, 100, 4),
    (0.1, 400, 4),
    (0.2, 200, 4),
    (0.05, 100, 8),
    (0.1, 400, 8),
    (0.2, 200, 8),
)


def run_fig5_model(
    configs: tuple[tuple[float, float, int], ...] = FIG5_CONFIGS,
    num_samples: int = 10_000,
    seed: int = 2014,
) -> list[IPCVariation]:
    """Monte-Carlo IPC-variation study for each (p, M, N) curve."""
    rng = np.random.default_rng(seed)
    return [
        ipc_variation(p, m, n, num_samples=num_samples, rng=rng)
        for (p, m, n) in configs
    ]


# ----------------------------------------------------------------------
# Table I: GPU time vs projected simulation time
# ----------------------------------------------------------------------
#: Table I's native GPU execution times (ms, NVIDIA Quadro 6000), from
#: Burtscher et al. via the paper.
TABLE1_GPU_MS: tuple[tuple[str, float], ...] = (
    ("NB", 28557),
    ("SP", 18779),
    ("SSSP", 7067),
    ("PTA", 4485),
    ("TSP", 4456),
    ("DMR", 3391),
    ("MM", 881),
)

#: Assumed effective GPU throughput in warp instructions per second used
#: to convert Table I's wall-clock times into instruction counts
#: (14 SMs x 1.15 GHz x ~0.35 sustained IPC).
GPU_WARP_INSTS_PER_SEC = 5.6e9


@dataclass
class Table1Row:
    benchmark: str
    gpu_ms: float
    projected_sim_seconds: float
    slowdown: float

    @property
    def human_sim_time(self) -> str:
        s = self.projected_sim_seconds
        if s >= 86_400 * 14:
            return f"{s / (86_400 * 7):.2f} weeks"
        if s >= 86_400:
            return f"{s / 86_400:.2f} days"
        return f"{s / 3_600:.2f} hours"


def measure_simulator_throughput(
    kernel_name: str = "hotspot",
    scale: float = 0.5,
    seed: int = 2014,
    gpu: GPUConfig | None = None,
) -> float:
    """Measure this machine's simulator throughput (warp insts/sec) by
    timing a full run of a calibration kernel."""
    kernel = get_workload(kernel_name, scale=scale, seed=seed)
    gpu = gpu or GPUConfig()
    simulator = GPUSimulator(gpu)
    start = time.perf_counter()
    full = run_full(kernel, gpu, simulator)
    elapsed = time.perf_counter() - start
    return full.total_warp_insts / elapsed


def run_table1(sim_insts_per_sec: float | None = None) -> list[Table1Row]:
    """Project Table I: simulation times for the paper's GPU timings at
    this machine's measured simulator throughput."""
    if sim_insts_per_sec is None:
        sim_insts_per_sec = measure_simulator_throughput()
    slowdown = GPU_WARP_INSTS_PER_SEC / sim_insts_per_sec
    rows = []
    for name, gpu_ms in TABLE1_GPU_MS:
        insts = gpu_ms / 1_000 * GPU_WARP_INSTS_PER_SEC
        rows.append(
            Table1Row(
                benchmark=name,
                gpu_ms=gpu_ms,
                projected_sim_seconds=insts / sim_insts_per_sec,
                slowdown=slowdown,
            )
        )
    return rows


__all__ = [
    "KernelComparison",
    "ComparisonSummary",
    "run_kernel_comparison",
    "run_fig9_fig10",
    "run_breakdown",
    "SensitivityPoint",
    "SENSITIVITY_CONFIGS",
    "run_sensitivity",
    "FIG5_CONFIGS",
    "run_fig5_model",
    "TABLE1_GPU_MS",
    "Table1Row",
    "measure_simulator_throughput",
    "run_table1",
    "MIN_UNIT_INSTS",
]
