"""Lint framework core: findings, parsed files, pragmas, checker registry.

The framework is deliberately small and dependency-free: a *checker* is
a class with a ``name``, a ``rules`` table and either a per-file
``check_file(parsed_file)`` hook or a project-wide
``check_project(context)`` hook (or both).  Checkers register
themselves with :func:`register`; the runner instantiates every
registered checker, walks the requested files in sorted order (the
linter eats its own determinism dogfood) and applies pragma suppression
and the baseline before reporting.

Pragma syntax (found in comments, via :mod:`tokenize`):

* ``# lint: disable=RULE[,RULE...]`` — suppress those rules on this
  line (trailing comment) or, when the comment stands alone on its own
  line, on the next line;
* ``# lint: disable-file=RULE[,RULE...]`` — suppress for the whole file;
* ``# lint: hot`` — mark the ``def``/``for``/``while`` on this line (or
  the line below the comment) as a *hot region* for the hot-loop
  checker.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

#: Bump whenever rules change behaviour: invalidates the parse cache.
LINT_VERSION = 1

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable-file|disable|hot)\s*(?:=\s*(?P<rules>[A-Za-z0-9_,\s]+))?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, attached to a file position."""

    path: str  #: repo-relative posix path
    line: int
    col: int
    rule: str
    message: str
    checker: str = ""

    @property
    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file, so a
        baselined legacy finding survives unrelated edits above it."""
        return f"{self.path}::{self.rule}::{self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "checker": self.checker,
        }

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class ParsedFile:
    """One source file: AST, raw lines, and the pragma tables."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: line -> frozenset of suppressed rules on that line
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        #: lines carrying a ``# lint: hot`` mark
        self.hot_lines: set[int] = set()
        self._scan_pragmas()

    # ------------------------------------------------------------------
    # Pragmas
    # ------------------------------------------------------------------
    def _scan_pragmas(self) -> None:
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(self.source).readline)
            )
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            # A comment alone on its line applies to the next line.
            alone = self.lines[line - 1].lstrip().startswith("#")
            kind = match.group("kind")
            if kind == "hot":
                self.hot_lines.add(line + 1 if alone else line)
                continue
            rules = {
                r.strip() for r in (match.group("rules") or "").split(",")
                if r.strip()
            }
            if not rules:
                continue
            if kind == "disable-file":
                self.file_disables |= rules
            else:
                target = line + 1 if alone else line
                self.line_disables.setdefault(target, set()).update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        if rule in self.file_disables:
            return True
        return rule in self.line_disables.get(line, ())

    def is_hot_marked(self, node: ast.AST) -> bool:
        """Is this ``def``/``for``/``while`` marked ``# lint: hot``?"""
        line = getattr(node, "lineno", None)
        return line is not None and line in self.hot_lines

    # ------------------------------------------------------------------
    # Helpers checkers share
    # ------------------------------------------------------------------
    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(Path(self.rel).parts)

    def in_dirs(self, names: Iterable[str]) -> bool:
        """Does the file live under any directory with one of these
        names (at any depth)?  Used for subsystem-scoped rules."""
        dirs = set(self.parts[:-1])
        return any(name in dirs for name in names)

    def content_hash(self, salt: str = "") -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(f"lint:{LINT_VERSION}:{salt}:".encode())
        h.update(self.source.encode())
        return h.hexdigest()


@dataclass
class FunctionInfo:
    """One function/method definition in the lightweight per-package
    call graph (see :meth:`ProjectContext.package_functions`)."""

    pf: "ParsedFile"
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    name: str
    is_async: bool
    #: Bare names this function calls directly (``f()`` -> ``f``,
    #: ``self.g()``/``x.g()`` -> ``g``); nested defs are not descended
    #: into.  Name-based, so distinct methods sharing a name collide —
    #: checkers must treat ambiguous resolutions conservatively.
    calls: frozenset[str] = frozenset()


def _bare_callee(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


@dataclass
class ProjectContext:
    """What project-wide checkers see: every linted file plus the parsed
    test suite (for cross-referencing implementations against tests)."""

    files: list[ParsedFile]
    test_files: list[ParsedFile] = field(default_factory=list)
    _pkg_graphs: dict[str, dict[str, list[FunctionInfo]]] = field(
        default_factory=dict, repr=False
    )

    def by_rel(self, rel: str) -> ParsedFile | None:
        for pf in self.files:
            if pf.rel == rel:
                return pf
        return None

    def package_functions(self, pf: ParsedFile) -> dict[str, list[FunctionInfo]]:
        """The package call graph for ``pf``'s directory: every function
        and method defined in any linted file sharing that directory,
        keyed by bare name.  One level of resolution only — enough to
        see through a sync helper in the same package, cheap enough to
        build per lint run.  Built lazily and cached per directory."""
        directory = Path(pf.rel).parent.as_posix()
        graph = self._pkg_graphs.get(directory)
        if graph is None:
            graph = {}
            for other in self.files:
                if Path(other.rel).parent.as_posix() != directory:
                    continue
                for node in ast.walk(other.tree):
                    if not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    calls = frozenset(
                        name
                        for sub in walk_skipping_functions(node)
                        if isinstance(sub, ast.Call)
                        and (name := _bare_callee(sub)) is not None
                    )
                    graph.setdefault(node.name, []).append(
                        FunctionInfo(
                            pf=other,
                            node=node,
                            name=node.name,
                            is_async=isinstance(node, ast.AsyncFunctionDef),
                            calls=calls,
                        )
                    )
            self._pkg_graphs[directory] = graph
        return graph


class Checker:
    """Base class: subclass, set ``name`` and ``rules``, implement
    ``check_file`` and/or ``check_project``, and decorate with
    :func:`register`."""

    #: unique checker name (used by ``--checker`` selection)
    name: str = ""
    #: rule id -> one-line description
    rules: dict[str, str] = {}

    def check_file(self, pf: ParsedFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        return iter(())


#: Registered checker classes, in registration order.
REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.name:
        raise ValueError(f"checker {cls.__name__} has no name")
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    for rule in cls.rules:
        owner = rule_owner(rule)
        if owner is not None:
            raise ValueError(
                f"rule {rule} already owned by checker {owner!r}"
            )
    REGISTRY[cls.name] = cls
    return cls


def rule_owner(rule: str) -> str | None:
    for name, cls in REGISTRY.items():
        if rule in cls.rules:
            return name
    return None


def all_rules() -> dict[str, str]:
    """Every registered rule id -> description, sorted by id."""
    out: dict[str, str] = {}
    for cls in REGISTRY.values():
        out.update(cls.rules)
    return dict(sorted(out.items()))


# ----------------------------------------------------------------------
# Shared AST utilities
# ----------------------------------------------------------------------

def import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted origins they were imported as:
    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import monotonic as mono`` -> ``{"mono": "time.monotonic"}``.
    Only module-level and function-level imports are walked — wherever
    they appear, the alias is recorded (shadowing is rare enough not to
    matter for lint purposes)."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    out[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                out[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return out


def qualified_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Resolve a ``Name``/``Attribute`` chain to its dotted origin using
    the file's import aliases; ``None`` for anything unresolvable
    (calls on computed objects, subscripts, ...)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def walk_skipping_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a subtree without descending into nested function/class
    definitions (their bodies execute in their own scope/time)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))
