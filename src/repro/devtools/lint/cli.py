"""``repro lint`` / ``python -m repro.devtools.lint`` command line.

Exit codes: 0 — clean (no findings; or, with ``--error-on-new``, no
*non-baselined* findings); 1 — findings; 2 — usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    write_baseline,
)
from repro.devtools.lint.core import REGISTRY
from repro.devtools.lint.report import format_human, format_json, format_rules
from repro.devtools.lint.runner import run_lint

#: Default on-disk parse-cache location (relative to the lint root).
DEFAULT_CACHE_NAME = ".lint-cache.json"


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments; shared by the standalone entry point
    and the ``repro lint`` subcommand so their flags never drift."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root for relative paths and defaults "
             "(default: current directory)",
    )
    parser.add_argument(
        "--tests-dir", type=Path, default=None,
        help="test-suite directory the oracle-parity checker "
             "cross-references (default: <root>/tests)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline suppression file (default: <root>/"
             f"{DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file and "
             "exit 0",
    )
    parser.add_argument(
        "--error-on-new", action="store_true",
        help="fail only on findings the baseline does not cover "
             "(the CI mode); without this flag any finding fails",
    )
    parser.add_argument(
        "--no-parse-cache", action="store_true",
        help="disable the on-disk per-file parse cache",
    )
    parser.add_argument(
        "--parse-cache", type=Path, default=None, metavar="FILE",
        help=f"parse-cache location (default: <root>/{DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--checker", action="append", dest="checkers", metavar="NAME",
        help="run only this checker (repeatable); default: all "
             f"({', '.join(REGISTRY)})",
    )
    parser.add_argument(
        "--rules", type=str, default=None, metavar="RULES",
        help="comma-separated rule ids or family prefixes to run "
             "(e.g. ASYNC,MSG001); unknown names are a usage error "
             "(exit 2)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a configured lint invocation; returns the exit code."""
    if args.list_rules:
        print(format_rules())
        return 0

    root = (args.root or Path.cwd()).resolve()
    baseline_path = args.baseline
    # An explicit --baseline must exist and parse (exit 2 otherwise: a
    # typo'd path silently meaning "empty baseline" flips CI red — or,
    # with --write-baseline, green — for the wrong reason).  The
    # auto-discovered default stays lenient.
    baseline_strict = baseline_path is not None and not args.write_baseline
    if baseline_path is None:
        candidate = root / DEFAULT_BASELINE_NAME
        if candidate.is_file() or args.write_baseline:
            baseline_path = candidate
    cache_path = None
    if not args.no_parse_cache:
        cache_path = args.parse_cache or (root / DEFAULT_CACHE_NAME)
    rules = None
    if args.rules is not None:
        rules = [spec for spec in args.rules.split(",") if spec.strip()]

    try:
        result = run_lint(
            paths=[p for p in args.paths] or None,
            root=root,
            tests_dir=args.tests_dir,
            baseline_path=None if args.write_baseline else baseline_path,
            cache_path=cache_path,
            checker_names=args.checkers,
            rules=rules,
            baseline_strict=baseline_strict,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        assert baseline_path is not None
        entries = write_baseline(baseline_path, result.findings)
        print(
            f"baseline written to {baseline_path}: {entries} entr"
            f"{'y' if entries == 1 else 'ies'} covering "
            f"{len(result.findings)} finding(s)"
        )
        return 0

    print(format_json(result) if args.as_json else format_human(result))
    if result.errors:
        return 2
    if args.error_on_new:
        return 0 if result.ok_against_baseline else 1
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Static determinism/process-safety/hot-loop/"
                    "oracle-parity and concurrency-contract checks "
                    "(async/fork safety, message protocol, counter "
                    "parity) for the reproduction.",
    )
    configure_parser(parser)
    return run(parser.parse_args(argv))
