"""Lint runner: file discovery, parse cache, checker execution.

Determinism note: the runner is itself held to the determinism contract
it enforces — files are discovered with ``sorted(rglob(...))``
(# the linter's own DET005 discipline), checkers run in registration
order, and findings are reported in ``(path, line, col, rule)`` order,
so two runs over the same tree produce byte-identical output.

The parse cache (``--cache``) has two sections.  Per-file entries store
each file's findings keyed by a content hash salted with the lint
version and the selected ruleset, so unchanged files are not re-parsed
across runs.  Project-wide checkers (oracle parity, async safety,
message protocol, counter parity) are cross-file by nature, so their
entries are *dependency-aware*: keyed on a combined hash over the
content hashes of every contributing file (all linted files plus the
parsed test suite) — editing any one contributing file invalidates
every project entry.  CI persists the cache file between runs.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint import checkers as _builtin_checkers  # noqa: F401
from repro.devtools.lint.baseline import load_baseline, split_by_baseline
from repro.devtools.lint.core import (
    LINT_VERSION,
    Checker,
    Finding,
    ParsedFile,
    ProjectContext,
    REGISTRY,
)

#: Bump when cache file layout changes (entries are additionally salted
#: with the lint version and ruleset via the content hashes).
CACHE_VERSION = 2

#: Version of the ``--json`` output shape (key set/meaning), distinct
#: from :data:`LINT_VERSION` which tracks rule behaviour.  CI parses
#: against this.
JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]          #: every non-suppressed finding, sorted
    new: list[Finding]               #: findings not covered by the baseline
    baselined: list[Finding]         #: findings the baseline accepts
    files_checked: int = 0
    cache_hits: int = 0              #: per-file cache hits
    project_cache_hits: int = 0      #: project-checker cache hits
    errors: list[str] = field(default_factory=list)  #: unparsable files

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def ok_against_baseline(self) -> bool:
        return not self.new

    def as_dict(self) -> dict[str, object]:
        return {
            "schema": JSON_SCHEMA_VERSION,
            "version": LINT_VERSION,
            "files_checked": self.files_checked,
            "cache_hits": self.cache_hits,
            "project_cache_hits": self.project_cache_hits,
            "errors": list(self.errors),
            "counts": dict(
                sorted(Counter(f.rule for f in self.findings).items())
            ),
            "new": [f.as_dict() for f in self.new],
            "baselined": [f.as_dict() for f in self.baselined],
        }


def discover_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted (DET005: never
    depend on filesystem enumeration order)."""
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    seen: set[Path] = set()
    unique = []
    for path in sorted(out):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _decode_findings(entry: dict) -> list[Finding] | None:
    try:
        return [
            Finding(
                path=str(f["path"]), line=int(f["line"]),
                col=int(f["col"]), rule=str(f["rule"]),
                message=str(f["message"]), checker=str(f["checker"]),
            )
            for f in entry["findings"]
        ]
    except (KeyError, TypeError, ValueError):
        return None


class _ParseCache:
    """On-disk findings cache: per-file entries keyed by content hash,
    plus dependency-aware project-checker entries keyed by a combined
    hash over every contributing file (see :func:`_project_state_hash`)."""

    def __init__(self, path: Path | None, salt: str):
        self.path = path
        self.salt = salt
        self.entries: dict[str, dict] = {}
        self.project_entries: dict[str, dict] = {}
        self.hits = 0
        self.project_hits = 0
        self._dirty = False
        if path is not None:
            try:
                data = json.loads(path.read_text())
                if int(data.get("version", 0)) == CACHE_VERSION:
                    self.entries = dict(data.get("files", {}))
                    self.project_entries = dict(data.get("project", {}))
            except (OSError, ValueError, TypeError):
                self.entries = {}
                self.project_entries = {}

    def get(self, rel: str, content_hash: str) -> list[Finding] | None:
        entry = self.entries.get(rel)
        if not entry or entry.get("sha") != content_hash:
            return None
        findings = _decode_findings(entry)
        if findings is None:
            return None
        self.hits += 1
        return findings

    def put(self, rel: str, content_hash: str, findings: list[Finding]) -> None:
        self.entries[rel] = {
            "sha": content_hash,
            "findings": [f.as_dict() for f in findings],
        }
        self._dirty = True

    def get_project(
        self, checker_name: str, state_hash: str
    ) -> list[Finding] | None:
        entry = self.project_entries.get(checker_name)
        if not entry or entry.get("sha") != state_hash:
            return None
        findings = _decode_findings(entry)
        if findings is None:
            return None
        self.project_hits += 1
        return findings

    def put_project(
        self, checker_name: str, state_hash: str, findings: list[Finding]
    ) -> None:
        self.project_entries[checker_name] = {
            "sha": state_hash,
            "findings": [f.as_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "files": {rel: self.entries[rel] for rel in sorted(self.entries)},
            "project": {
                name: self.project_entries[name]
                for name in sorted(self.project_entries)
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload))
        except OSError:
            pass  # cache is an accelerator, never a failure source


def _project_state_hash(
    files: list[ParsedFile], test_files: list[ParsedFile], salt: str
) -> str:
    """Combined hash of every file a project checker can read.  Any
    contributing file changing (content, rename, add, remove — in the
    linted set *or* the test suite) changes the hash, so a cross-file
    rule can never serve a stale cached verdict."""
    h = hashlib.blake2b(digest_size=16)
    h.update(f"lint-project:{LINT_VERSION}:{salt}:".encode())
    for label, group in (("src", files), ("test", test_files)):
        for pf in sorted(group, key=lambda p: p.rel):
            h.update(f"{label}:{pf.rel}:{pf.content_hash(salt)}\n".encode())
    return h.hexdigest()


def select_rules(specs: list[str]) -> set[str]:
    """Resolve ``--rules`` entries (exact rule ids or family prefixes:
    ``ASYNC001`` or ``ASYNC``) against the registry.  An entry matching
    nothing is a usage error (``ValueError`` -> exit 2): a typo'd rule
    filter silently meaning "skip everything" would green-light CI."""
    registered = sorted(
        rule for cls in REGISTRY.values() for rule in cls.rules
    )
    selected: set[str] = set()
    unknown: list[str] = []
    for spec in specs:
        spec = spec.strip().upper()
        if not spec:
            continue
        matched = {r for r in registered if r == spec or r.startswith(spec)}
        if not matched:
            unknown.append(spec)
        selected |= matched
    if unknown:
        raise ValueError(
            f"unknown rule(s) {unknown}; registered rules: {registered}"
        )
    return selected


def run_lint(
    paths: list[Path] | None = None,
    root: Path | None = None,
    tests_dir: Path | None = None,
    baseline_path: Path | None = None,
    cache_path: Path | None = None,
    checker_names: list[str] | None = None,
    rules: list[str] | None = None,
    baseline_strict: bool = False,
) -> LintResult:
    """Run the registered checkers over ``paths`` and return the result.

    Parameters
    ----------
    paths:
        Files/directories to lint (default: ``src/repro`` under
        ``root`` when it exists, else ``root`` itself).
    root:
        Repository root used for relative paths, default discovery and
        the default baseline location (default: cwd).
    tests_dir:
        Test-suite directory for the oracle-parity cross-reference
        (default: ``<root>/tests`` when it exists).
    baseline_path:
        Baseline suppression file; ``None`` means no baseline.
    cache_path:
        Findings cache (per-file + project sections); ``None`` disables
        caching.
    checker_names:
        Subset of checkers to run (default: all registered).
    rules:
        Rule ids or family prefixes (``["ASYNC", "MSG001"]``) limiting
        which rules run/report; unknown entries raise ``ValueError``.
    baseline_strict:
        Raise :class:`~repro.devtools.lint.baseline.BaselineError` on
        an unreadable/invalid baseline instead of treating it as empty
        (used when the baseline path was given explicitly).
    """
    root = (root or Path.cwd()).resolve()
    if paths is None:
        default = root / "src" / "repro"
        paths = [default if default.is_dir() else root]
    if tests_dir is None:
        candidate = root / "tests"
        tests_dir = candidate if candidate.is_dir() else None

    selected = select_rules(rules) if rules is not None else None

    active: list[Checker] = []
    for name, cls in REGISTRY.items():
        if checker_names is not None and name not in checker_names:
            continue
        if selected is not None and not set(cls.rules) & selected:
            continue
        active.append(cls())
    if checker_names is not None:
        unknown = sorted(set(checker_names) - set(REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown checkers {unknown}; registered: {sorted(REGISTRY)}"
            )

    ruleset = ",".join(
        sorted(
            rule
            for checker in active
            for rule in checker.rules
            if selected is None or rule in selected
        )
    )
    cache = _ParseCache(cache_path, ruleset)

    def _wanted(finding: Finding) -> bool:
        return selected is None or finding.rule in selected

    result = LintResult(findings=[], new=[], baselined=[])
    parsed: list[ParsedFile] = []
    raw: list[Finding] = []

    for path in discover_files(list(paths)):
        rel = _rel(path, root)
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{rel}: unreadable ({exc})")
            continue
        try:
            pf = ParsedFile(path, rel, source)
        except SyntaxError as exc:
            result.errors.append(f"{rel}: syntax error ({exc.msg})")
            continue
        parsed.append(pf)
        result.files_checked += 1
        content_hash = pf.content_hash(ruleset)
        cached = cache.get(rel, content_hash)
        if cached is not None:
            raw.extend(cached)
            continue
        file_findings: list[Finding] = []
        for checker in active:
            for finding in checker.check_file(pf):
                if _wanted(finding) and not pf.is_suppressed(
                    finding.line, finding.rule
                ):
                    file_findings.append(finding)
        cache.put(rel, content_hash, file_findings)
        raw.extend(file_findings)
    result.cache_hits = cache.hits

    # Project-wide checkers: dependency-aware caching — one entry per
    # checker, keyed on the combined hash of every contributing file.
    test_files: list[ParsedFile] = []
    if tests_dir is not None:
        for path in discover_files([tests_dir]):
            try:
                test_files.append(
                    ParsedFile(path, _rel(path, root), path.read_text())
                )
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue  # unparsable test files cannot vouch for coverage
    ctx = ProjectContext(files=parsed, test_files=test_files)
    by_rel = {pf.rel: pf for pf in parsed}
    state_hash = _project_state_hash(parsed, test_files, ruleset)
    for checker in active:
        cached = cache.get_project(checker.name, state_hash)
        if cached is not None:
            raw.extend(cached)
            continue
        project_findings: list[Finding] = []
        for finding in checker.check_project(ctx):
            pf = by_rel.get(finding.path)
            if pf is not None and pf.is_suppressed(finding.line, finding.rule):
                continue
            if _wanted(finding):
                project_findings.append(finding)
        cache.put_project(checker.name, state_hash, project_findings)
        raw.extend(project_findings)
    result.project_cache_hits = cache.project_hits
    cache.save()

    result.findings = sorted(raw, key=lambda f: f.sort_key)
    baseline = load_baseline(baseline_path, strict=baseline_strict)
    result.new, result.baselined = split_by_baseline(result.findings, baseline)
    return result
