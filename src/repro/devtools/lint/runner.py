"""Lint runner: file discovery, parse cache, checker execution.

Determinism note: the runner is itself held to the determinism contract
it enforces — files are discovered with ``sorted(rglob(...))``
(# the linter's own DET005 discipline), checkers run in registration
order, and findings are reported in ``(path, line, col, rule)`` order,
so two runs over the same tree produce byte-identical output.

The per-file parse cache (``--cache``) stores each file's findings
keyed by a content hash salted with the lint version and the ruleset,
so unchanged files are not re-parsed across runs; project-wide checkers
(oracle parity) always run fresh — they are cross-file by nature and
cheap.  CI persists the cache file between runs.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.lint import checkers as _builtin_checkers  # noqa: F401
from repro.devtools.lint.baseline import load_baseline, split_by_baseline
from repro.devtools.lint.core import (
    LINT_VERSION,
    Checker,
    Finding,
    ParsedFile,
    ProjectContext,
    REGISTRY,
)

CACHE_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]          #: every non-suppressed finding, sorted
    new: list[Finding]               #: findings not covered by the baseline
    baselined: list[Finding]         #: findings the baseline accepts
    files_checked: int = 0
    cache_hits: int = 0
    errors: list[str] = field(default_factory=list)  #: unparsable files

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def ok_against_baseline(self) -> bool:
        return not self.new

    def as_dict(self) -> dict[str, object]:
        return {
            "version": LINT_VERSION,
            "files_checked": self.files_checked,
            "cache_hits": self.cache_hits,
            "errors": list(self.errors),
            "counts": dict(
                sorted(Counter(f.rule for f in self.findings).items())
            ),
            "new": [f.as_dict() for f in self.new],
            "baselined": [f.as_dict() for f in self.baselined],
        }


def discover_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under the given paths, sorted (DET005: never
    depend on filesystem enumeration order)."""
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    seen: set[Path] = set()
    unique = []
    for path in sorted(out):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class _ParseCache:
    """On-disk per-file findings cache keyed by content hash."""

    def __init__(self, path: Path | None, salt: str):
        self.path = path
        self.salt = salt
        self.entries: dict[str, dict] = {}
        self.hits = 0
        self._dirty = False
        if path is not None:
            try:
                data = json.loads(path.read_text())
                if int(data.get("version", 0)) == CACHE_VERSION:
                    self.entries = dict(data.get("files", {}))
            except (OSError, ValueError, TypeError):
                self.entries = {}

    def get(self, rel: str, content_hash: str) -> list[Finding] | None:
        entry = self.entries.get(rel)
        if not entry or entry.get("sha") != content_hash:
            return None
        try:
            findings = [
                Finding(
                    path=str(f["path"]), line=int(f["line"]),
                    col=int(f["col"]), rule=str(f["rule"]),
                    message=str(f["message"]), checker=str(f["checker"]),
                )
                for f in entry["findings"]
            ]
        except (KeyError, TypeError, ValueError):
            return None
        self.hits += 1
        return findings

    def put(self, rel: str, content_hash: str, findings: list[Finding]) -> None:
        self.entries[rel] = {
            "sha": content_hash,
            "findings": [f.as_dict() for f in findings],
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "files": {rel: self.entries[rel] for rel in sorted(self.entries)},
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(payload))
        except OSError:
            pass  # cache is an accelerator, never a failure source


def run_lint(
    paths: list[Path] | None = None,
    root: Path | None = None,
    tests_dir: Path | None = None,
    baseline_path: Path | None = None,
    cache_path: Path | None = None,
    checker_names: list[str] | None = None,
) -> LintResult:
    """Run the registered checkers over ``paths`` and return the result.

    Parameters
    ----------
    paths:
        Files/directories to lint (default: ``src/repro`` under
        ``root`` when it exists, else ``root`` itself).
    root:
        Repository root used for relative paths, default discovery and
        the default baseline location (default: cwd).
    tests_dir:
        Test-suite directory for the oracle-parity cross-reference
        (default: ``<root>/tests`` when it exists).
    baseline_path:
        Baseline suppression file; ``None`` means no baseline.
    cache_path:
        Per-file parse cache; ``None`` disables caching.
    checker_names:
        Subset of checkers to run (default: all registered).
    """
    root = (root or Path.cwd()).resolve()
    if paths is None:
        default = root / "src" / "repro"
        paths = [default if default.is_dir() else root]
    if tests_dir is None:
        candidate = root / "tests"
        tests_dir = candidate if candidate.is_dir() else None

    active: list[Checker] = []
    for name, cls in REGISTRY.items():
        if checker_names is None or name in checker_names:
            active.append(cls())
    if checker_names is not None:
        unknown = sorted(set(checker_names) - set(REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown checkers {unknown}; registered: {sorted(REGISTRY)}"
            )

    ruleset = ",".join(
        sorted(rule for checker in active for rule in checker.rules)
    )
    cache = _ParseCache(cache_path, ruleset)

    result = LintResult(findings=[], new=[], baselined=[])
    parsed: list[ParsedFile] = []
    raw: list[Finding] = []

    for path in discover_files(list(paths)):
        rel = _rel(path, root)
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            result.errors.append(f"{rel}: unreadable ({exc})")
            continue
        try:
            pf = ParsedFile(path, rel, source)
        except SyntaxError as exc:
            result.errors.append(f"{rel}: syntax error ({exc.msg})")
            continue
        parsed.append(pf)
        result.files_checked += 1
        content_hash = pf.content_hash(ruleset)
        cached = cache.get(rel, content_hash)
        if cached is not None:
            raw.extend(cached)
            continue
        file_findings: list[Finding] = []
        for checker in active:
            for finding in checker.check_file(pf):
                if not pf.is_suppressed(finding.line, finding.rule):
                    file_findings.append(finding)
        cache.put(rel, content_hash, file_findings)
        raw.extend(file_findings)
    result.cache_hits = cache.hits
    cache.save()

    # Project-wide checkers always run fresh (cross-file, cheap).
    test_files: list[ParsedFile] = []
    if tests_dir is not None:
        for path in discover_files([tests_dir]):
            try:
                test_files.append(
                    ParsedFile(path, _rel(path, root), path.read_text())
                )
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue  # unparsable test files cannot vouch for coverage
    ctx = ProjectContext(files=parsed, test_files=test_files)
    by_rel = {pf.rel: pf for pf in parsed}
    for checker in active:
        for finding in checker.check_project(ctx):
            pf = by_rel.get(finding.path)
            if pf is not None and pf.is_suppressed(finding.line, finding.rule):
                continue
            raw.append(finding)

    result.findings = sorted(raw, key=lambda f: f.sort_key)
    baseline = load_baseline(baseline_path)
    result.new, result.baselined = split_by_baseline(result.findings, baseline)
    return result
