"""Baseline suppression: let legacy findings age out without blocking CI.

A baseline file records accepted findings as ``path::RULE::message``
keys with occurrence counts — deliberately line-number-free, so code
moving above or below a baselined finding does not un-baseline it.  A
lint run then splits its findings into *baselined* (matched, reported
but non-fatal under ``--error-on-new``) and *new* (unmatched, always
fatal).  Regenerate with ``repro lint --write-baseline``; every
baselined entry should carry a justification in the commit that adds
it.

Format (``lint-baseline.json``)::

    {"version": 1, "entries": {"<path>::<RULE>::<message>": <count>}}
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.devtools.lint.core import Finding

BASELINE_VERSION = 1

#: Default baseline filename, looked up relative to the lint root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """An explicitly requested baseline file that cannot be used.
    A ``ValueError`` so the CLI's usage-error path (exit 2) applies."""


def load_baseline(path: Path | None, strict: bool = False) -> Counter:
    """Baseline entry counts.

    Lenient mode (default — used for auto-discovered baselines): an
    absent/corrupt file is an empty baseline, the strictest behaviour
    (everything is new).  Strict mode (an explicit ``--baseline``
    argument): an unreadable, unparsable or wrong-version file raises
    :class:`BaselineError` — a typo'd path silently meaning "no
    baseline" would flip CI red for the wrong reason."""
    if path is None:
        return Counter()
    try:
        with open(path) as fh:
            data = json.load(fh)
        entries = data["entries"]
        if int(data.get("version", 0)) != BASELINE_VERSION:
            if strict:
                raise BaselineError(
                    f"baseline {path}: unsupported version "
                    f"{data.get('version')!r} (expected {BASELINE_VERSION})"
                )
            return Counter()
        return Counter(
            {str(k): int(v) for k, v in entries.items() if int(v) > 0}
        )
    except (OSError, ValueError, KeyError, TypeError) as exc:
        if strict:
            raise BaselineError(f"baseline {path}: unreadable ({exc})") from exc
        return Counter()


def write_baseline(path: Path, findings: list[Finding]) -> int:
    """Write a baseline accepting exactly the given findings; returns
    the number of distinct entries written."""
    counts = Counter(f.baseline_key for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return len(counts)


def split_by_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined).  The first ``n``
    occurrences of a key with baseline count ``n`` are baselined (in
    sorted report order); any beyond that are new."""
    budget = Counter(baseline)
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        if budget[finding.baseline_key] > 0:
            budget[finding.baseline_key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old
