"""Fork-safety checker: what may and may not cross a fork boundary.

The serving stack forks long-lived worker processes (DESIGN.md §14).
Two conventions keep that safe, enforced here:

FORK001
    A thread-bound or loop-bound object reaching a child process
    through ``multiprocessing`` ``args``/``initargs``: ``threading``
    locks/events/conditions, ``asyncio`` primitives, sockets and
    ``StreamWriter`` handles are bound to the thread or event loop that
    created them — under ``fork`` the child inherits a frozen copy
    (a lock can be inherited *held*), under ``spawn`` they fail to
    pickle at runtime.  Pipe ``Connection`` objects and plain picklable
    config dataclasses are the supported currency.  Detection covers
    inline constructor calls in the argument tuple and names assigned
    from such constructors in the same function or at module level.
FORK002
    A worker entry point (a function referenced as ``target=`` of a
    ``Process(...)`` call or ``initializer=`` of a pool, in the same
    file) that rebinds a module global (``global X`` + assignment)
    without the parent-PID guard pattern from ``exec/faults.py``
    (comparing ``os.getpid()`` against a recorded parent pid).  A fork
    shares the module namespace *pre-fork*; a worker entry that also
    runs in the parent (degraded/serial fallback) silently clobbers
    parent state.  In-place mutation of per-process containers (the
    ``sim/worker.py`` ``_SIMS`` registry) is deliberately not flagged —
    rebinding is the footgun.  Cross-module ``target=`` references are
    a known false-negative edge (DESIGN.md §15).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    import_map,
    qualified_name,
    register,
    walk_skipping_functions,
)

#: Constructors whose results must never cross a fork boundary.
_THREAD_BOUND_CTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
    "asyncio.Lock",
    "asyncio.Event",
    "asyncio.Condition",
    "asyncio.Semaphore",
    "asyncio.Queue",
    "socket.socket",
    "socket.create_connection",
}

#: Callee names that spawn children whose argument tuples we inspect
#: (``parallel_map`` forwards ``initializer``/``initargs`` straight to
#: ``ProcessPoolExecutor``, so its call sites are spawn sites too).
_SPAWN_CALLEES = {"Process", "Pool", "ProcessPoolExecutor", "parallel_map"}

#: Keywords carrying values into the child.
_CHILD_ARG_KEYWORDS = {"args", "initargs"}

#: Keywords naming the child's entry function.
_TARGET_KEYWORDS = {"target", "initializer"}


def _callee_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _thread_bound_ctor(node: ast.AST, imports: dict[str, str]) -> str | None:
    """The offending constructor's dotted name when ``node`` is a call
    to one, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    qual = qualified_name(node.func, imports)
    if qual in _THREAD_BOUND_CTORS:
        return qual
    return None


def _bound_names(tree: ast.AST, imports: dict[str, str]) -> dict[str, str]:
    """Names assigned from a thread-bound constructor anywhere in the
    subtree: ``lock = threading.Lock()`` -> ``{"lock": "threading.Lock"}``."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        ctor = _thread_bound_ctor(node.value, imports)
        if ctor is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out[target.id] = ctor
    return out


def _annotation_is_writer(node: ast.AST) -> bool:
    """Does an annotation name ``StreamWriter`` (loop-bound transport)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "StreamWriter":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "StreamWriter":
            return True
    return False


def _writer_params(tree: ast.AST) -> set[str]:
    """Parameter/variable names annotated as ``StreamWriter`` anywhere
    in the file."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.arg) and node.annotation is not None:
            if _annotation_is_writer(node.annotation):
                out.add(node.arg)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_writer(node.annotation):
                out.add(node.target.id)
    return out


def _has_pid_guard(fn: ast.FunctionDef) -> bool:
    """Does the function compare ``os.getpid()`` against anything (the
    ``exec/faults.py`` parent-PID guard shape)?"""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "getpid"
            ):
                return True
    return False


@register
class ForkSafetyChecker(Checker):
    name = "fork-safety"
    rules = {
        "FORK001": "thread/loop-bound object passed into a child process",
        "FORK002": "worker entry rebinds a module global without a "
                   "parent-PID guard",
    }

    def check_file(self, pf: ParsedFile) -> Iterator[Finding]:
        imports = import_map(pf.tree)
        module_bound = _bound_names(pf.tree, imports)
        writers = _writer_params(pf.tree)
        target_names: set[str] = set()

        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            if _callee_name(node) not in _SPAWN_CALLEES:
                continue
            for kw in node.keywords:
                if kw.arg in _TARGET_KEYWORDS:
                    if isinstance(kw.value, ast.Name):
                        target_names.add(kw.value.id)
                    elif isinstance(kw.value, ast.Attribute):
                        target_names.add(kw.value.attr)
                if kw.arg not in _CHILD_ARG_KEYWORDS:
                    continue
                elements = (
                    kw.value.elts
                    if isinstance(kw.value, (ast.Tuple, ast.List))
                    else [kw.value]
                )
                for element in elements:
                    ctor = _thread_bound_ctor(element, imports)
                    name = None
                    if ctor is None and isinstance(element, ast.Name):
                        name = element.id
                        ctor = module_bound.get(name)
                        if ctor is None and name in writers:
                            ctor = "asyncio.StreamWriter"
                    if ctor is not None:
                        what = f"{name} (a {ctor})" if name else f"{ctor}()"
                        yield Finding(
                            pf.rel, element.lineno, element.col_offset,
                            "FORK001",
                            f"{what} passed into a child process via "
                            f"{kw.arg}=: thread/loop-bound objects do not "
                            "survive fork (and do not pickle under "
                            "spawn); pass picklable config and rebuild "
                            "in the child",
                            self.name,
                        )

        # FORK002: worker entry points referenced in this file.
        for node in ast.walk(pf.tree):
            if (
                not isinstance(node, ast.FunctionDef)
                or node.name not in target_names
            ):
                continue
            declared_globals = {
                name
                for sub in walk_skipping_functions(node)
                if isinstance(sub, ast.Global)
                for name in sub.names
            }
            if not declared_globals or _has_pid_guard(node):
                continue
            for sub in walk_skipping_functions(node):
                targets: list[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets = sub.targets
                elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                    targets = [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_globals
                    ):
                        yield Finding(
                            pf.rel, sub.lineno, sub.col_offset, "FORK002",
                            f"worker entry {node.name}() rebinds module "
                            f"global {target.id!r} without a parent-PID "
                            "guard; guard with os.getpid() against the "
                            "recorded parent pid (see exec/faults.py) "
                            "so a parent-side fallback run cannot "
                            "clobber parent state",
                            self.name,
                        )
