"""Determinism checker: sources of run-to-run nondeterminism.

The simulator, clustering, model, trace and serve subsystems must be
pure functions of their inputs — the bit-identity contracts (compact
engine vs reference, fast memory front end vs oracle, parallel vs
serial sweeps, served payload vs fresh direct run) are only meaningful
if nothing in those subsystems reads the wall clock, global RNG state,
the process environment or filesystem enumeration order.  The serve
daemon's few legitimate wall-clock reads — deadline timers and
queue-latency/uptime metrics, which feed operator telemetry and never
simulation results — carry explicit ``lint: disable=DET001`` pragmas
rather than a baseline entry, so each exemption is visible at the call
site it covers.

Rules
-----
DET001
    Wall-clock read (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``, ...) inside the deterministic subsystems
    (``sim/``, ``core/``, ``cluster/``, ``trace/``, ``serve/``).
DET002
    Unseeded or global-state RNG inside the deterministic subsystems:
    any ``random`` module-level function, ``random.Random()`` /
    ``np.random.default_rng()`` with no seed, or the legacy
    ``np.random.*`` global convenience functions.  Seeded constructions
    (``default_rng(seed)``, ``Generator(Philox(key=...))``) pass.
DET003
    Result-feeding iteration over a ``set`` expression (set literal,
    set comprehension, ``set(...)``/``frozenset(...)`` call) without an
    explicit ordering — Python set iteration order depends on insertion
    history and hash salting of the interpreter.  Applies everywhere.
DET004
    ``os.environ`` / ``os.getenv`` read inside the deterministic
    subsystems: configuration must flow in through ``config`` objects,
    not ambient process state.
DET005
    Filesystem-order dependence: ``os.listdir``/``os.scandir``/
    ``glob.glob`` or a ``.glob``/``.rglob``/``.iterdir`` method call
    whose result is not immediately passed through ``sorted(...)``.
    Directory enumeration order is filesystem-specific.  Applies
    everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    import_map,
    qualified_name,
    register,
)

#: Directories whose modules must be deterministic pure functions.
#: ``serve`` is included because served payloads carry a bit-identity
#: oracle; its deadline/metrics clock reads are pragma-exempted inline.
DETERMINISTIC_DIRS = ("sim", "core", "cluster", "trace", "serve")

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Seeded-RNG constructors: fine *with* an explicit seed argument.
_SEEDED_CTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
}

#: Always-deterministic RNG machinery (explicit bit generators require
#: key/seed material to be useful; flagging them would be noise).
_RNG_OK = {
    "numpy.random.Generator",
    "numpy.random.Philox",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
    "numpy.random.BitGenerator",
}

_FS_FUNCTIONS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
_FS_METHODS = {"glob", "rglob", "iterdir"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class DeterminismChecker(Checker):
    name = "determinism"
    rules = {
        "DET001": "wall-clock read in a deterministic subsystem",
        "DET002": "unseeded or global-state RNG in a deterministic subsystem",
        "DET003": "iteration over a set expression without explicit ordering",
        "DET004": "os.environ/os.getenv read in a deterministic subsystem",
        "DET005": "filesystem enumeration order used without sorted(...)",
    }

    def check_file(self, pf: ParsedFile) -> Iterator[Finding]:
        imports = import_map(pf.tree)
        restricted = pf.in_dirs(DETERMINISTIC_DIRS)
        sorted_args: set[int] = set()  # ids of call nodes wrapped in sorted()

        for node in ast.walk(pf.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sorted"
            ):
                for arg in node.args:
                    sorted_args.add(id(arg))

        for node in ast.walk(pf.tree):
            if isinstance(node, ast.Call):
                qual = qualified_name(node.func, imports)
                if qual is not None:
                    yield from self._check_call(pf, node, qual, restricted,
                                                sorted_args)
                # Method-shaped fs enumeration (``x.glob(...)``) must be
                # checked even when the receiver resolves to a dotted
                # name — skipping only the module-level _FS_FUNCTIONS
                # forms, which _check_call already reported.
                if isinstance(node.func, ast.Attribute) and (
                    qual is None or qual not in _FS_FUNCTIONS
                ):
                    yield from self._check_fs_method(pf, node, sorted_args)
            elif isinstance(node, ast.Attribute) and restricted:
                # os.environ read (including subscripts / .get chains).
                if (
                    node.attr == "environ"
                    and isinstance(node.value, ast.Name)
                    and imports.get(node.value.id, node.value.id) == "os"
                ):
                    yield self._finding(
                        pf, node, "DET004",
                        "os.environ read in a deterministic subsystem; "
                        "thread configuration through config objects instead",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if _is_set_expr(iter_expr):
                    yield self._finding(
                        pf, iter_expr, "DET003",
                        "iterating a set: order depends on insertion history "
                        "and hash salting; wrap in sorted(...) or use an "
                        "ordered container",
                    )

    # ------------------------------------------------------------------
    def _check_call(
        self,
        pf: ParsedFile,
        node: ast.Call,
        qual: str,
        restricted: bool,
        sorted_args: set[int],
    ) -> Iterator[Finding]:
        if restricted and qual in _WALL_CLOCK:
            yield self._finding(
                pf, node, "DET001",
                f"wall-clock read {qual}() in a deterministic subsystem; "
                "timing must come from simulated cycles, not the host clock",
            )
            return
        if restricted:
            finding = self._rng_finding(pf, node, qual)
            if finding is not None:
                yield finding
                return
        if restricted and qual == "os.getenv":
            yield self._finding(
                pf, node, "DET004",
                "os.getenv read in a deterministic subsystem; thread "
                "configuration through config objects instead",
            )
            return
        if qual in _FS_FUNCTIONS and id(node) not in sorted_args:
            yield self._finding(
                pf, node, "DET005",
                f"{qual}() enumeration order is filesystem-specific; wrap "
                "the call in sorted(...)",
            )

    def _rng_finding(
        self, pf: ParsedFile, node: ast.Call, qual: str
    ) -> Finding | None:
        if qual in _RNG_OK:
            return None
        if qual in _SEEDED_CTORS:
            if not node.args and not node.keywords:
                return Finding(
                    pf.rel, node.lineno, node.col_offset, "DET002",
                    f"{qual}() without a seed is entropy-seeded; pass a "
                    "seed derived from config",
                    self.name,
                )
            return None
        if qual.startswith("numpy.random.") or qual.startswith("random."):
            return Finding(
                pf.rel, node.lineno, node.col_offset, "DET002",
                f"global-state RNG call {qual}(); use a Generator seeded "
                "from config (see workloads/base.py's Philox keying)",
                self.name,
            )
        return None

    def _check_fs_method(
        self, pf: ParsedFile, node: ast.Call, sorted_args: set[int]
    ) -> Iterator[Finding]:
        assert isinstance(node.func, ast.Attribute)
        if node.func.attr in _FS_METHODS and id(node) not in sorted_args:
            yield self._finding(
                pf, node, "DET005",
                f".{node.func.attr}() enumeration order is "
                "filesystem-specific; wrap the call in sorted(...)",
            )

    def _finding(
        self, pf: ParsedFile, node: ast.AST, rule: str, message: str
    ) -> Finding:
        return Finding(
            pf.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            rule,
            message,
            self.name,
        )
