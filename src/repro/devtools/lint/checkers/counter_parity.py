"""Counter-parity: every serve counter is both updated and flushed.

The serving stack's observability rests on dataclass counter bundles
(``ServeCounters``, ``SupervisorCounters``) whose fields are bumped at
event sites and exported through the stats/``--metrics-json`` flush
path (``as_dict``/``snapshot``).  Nothing ties the two ends together:
a counter bumped but never exported is invisible telemetry, and a
declared field never bumped is a dashboard lying as a flat zero.

Collection (``serve/`` files only):

* **declared fields** — annotated assignments in any ``*Counters``
  class body;
* **updates** — ``+=``/``=`` on a counters-rooted attribute:
  ``self.counters.X``, a local alias bound from ``*.counters``
  (``c = self.counters; c.X += 1``), or ``self.X`` inside a
  ``*Counters`` method;
* **flushes** — Load-context reads of counters-rooted attributes
  (``snapshot`` reading ``self.counters.hangs``), plus a blanket
  flush of a class's whole field set when any of its methods calls
  ``asdict(self)`` / ``dataclasses.asdict(self)``.

Rule
----
CTR001
    A counters field updated in ``serve/`` but absent from every flush
    path (reported at the update site), or declared on a ``*Counters``
    class but never updated anywhere (reported at the declaration).
    Matching is by field name across the union of counter classes —
    same-named fields on two bundles alias (a documented
    approximation, DESIGN.md §15).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    ProjectContext,
    register,
)

CTR_DIRS = ("serve",)


@dataclass
class _Site:
    pf: ParsedFile
    node: ast.AST
    name: str


@dataclass
class _Collected:
    #: field name -> declaration sites (AnnAssign in a *Counters class)
    declared: dict[str, list[_Site]] = field(default_factory=dict)
    #: field name -> update sites
    updated: dict[str, list[_Site]] = field(default_factory=dict)
    flushed: set[str] = field(default_factory=set)


def _is_counters_class(node: ast.ClassDef) -> bool:
    return node.name.endswith("Counters")


def _counters_aliases(fn: ast.AST) -> set[str]:
    """Local names bound from a ``.counters`` attribute
    (``c = self.counters``)."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "counters"
        ):
            out.add(node.targets[0].id)
    return out


def _counters_field_of(
    node: ast.AST, aliases: set[str], self_is_counters: bool
) -> str | None:
    """The field name when ``node`` is a counters-rooted attribute:
    ``self.counters.X`` / ``alias.X`` / (inside a ``*Counters`` method)
    ``self.X``."""
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Attribute) and value.attr == "counters":
        return node.attr
    if isinstance(value, ast.Name):
        if value.id == "counters" or value.id in aliases:
            return node.attr
        if self_is_counters and value.id == "self":
            return node.attr
    return None


def _calls_asdict_on_self(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        callee = None
        if isinstance(node.func, ast.Name):
            callee = node.func.id
        elif isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        if callee != "asdict":
            continue
        if node.args and isinstance(node.args[0], ast.Name) and (
            node.args[0].id == "self"
        ):
            return True
    return False


def _collect_class(pf: ParsedFile, cls: ast.ClassDef, out: _Collected) -> None:
    fields = [
        stmt.target.id
        for stmt in cls.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    ]
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.declared.setdefault(stmt.target.id, []).append(
                _Site(pf, stmt, stmt.target.id)
            )
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _calls_asdict_on_self(stmt):
            out.flushed.update(fields)
        _collect_sites(pf, stmt, out, self_is_counters=True)


def _collect_sites(
    pf: ParsedFile, fn: ast.AST, out: _Collected, self_is_counters: bool = False
) -> None:
    aliases = _counters_aliases(fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.AugAssign):
            name = _counters_field_of(node.target, aliases, self_is_counters)
            if name is not None:
                out.updated.setdefault(name, []).append(_Site(pf, node, name))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                name = _counters_field_of(target, aliases, self_is_counters)
                if name is not None:
                    out.updated.setdefault(name, []).append(
                        _Site(pf, node, name)
                    )
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            name = _counters_field_of(node, aliases, self_is_counters)
            if name is not None:
                out.flushed.add(name)


@register
class CounterParityChecker(Checker):
    name = "counter-parity"
    rules = {
        "CTR001": "counter updated but never flushed, or declared but "
                  "never updated",
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        col = _Collected()
        for pf in ctx.files:
            if not pf.in_dirs(CTR_DIRS):
                continue
            counters_classes: set[int] = set()
            for node in ast.walk(pf.tree):
                if isinstance(node, ast.ClassDef) and _is_counters_class(node):
                    _collect_class(pf, node, col)
                    for sub in ast.walk(node):
                        counters_classes.add(id(sub))
            # Module-level and non-Counters-class functions: plain
            # update/flush sites (skip nodes already walked above).
            for node in ast.walk(pf.tree):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and id(node) not in counters_classes
                ):
                    _collect_sites(pf, node, col)

        if not col.declared:
            return  # no counter bundles in scope; nothing to reconcile

        for name, sites in sorted(col.updated.items()):
            if name in col.flushed:
                continue
            for site in sites:
                yield Finding(
                    site.pf.rel,
                    getattr(site.node, "lineno", 1),
                    getattr(site.node, "col_offset", 0),
                    "CTR001",
                    f"counter {name!r} is updated here but never appears "
                    "in any stats/metrics flush path (as_dict/snapshot); "
                    "invisible telemetry",
                    self.name,
                )
        for name, sites in sorted(col.declared.items()):
            if name in col.updated:
                continue
            for site in sites:
                yield Finding(
                    site.pf.rel,
                    getattr(site.node, "lineno", 1),
                    getattr(site.node, "col_offset", 0),
                    "CTR001",
                    f"counter field {name!r} is declared (and flushed) "
                    "but never updated anywhere in serve/; it reports a "
                    "constant zero",
                    self.name,
                )
