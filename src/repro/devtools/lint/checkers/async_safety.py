"""Async-safety checker: nothing blocks the serve daemon's event loop.

The ``repro serve`` front end is a single asyncio loop; one blocking
call inside an ``async def`` stalls every connection, heartbeat and
drain at once.  The contract (DESIGN.md §15): blocking work runs on the
thread pool (``asyncio.to_thread`` / ``run_in_executor``) or in worker
processes, never inline on the loop.

Rules
-----
ASYNC001
    Blocking call inside an ``async def`` in ``serve/``:
    ``time.sleep``, ``subprocess.*``, builtin ``open``, ``os.fsync``,
    blocking socket ops, ``Future.result()``, blocking ``Path`` methods
    (``read_text``/``write_text``/``mkdir``/``unlink``/...), and any
    method on a journal/cache-named receiver (``self._journal.record``,
    ``self._profile_cache.get`` — the ``ProfileCache``/``SweepJournal``
    disk ops do fsync'd writes).  One level of call-graph indirection is
    followed: calling a *sync* helper defined in the same package whose
    body directly contains a blocking call is flagged at the async call
    site.  Resolution is by bare name via the package call graph; a
    name shared by sync and async defs is skipped (known false-negative
    edge, see DESIGN.md §15).
ASYNC002
    Un-awaited coroutine: a bare statement-expression call of a
    function that resolves (unambiguously, same package) to an
    ``async def`` — the coroutine object is created and dropped, the
    body never runs.  Scoped to ``serve/`` like ASYNC001.
ASYNC003
    ``asyncio.create_task(...)`` as a bare statement expression: the
    task handle is dropped, so the task can be garbage-collected
    mid-flight and its exception is never observed.  Store the handle
    (and discard it in a done callback) or gather it.  Applies
    everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    FunctionInfo,
    ParsedFile,
    ProjectContext,
    import_map,
    qualified_name,
    register,
    walk_skipping_functions,
)

#: Directories whose async defs must never block the loop.
ASYNC_DIRS = ("serve",)

#: Dotted call targets that block the calling thread.
_BLOCKING_QUALNAMES = {
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "open",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
}

#: Method names that block regardless of receiver: file/Path I/O,
#: blocking socket ops, and ``concurrent.futures.Future.result``.
#: Deliberately excludes ambiguous names (``join``, ``close``, ``get``)
#: — false-negative edges documented in DESIGN.md §15.
_BLOCKING_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
    "mkdir", "unlink", "rename", "replace", "rmdir", "touch",
    "sendall", "recv", "recv_into", "accept", "connect",
    "result",
}

#: Final name segments marking persistent-store handles whose every
#: method is a disk op (``self._journal.record``, ``self._profile_cache
#: .get`` — ``SweepJournal`` fsyncs per record, ``ProfileCache`` hits
#: the filesystem).  Matched against the receiver's last
#: underscore-separated segment, so derived in-memory mirrors with a
#: suffix (``_journal_results``) are exempt by naming convention.
_BLOCKING_RECEIVER_SEGMENTS = ("journal", "cache")

#: asyncio module functions that are coroutine functions (for ASYNC002
#: on qualified calls that cannot resolve through the package graph).
_ASYNCIO_COROUTINES = {
    "asyncio.sleep",
    "asyncio.gather",
    "asyncio.wait",
    "asyncio.wait_for",
    "asyncio.open_connection",
    "asyncio.open_unix_connection",
    "asyncio.start_server",
    "asyncio.start_unix_server",
}


def _receiver_name(call: ast.Call) -> str | None:
    """Bare name of a method call's receiver: ``self._journal.record``
    -> ``_journal``; ``conn.send`` -> ``conn``."""
    if not isinstance(call.func, ast.Attribute):
        return None
    value = call.func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _blocking_reason(
    call: ast.Call, imports: dict[str, str]
) -> str | None:
    """Why this call blocks the calling thread, or ``None``."""
    qual = qualified_name(call.func, imports)
    if qual is not None and qual in _BLOCKING_QUALNAMES:
        return f"{qual}() blocks"
    if qual is not None and qual.split(".")[0] == "subprocess":
        return f"{qual}() blocks"
    if isinstance(call.func, ast.Attribute):
        if call.func.attr in _BLOCKING_METHODS:
            return f".{call.func.attr}() blocks"
        receiver = _receiver_name(call)
        if receiver is not None and (
            receiver.lower().strip("_").rsplit("_", 1)[-1]
            in _BLOCKING_RECEIVER_SEGMENTS
        ):
            return (
                f"{receiver}.{call.func.attr}() is a persistent-store "
                "disk op"
            )
    return None


def _helper_blocking_reason(
    name: str, graph: dict[str, list[FunctionInfo]]
) -> str | None:
    """Does ``name`` resolve to sync same-package helper(s) whose body
    directly contains a blocking call?  Only unambiguous resolutions
    count: if any definition with this bare name is async, skip."""
    defs = graph.get(name)
    if not defs or any(info.is_async for info in defs):
        return None
    for info in defs:
        imports = import_map(info.pf.tree)
        for sub in walk_skipping_functions(info.node):
            if isinstance(sub, ast.Call):
                reason = _blocking_reason(sub, imports)
                if reason is not None:
                    return (
                        f"sync helper {name}() defined in {info.pf.rel} "
                        f"blocks ({reason})"
                    )
    return None


def _resolves_to_coroutine(
    call: ast.Call, graph: dict[str, list[FunctionInfo]], imports: dict[str, str]
) -> bool:
    qual = qualified_name(call.func, imports)
    if qual in _ASYNCIO_COROUTINES:
        return True
    if isinstance(call.func, (ast.Name, ast.Attribute)):
        name = (
            call.func.id if isinstance(call.func, ast.Name) else call.func.attr
        )
        defs = graph.get(name)
        return bool(defs) and all(info.is_async for info in defs)
    return False


def _is_create_task(call: ast.Call, imports: dict[str, str]) -> bool:
    if qualified_name(call.func, imports) == "asyncio.create_task":
        return True
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "create_task"
    )


@register
class AsyncSafetyChecker(Checker):
    name = "async-safety"
    rules = {
        "ASYNC001": "blocking call inside an async def in serve/",
        "ASYNC002": "coroutine called but never awaited",
        "ASYNC003": "asyncio.create_task result dropped (unstored task)",
    }

    # ASYNC003 needs no cross-file context; keeping it per-file keeps
    # the rule active even when one file is linted in isolation.
    def check_file(self, pf: ParsedFile) -> Iterator[Finding]:
        imports = import_map(pf.tree)
        for node in ast.walk(pf.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _is_create_task(node.value, imports)
            ):
                yield Finding(
                    pf.rel, node.lineno, node.col_offset, "ASYNC003",
                    "asyncio.create_task(...) result dropped: an "
                    "unreferenced task can be garbage-collected "
                    "mid-flight and its exception is never observed; "
                    "store the handle or gather it",
                    self.name,
                )

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        for pf in ctx.files:
            if not pf.in_dirs(ASYNC_DIRS):
                continue
            graph = ctx.package_functions(pf)
            imports = import_map(pf.tree)
            for node in ast.walk(pf.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async_body(pf, node, imports, graph)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from self._check_unawaited(pf, node, imports, graph)

    def _check_async_body(
        self,
        pf: ParsedFile,
        fn: ast.AsyncFunctionDef,
        imports: dict[str, str],
        graph: dict[str, list[FunctionInfo]],
    ) -> Iterator[Finding]:
        yield from self._check_unawaited(pf, fn, imports, graph)
        for sub in walk_skipping_functions(fn):
            if not isinstance(sub, ast.Call):
                continue
            reason = _blocking_reason(sub, imports)
            if reason is None and isinstance(sub.func, ast.Attribute):
                # One hop through a sync helper in the same package
                # (``self._write_metrics()`` whose body write_text's).
                reason = _helper_blocking_reason(sub.func.attr, graph)
            elif reason is None and isinstance(sub.func, ast.Name):
                reason = _helper_blocking_reason(sub.func.id, graph)
            if reason is not None:
                yield Finding(
                    pf.rel, sub.lineno, sub.col_offset, "ASYNC001",
                    f"blocking call on the event loop in async def "
                    f"{fn.name}(): {reason}; move it to "
                    "asyncio.to_thread/run_in_executor or a worker",
                    self.name,
                )

    def _check_unawaited(
        self,
        pf: ParsedFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        imports: dict[str, str],
        graph: dict[str, list[FunctionInfo]],
    ) -> Iterator[Finding]:
        for stmt in walk_skipping_functions(fn):
            if not (
                isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            ):
                continue
            call = stmt.value
            if _is_create_task(call, imports):
                continue  # ASYNC003's finding, reported per-file
            if _resolves_to_coroutine(call, graph, imports):
                yield Finding(
                    pf.rel, stmt.lineno, stmt.col_offset, "ASYNC002",
                    "coroutine called but never awaited: the call only "
                    "builds the coroutine object; await it (or wrap it "
                    "in asyncio.create_task and keep the handle)",
                    self.name,
                )
