"""Built-in checkers.  Importing this package registers all of them
with :data:`repro.devtools.lint.core.REGISTRY`; third-party/in-repo
extensions can register more with the same decorator."""

from repro.devtools.lint.checkers import (  # noqa: F401
    async_safety,
    counter_parity,
    determinism,
    fork_safety,
    hot_loop,
    message_protocol,
    oracle_parity,
    process_safety,
)

__all__ = [
    "determinism",
    "process_safety",
    "hot_loop",
    "oracle_parity",
    "async_safety",
    "fork_safety",
    "message_protocol",
    "counter_parity",
]
