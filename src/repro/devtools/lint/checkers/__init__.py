"""Built-in checkers.  Importing this package registers all of them
with :data:`repro.devtools.lint.core.REGISTRY`; third-party/in-repo
extensions can register more with the same decorator."""

from repro.devtools.lint.checkers import (  # noqa: F401
    determinism,
    hot_loop,
    oracle_parity,
    process_safety,
)

__all__ = ["determinism", "process_safety", "hot_loop", "oracle_parity"]
