"""Oracle-parity checker: every fast path must have an equivalence test.

The simulator keeps its pre-optimization implementations in-tree as
*oracles* (``engine="reference"``, ``mem_front_end="reference"``) and
stakes every fast-path PR on bit-identity property tests against them.
That contract silently erodes if a new engine or memory front end is
registered without being added to the parametrized equivalence suites —
nothing fails, the new implementation just runs unvalidated.

ORA001 cross-references the simulator's implementation registries
(``ENGINES = (...)`` class attributes and the ``MEMORY_FRONT_ENDS`` /
``L2_ORGANIZATIONS`` mappings under ``sim/``) against the test suite: every registered
implementation name must appear in at least one *parametrized* test —
either a string inside a ``pytest.mark.parametrize`` decorator, or a
string inside a literal tuple/list iterated by a ``for`` loop in a
test function (the equivalence grid tests iterate the full
engine x front-end product that way).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    ProjectContext,
    register,
)

#: Registry variable names scanned for implementation names.
REGISTRY_NAMES = {
    "ENGINES": "engine",
    "MEMORY_FRONT_ENDS": "memory front end",
    "L2_ORGANIZATIONS": "L2 organization",
}


def _registry_entries(
    pf: ParsedFile,
) -> Iterator[tuple[str, str, int, int]]:
    """(kind, implementation name, line, col) for every registry entry
    declared in a ``sim/`` module."""
    if not pf.in_dirs(("sim",)):
        return
    for node in ast.walk(pf.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            kind = REGISTRY_NAMES.get(target.id)
            if kind is None:
                continue
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                elements = value.elts
            elif isinstance(value, ast.Dict):
                elements = [k for k in value.keys if k is not None]
            else:
                continue
            for element in elements:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    yield kind, element.value, node.lineno, node.col_offset


def _covered_names(test_files: list[ParsedFile]) -> set[str]:
    """String constants exercised by parametrized tests: arguments of
    ``pytest.mark.parametrize(...)`` calls, and elements of literal
    tuples/lists iterated by ``for`` loops inside test functions."""
    covered: set[str] = set()
    for pf in test_files:
        in_test_function: list[ast.AST] = []

        def visit(node: ast.AST) -> None:
            is_test_fn = isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith("test")
            if is_test_fn:
                in_test_function.append(node)
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "parametrize":
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Constant) and isinstance(
                                sub.value, str
                            ):
                                covered.add(sub.value)
            if (
                isinstance(node, (ast.For, ast.comprehension))
                and in_test_function
                and isinstance(node.iter, (ast.Tuple, ast.List))
            ):
                for element in node.iter.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        covered.add(element.value)
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_test_fn:
                in_test_function.pop()

        visit(pf.tree)
    return covered


@register
class OracleParityChecker(Checker):
    name = "oracle-parity"
    rules = {
        "ORA001": "registered implementation lacks a parametrized "
                  "equivalence test",
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        entries = [
            (pf, kind, name, line, col)
            for pf in ctx.files
            for kind, name, line, col in _registry_entries(pf)
        ]
        if not entries:
            return
        covered = _covered_names(ctx.test_files)
        for pf, kind, name, line, col in entries:
            if name in covered:
                continue
            yield Finding(
                pf.rel, line, col, "ORA001",
                f"{kind} {name!r} is registered but never appears in a "
                "parametrized equivalence test (pytest.mark.parametrize "
                "or a literal-tuple for-loop in a test function); every "
                "fast-path implementation must be property-tested against "
                "its oracle",
                self.name,
            )
