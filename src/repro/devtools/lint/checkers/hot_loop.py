"""Hot-loop hygiene checker: per-iteration waste in marked hot code.

The compact engine's issue loop and the batched memory front end are
the two measured hot paths of the simulator (DESIGN.md §7-§8); both
follow the same discipline — hoist attribute lookups to locals before
the loop, allocate nothing per iteration, keep exception handling
outside the loop body.  This checker machine-checks that discipline
inside regions explicitly marked ``# lint: hot`` (on a ``def``, ``for``
or ``while`` header line, or on a comment line directly above it).

Rules (all scoped to loops inside hot regions)
-----
HOT001
    The same ``name.attr`` looked up two or more times per iteration
    on a name the loop body never rebinds: hoist it to a local before
    the loop (``mem_load = mem.load`` style).
HOT002
    Per-iteration allocation: a list/dict/set display, a comprehension,
    or a call to ``list``/``dict``/``set``/``sorted`` or a numpy array
    constructor inside the loop body.  Tuples are exempt (cheap,
    required for heap entries).
HOT003
    ``try``/``except`` inside the loop body: Python 3.10 pays setup
    cost per entry, and exception handling in a hot loop usually means
    a check that belongs outside it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    import_map,
    register,
)

_ALLOC_CALLS = {"list", "dict", "set", "sorted", "frozenset"}
_NUMPY_ALLOC_ATTRS = {
    "zeros", "empty", "ones", "full", "array", "arange", "asarray",
    "concatenate", "stack", "vstack", "hstack", "bincount", "linspace",
}
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _body_walk(stmts: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk loop-body statements without descending into nested
    function/class definitions (they run in their own scope)."""
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _FUNCTION_NODES + (ast.ClassDef,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _assigned_names(stmts: list[ast.stmt]) -> set[str]:
    """Names (re)bound anywhere in the loop body — attribute lookups on
    these are not hoistable, the object may change per iteration."""
    names: set[str] = set()
    for node in _body_walk(stmts):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names


@register
class HotLoopChecker(Checker):
    name = "hot-loop"
    rules = {
        "HOT001": "repeated attribute lookup per iteration of a hot loop",
        "HOT002": "allocation inside a hot loop body",
        "HOT003": "try/except inside a hot loop body",
    }

    def check_file(self, pf: ParsedFile) -> Iterator[Finding]:
        if not pf.hot_lines:
            return
        imports = import_map(pf.tree)
        numpy_aliases = {
            local for local, origin in imports.items() if origin == "numpy"
        }
        seen: set[tuple[int, int, str]] = set()
        for loop in self._hot_loops(pf):
            for finding in self._check_loop(pf, loop, numpy_aliases):
                key = (finding.line, finding.col, finding.rule)
                if key not in seen:
                    seen.add(key)
                    yield finding

    # ------------------------------------------------------------------
    def _hot_loops(self, pf: ParsedFile) -> Iterator[ast.For | ast.While]:
        """Every loop inside a hot region: a marked loop (and the loops
        nested in it), or every loop of a marked function."""
        for node in ast.walk(pf.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if pf.is_hot_marked(node):
                    for sub in ast.walk(node):
                        if isinstance(sub, (ast.For, ast.While)):
                            yield sub
            elif isinstance(node, (ast.For, ast.While)):
                if pf.is_hot_marked(node):
                    for sub in ast.walk(node):
                        if isinstance(sub, (ast.For, ast.While)):
                            yield sub

    # ------------------------------------------------------------------
    def _check_loop(
        self,
        pf: ParsedFile,
        loop: ast.For | ast.While,
        numpy_aliases: set[str],
    ) -> Iterator[Finding]:
        body = loop.body
        assigned = _assigned_names(body)
        if isinstance(loop, ast.For):
            # The loop target is rebound every iteration by definition.
            for node in ast.walk(loop.target):
                if isinstance(node, ast.Name):
                    assigned.add(node.id)

        attr_sites: dict[tuple[str, str], list[ast.Attribute]] = {}
        for node in _body_walk(body):
            if isinstance(node, ast.Try):
                yield Finding(
                    pf.rel, node.lineno, node.col_offset, "HOT003",
                    "try/except inside a hot loop body: per-entry setup "
                    "cost; move exception handling outside the loop",
                    self.name,
                )
            elif isinstance(node, (ast.List, ast.Dict, ast.Set,
                                   ast.ListComp, ast.DictComp, ast.SetComp,
                                   ast.GeneratorExp)):
                kind = type(node).__name__
                yield Finding(
                    pf.rel, node.lineno, node.col_offset, "HOT002",
                    f"{kind} allocated inside a hot loop body; hoist or "
                    "reuse a preallocated container",
                    self.name,
                )
            elif isinstance(node, ast.Call):
                yield from self._check_alloc_call(pf, node, numpy_aliases)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                if isinstance(node.value, ast.Name):
                    base = node.value.id
                    if base not in assigned and base not in numpy_aliases:
                        attr_sites.setdefault(
                            (base, node.attr), []
                        ).append(node)

        for (base, attr), sites in attr_sites.items():
            if len(sites) < 2:
                continue
            first = min(sites, key=lambda n: (n.lineno, n.col_offset))
            yield Finding(
                pf.rel, first.lineno, first.col_offset, "HOT001",
                f"'{base}.{attr}' looked up {len(sites)} times per "
                f"iteration of the hot loop; hoist it to a local before "
                "the loop",
                self.name,
            )

    def _check_alloc_call(
        self, pf: ParsedFile, node: ast.Call, numpy_aliases: set[str]
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ALLOC_CALLS:
            yield Finding(
                pf.rel, node.lineno, node.col_offset, "HOT002",
                f"{func.id}() call allocates inside a hot loop body; "
                "hoist it or restructure the loop",
                self.name,
            )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in numpy_aliases
            and func.attr in _NUMPY_ALLOC_ATTRS
        ):
            yield Finding(
                pf.rel, node.lineno, node.col_offset, "HOT002",
                f"numpy array construction ({func.value.id}.{func.attr}) "
                "inside a hot loop body; preallocate outside the loop",
                self.name,
            )
