"""Process-safety checker: what must survive a pickle round-trip.

The batch execution engine ships tasks to worker processes; anything
handed to ``parallel_map``/``submit`` — and anything reachable from a
shipped item, like a :class:`LaunchTrace`'s block ``factory`` or a
:class:`FaultPlan` — must be picklable.  Lambdas, closures and
locally-defined functions/classes are not, and the failure shows up
only at runtime (or worse, silently routes the whole sweep down the
serial fallback).

Rules
-----
PROC001
    A lambda or locally-defined function passed to ``parallel_map`` /
    ``.submit``.  These cannot cross a process boundary; hoist the
    callable to module level (see ``SpecBlockFactory`` for the
    idiomatic replacement of a closure).
PROC002
    A non-module-level workload factory or fault plan: a ``*Factory``
    or ``FaultPlan`` class defined inside a function, or a lambda /
    local function passed as a ``factory=`` keyword.  Factories ride
    inside launches into worker processes; they must be module-level.
PROC003
    Mutable default argument (``[]``/``{}``/``set()``/...) on a
    function, or a mutable class-level default on a dataclass field.
    Defaults are evaluated once and shared — across calls *and*, after
    a pickle round-trip, across processes in surprising ways.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Checker, Finding, ParsedFile, register

_POOL_ENTRY_POINTS = ("parallel_map", "submit")

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return True
    return False


class _Scope:
    """One function scope: the callables defined locally within it."""

    __slots__ = ("local_callables",)

    def __init__(self) -> None:
        self.local_callables: set[str] = set()


@register
class ProcessSafetyChecker(Checker):
    name = "process-safety"
    rules = {
        "PROC001": "lambda/closure passed to parallel_map/submit",
        "PROC002": "non-module-level workload factory or FaultPlan",
        "PROC003": "mutable default argument / dataclass field default",
    }

    def check_file(self, pf: ParsedFile) -> Iterator[Finding]:
        yield from self._walk(pf, pf.tree, scopes=[])

    # ------------------------------------------------------------------
    def _walk(
        self, pf: ParsedFile, node: ast.AST, scopes: list[_Scope]
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(pf, child)
                if scopes:
                    scopes[-1].local_callables.add(child.name)
                scopes.append(_Scope())
                yield from self._walk(pf, child, scopes)
                scopes.pop()
                continue
            if isinstance(child, ast.ClassDef):
                if scopes and (
                    child.name.endswith("Factory") or child.name == "FaultPlan"
                ):
                    yield Finding(
                        pf.rel, child.lineno, child.col_offset, "PROC002",
                        f"class {child.name!r} defined inside a function: "
                        "locally-defined factories/fault plans cannot be "
                        "pickled into worker processes; move to module level",
                        self.name,
                    )
                yield from self._check_dataclass_defaults(pf, child)
                yield from self._walk(pf, child, scopes)
                continue
            if isinstance(child, ast.Assign) and scopes:
                # ``f = lambda ...`` counts as a locally-defined callable.
                if isinstance(child.value, ast.Lambda):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            scopes[-1].local_callables.add(target.id)
            if isinstance(child, ast.Call):
                yield from self._check_call(pf, child, scopes)
            yield from self._walk(pf, child, scopes)

    # ------------------------------------------------------------------
    def _check_call(
        self, pf: ParsedFile, node: ast.Call, scopes: list[_Scope]
    ) -> Iterator[Finding]:
        func = node.func
        callee = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        local_names = {
            name for scope in scopes for name in scope.local_callables
        }
        if callee in _POOL_ENTRY_POINTS:
            candidates = list(node.args)
            candidates.extend(
                kw.value for kw in node.keywords if kw.arg == "fn"
            )
            for arg in candidates:
                if isinstance(arg, ast.Lambda):
                    yield Finding(
                        pf.rel, arg.lineno, arg.col_offset, "PROC001",
                        f"lambda passed to {callee}(): lambdas cannot be "
                        "pickled into worker processes; use a module-level "
                        "function",
                        self.name,
                    )
                elif isinstance(arg, ast.Name) and arg.id in local_names:
                    yield Finding(
                        pf.rel, arg.lineno, arg.col_offset, "PROC001",
                        f"locally-defined function {arg.id!r} passed to "
                        f"{callee}(): closures cannot be pickled into worker "
                        "processes; hoist it to module level",
                        self.name,
                    )
        for kw in node.keywords:
            if kw.arg != "factory":
                continue
            if isinstance(kw.value, ast.Lambda) or (
                isinstance(kw.value, ast.Name) and kw.value.id in local_names
            ):
                yield Finding(
                    pf.rel, kw.value.lineno, kw.value.col_offset, "PROC002",
                    "factory= bound to a lambda/local function: block "
                    "factories ride inside launches into worker processes "
                    "and must be module-level picklable objects "
                    "(see SpecBlockFactory)",
                    self.name,
                )

    # ------------------------------------------------------------------
    def _check_defaults(
        self, pf: ParsedFile, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield Finding(
                    pf.rel, default.lineno, default.col_offset, "PROC003",
                    f"mutable default argument on {node.name}(): evaluated "
                    "once and shared across calls; default to None and "
                    "construct inside",
                    self.name,
                )

    def _check_dataclass_defaults(
        self, pf: ParsedFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        if not _dataclass_decorated(node):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if _is_mutable_default(stmt.value):
                    yield Finding(
                        pf.rel, stmt.value.lineno, stmt.value.col_offset,
                        "PROC003",
                        f"mutable default on dataclass {node.name!r} field: "
                        "use dataclasses.field(default_factory=...)",
                        self.name,
                    )
