"""Message-protocol conformance: send and recv sites must agree.

The serving stack speaks two message planes whose shapes live only in
convention: the JSON *wire* protocol (``serve/protocol.py`` framing;
dict messages built in ``client.py`` and ``server.py``) and the worker
*pipe* protocol (tag-prefixed tuples between ``supervisor.py`` and its
worker processes).  Nothing ties a send site's dict keys to a recv
site's ``.get(...)``s — a renamed field or a never-produced dispatch
arm fails silently at runtime.  This ProjectContext pass (the ORA001
pattern) cross-references them statically.

Collection (per ``serve/`` file, name-flow within one function):

* **wire send sites** — dict literals flowing into ``send_message`` /
  ``write_message`` / ``_send`` calls (inline or via a local name),
  plus string-key subscript assigns on that name;
* **produced kinds** — string-constant first arguments of ``call(...)``
  / ``submit(...)`` and constant ``"kind"`` values in send dicts;
* **pipe send sites** — ``conn.send((tag, ...))`` tuples' leading
  string constants;
* **recv accesses** — ``.get("k")`` / ``["k"]`` on names bound from
  ``read_message``/``recv_message`` (or parameters named ``msg`` /
  ``response`` — the cross-function hand-off approximation);
* **dispatches** — string comparisons/memberships against a kind
  variable (bound from ``X.get("kind")`` or a parameter named
  ``kind``) or a pipe tag variable (bound from ``P[0]`` of a
  ``recv()``-bound name).

Rules
-----
MSG001
    A wire field read at a recv site but never sent by any send site,
    or a kind/tag dispatched at a recv site but never produced by any
    send site.  (The inverse — produced but never dispatched — is
    legal: additive evolution sends new fields before old readers
    learn them.)
MSG002
    A wire send dict missing a field ``protocol.py`` declares required
    for its direction (``REQUIRED_FIELDS``; a dict with ``"kind"`` is
    a request, with ``"ok"`` a response).  Conditional subscript
    assigns do not satisfy a required field — required means
    unconditionally present in the literal.  This is the non-additive-
    change guard: a field can only become required once every sender
    already carries it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    ProjectContext,
    register,
)

MSG_DIRS = ("serve",)

_WIRE_SEND_CALLEES = {"send_message", "write_message", "_send"}
_KIND_PRODUCING_CALLEES = {"call", "submit"}
_WIRE_RECV_CALLEES = {"read_message", "recv_message"}
_RECV_PARAM_NAMES = {"msg", "response"}


def _bare_callee(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _unwrap_await(node: ast.expr) -> ast.expr:
    return node.value if isinstance(node, ast.Await) else node


def _str_keys(d: ast.Dict) -> set[str]:
    return {
        k.value
        for k in d.keys
        if isinstance(k, ast.Constant) and isinstance(k.value, str)
    }


@dataclass
class _SendSite:
    pf: ParsedFile
    node: ast.Dict
    keys: set[str]


@dataclass
class _Access:
    pf: ParsedFile
    node: ast.AST
    name: str  # the key / kind / tag string


@dataclass
class _Collected:
    wire_sites: list[_SendSite] = field(default_factory=list)
    sent_keys: set[str] = field(default_factory=set)
    produced_kinds: set[str] = field(default_factory=set)
    produced_tags: set[str] = field(default_factory=set)
    accessed_keys: list[_Access] = field(default_factory=list)
    dispatched_kinds: list[_Access] = field(default_factory=list)
    dispatched_tags: list[_Access] = field(default_factory=list)
    required: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _collect_file(pf: ParsedFile, out: _Collected) -> None:
    # File-wide: pipe sends, produced kinds, REQUIRED_FIELDS.
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.Call):
            callee = _bare_callee(node)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
                and node.args
                and isinstance(node.args[0], ast.Tuple)
                and node.args[0].elts
                and isinstance(node.args[0].elts[0], ast.Constant)
                and isinstance(node.args[0].elts[0].value, str)
            ):
                out.produced_tags.add(node.args[0].elts[0].value)
            if (
                callee in _KIND_PRODUCING_CALLEES
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.produced_kinds.add(node.args[0].value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "REQUIRED_FIELDS"
                    and isinstance(node.value, ast.Dict)
                ):
                    _parse_required(node.value, out)

    for fn in _functions(pf.tree):
        _collect_function(pf, fn, out)


def _parse_required(d: ast.Dict, out: _Collected) -> None:
    for key, value in zip(d.keys, d.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            fields = tuple(
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            )
            out.required[key.value] = fields


def _collect_function(
    pf: ParsedFile,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    out: _Collected,
) -> None:
    wire_bound: set[str] = set()
    pipe_bound: set[str] = set()
    kind_vars: set[str] = set()
    tag_vars: set[str] = set()
    send_names: set[str] = set()

    params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
    wire_bound |= params & _RECV_PARAM_NAMES
    if "kind" in params:
        kind_vars.add("kind")

    # Pass 1: name bindings and send-call arguments.
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = _unwrap_await(node.value)
            if isinstance(target, ast.Name):
                if (
                    isinstance(value, ast.Call)
                    and _bare_callee(value) in _WIRE_RECV_CALLEES
                ):
                    wire_bound.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "recv"
                ):
                    pipe_bound.add(target.id)
        if isinstance(node, ast.Call) and _bare_callee(node) in _WIRE_SEND_CALLEES:
            if node.args:
                arg = node.args[-1]
                if isinstance(arg, ast.Dict):
                    keys = _str_keys(arg)
                    out.wire_sites.append(_SendSite(pf, arg, keys))
                    out.sent_keys |= keys
                    _record_kind_value(arg, out)
                elif isinstance(arg, ast.Name):
                    send_names.add(arg.id)

    # Derived bindings need the recv sets complete first.
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            value = _unwrap_await(node.value)
            key = _wire_key_of(value, wire_bound)
            if key == "kind":
                kind_vars.add(node.targets[0].id)
            if _is_pipe_tag_expr(value, pipe_bound):
                tag_vars.add(node.targets[0].id)

    # Pass 2: dict literals/subscript-assigns for send names, recv
    # accesses, and dispatch comparisons.
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in send_names
                    and isinstance(node.value, ast.Dict)
                ):
                    keys = _str_keys(node.value)
                    out.wire_sites.append(_SendSite(pf, node.value, keys))
                    out.sent_keys |= keys
                    _record_kind_value(node.value, out)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in send_names
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    out.sent_keys.add(target.slice.value)
        key = _wire_key_of(node, wire_bound)
        if key is not None and isinstance(node, (ast.Call, ast.Subscript)):
            if not (isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Store
            )):
                out.accessed_keys.append(_Access(pf, node, key))
        if isinstance(node, ast.Compare):
            _collect_dispatch(
                pf, node, wire_bound, pipe_bound, kind_vars, tag_vars, out
            )


def _record_kind_value(d: ast.Dict, out: _Collected) -> None:
    for key, value in zip(d.keys, d.values):
        if (
            isinstance(key, ast.Constant)
            and key.value == "kind"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            out.produced_kinds.add(value.value)


def _wire_key_of(node: ast.AST, wire_bound: set[str]) -> str | None:
    """The string key when ``node`` is ``W.get("k")`` or ``W["k"]`` on a
    recv-bound name ``W``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in wire_bound
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in wire_bound
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    return None


def _is_pipe_tag_expr(node: ast.AST, pipe_bound: set[str]) -> bool:
    """``P[0]`` of a pipe recv-bound name."""
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in pipe_bound
        and isinstance(node.slice, ast.Constant)
        and node.slice.value == 0
    )


def _comparator_strings(node: ast.expr) -> set[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return {
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        }
    return set()


def _collect_dispatch(
    pf: ParsedFile,
    node: ast.Compare,
    wire_bound: set[str],
    pipe_bound: set[str],
    kind_vars: set[str],
    tag_vars: set[str],
    out: _Collected,
) -> None:
    sides = [node.left, *node.comparators]
    is_kind = any(
        (isinstance(s, ast.Name) and s.id in kind_vars)
        or _wire_key_of(s, wire_bound) == "kind"
        for s in sides
    )
    is_tag = any(
        (isinstance(s, ast.Name) and s.id in tag_vars)
        or _is_pipe_tag_expr(s, pipe_bound)
        for s in sides
    )
    if not (is_kind or is_tag):
        return
    strings: set[str] = set()
    for s in sides:
        strings |= _comparator_strings(s)
    bucket = out.dispatched_tags if is_tag else out.dispatched_kinds
    for value in sorted(strings):
        bucket.append(_Access(pf, node, value))


@register
class MessageProtocolChecker(Checker):
    name = "message-protocol"
    rules = {
        "MSG001": "wire field read or kind/tag dispatched but never sent",
        "MSG002": "send site missing a protocol-required field",
    }

    def check_project(self, ctx: ProjectContext) -> Iterator[Finding]:
        col = _Collected()
        for pf in ctx.files:
            if pf.in_dirs(MSG_DIRS):
                _collect_file(pf, col)

        # Only judge a plane that has senders in scope: a partial lint
        # (one recv-side file) must not drown in read-never-sent noise.
        if col.wire_sites:
            for access in col.accessed_keys:
                if access.name not in col.sent_keys:
                    yield self._finding(
                        access, "MSG001",
                        f"wire field {access.name!r} is read at this recv "
                        "site but no send site in serve/ ever sends it; "
                        "dead field or a renamed sender",
                    )
        if col.produced_kinds:
            for access in col.dispatched_kinds:
                if access.name not in col.produced_kinds:
                    yield self._finding(
                        access, "MSG001",
                        f"request kind {access.name!r} is dispatched here "
                        "but never produced by any client call/submit "
                        "site; dead dispatch arm or a renamed kind",
                    )
        if col.produced_tags:
            for access in col.dispatched_tags:
                if access.name not in col.produced_tags:
                    yield self._finding(
                        access, "MSG001",
                        f"pipe tag {access.name!r} is dispatched here but "
                        "never sent by any conn.send((tag, ...)) site",
                    )
        for site in col.wire_sites:
            direction = (
                "request" if "kind" in site.keys
                else "response" if "ok" in site.keys
                else None
            )
            if direction is None:
                continue  # unclassifiable envelope: documented edge
            for required in col.required.get(direction, ()):
                if required not in site.keys:
                    yield Finding(
                        site.pf.rel, site.node.lineno, site.node.col_offset,
                        "MSG002",
                        f"{direction} send site is missing required field "
                        f"{required!r} (protocol.py REQUIRED_FIELDS); "
                        "required fields must be unconditionally present "
                        "in the message literal",
                        self.name,
                    )

    def _finding(self, access: _Access, rule: str, message: str) -> Finding:
        return Finding(
            access.pf.rel,
            getattr(access.node, "lineno", 1),
            getattr(access.node, "col_offset", 0),
            rule,
            message,
            self.name,
        )
