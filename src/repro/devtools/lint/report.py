"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.devtools.lint.core import Finding, all_rules
from repro.devtools.lint.runner import LintResult


def format_finding(finding: Finding, baselined: bool = False) -> str:
    tag = " [baselined]" if baselined else ""
    return (
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.rule}{tag} {finding.message}"
    )


def format_human(result: LintResult, show_baselined: bool = True) -> str:
    lines: list[str] = []
    lines.extend(f"error: {err}" for err in result.errors)
    baselined_keys = {id(f) for f in result.baselined}
    for finding in result.findings:
        is_old = id(finding) in baselined_keys
        if is_old and not show_baselined:
            continue
        lines.append(format_finding(finding, baselined=is_old))
    summary = (
        f"{len(result.new)} finding(s)"
        + (f" + {len(result.baselined)} baselined" if result.baselined else "")
        + f" in {result.files_checked} file(s)"
        + (f" ({result.cache_hits} cached)" if result.cache_hits else "")
        + (
            f" ({result.project_cache_hits} project-cached)"
            if result.project_cache_hits else ""
        )
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def format_rules() -> str:
    """``--list-rules`` output: every registered rule and description."""
    rules = all_rules()
    width = max(len(rule) for rule in rules)
    return "\n".join(
        f"{rule:<{width}}  {desc}" for rule, desc in rules.items()
    )
