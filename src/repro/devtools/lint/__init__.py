"""``repro lint``: AST-based static checks for this repository's
determinism, process-safety, hot-loop and oracle-parity contracts
(DESIGN.md §10) and the serving stack's concurrency contracts —
async/fork safety, message-protocol conformance, counter parity
(DESIGN.md §15).

Library API::

    from repro.devtools.lint import run_lint
    result = run_lint(paths=[Path("src/repro")], root=Path("."))
    result.new          # findings not covered by the baseline
    result.findings     # everything, sorted by (path, line, col, rule)

See :mod:`repro.devtools.lint.core` for the checker framework and the
pragma syntax, and the ``checkers`` package for the built-in rules.
"""

from repro.devtools.lint.core import (
    Checker,
    Finding,
    ParsedFile,
    ProjectContext,
    REGISTRY,
    all_rules,
    register,
)
from repro.devtools.lint.runner import LintResult, run_lint

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "ParsedFile",
    "ProjectContext",
    "REGISTRY",
    "all_rules",
    "register",
    "run_lint",
]
