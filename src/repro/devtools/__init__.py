"""Developer tooling for the reproduction: static analysis (`repro lint`).

Every fast path in this repository stakes its correctness on one
invariant: fast paths are bit-identical to their reference oracles, and
parallel/chaos runs are bit-identical to clean serial runs.  The
property-test suites enforce that invariant *dynamically*; this package
enforces the preconditions *statically*, at review time — before a newly
added wall-clock read, unseeded RNG, unpicklable closure or
oracle-less fast-path module ever reaches a test run.

Entry points:

* ``repro lint`` (the ``python -m repro`` CLI subcommand);
* ``python -m repro.devtools.lint`` (standalone, same flags);
* :func:`repro.devtools.lint.run_lint` (library API, used by the tests).

See ``DESIGN.md`` §10 ("Static determinism contract") for the rules,
the pragma syntax and how to baseline legacy findings.
"""

from repro.devtools.lint import run_lint  # noqa: F401

__all__ = ["run_lint"]
