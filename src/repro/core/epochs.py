"""Epoch construction and intra-feature vectors (Eq. 4 / Eq. 5).

Thread blocks with close IDs run concurrently (the greedy dispatcher
fills SMs in ID order), so consecutive groups of ``system occupancy``
thread blocks form *epochs* — the profiling-time approximation of "which
blocks are co-resident".  Each epoch is summarized by its average stall
probability (the intra-feature vector) and a *variation factor* that
flags epochs containing outlier thread blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiler.functional import LaunchProfile


def _group_cov(values: np.ndarray, starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Coefficient of variation of ``values`` within each group defined
    by ``starts``/``counts`` (vectorized via reduceat)."""
    sums = np.add.reduceat(values, starts)
    sq_sums = np.add.reduceat(values * values, starts)
    means = sums / counts
    variances = np.maximum(sq_sums / counts - means * means, 0.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        cov = np.sqrt(variances) / means
    return np.where(means > 0, cov, 0.0)


@dataclass(frozen=True)
class EpochTable:
    """Eq. 4 epochs of one launch with their Eq. 5 summaries.

    Attributes
    ----------
    occupancy:
        Epoch size (system occupancy for the simulated configuration).
    starts:
        First thread-block ID of each epoch.
    counts:
        Thread blocks per epoch (the last epoch may be partial).
    stall_probability:
        Mean over the epoch's blocks of per-block ``x/y`` (Eq. 5) — the
        intra-feature vector's single dimension.
    variation_factor:
        max(CoV(X), CoV(Y)) over the epoch's blocks (Eq. 5) — large
        values indicate outlier thread blocks.
    """

    occupancy: int
    starts: np.ndarray
    counts: np.ndarray
    stall_probability: np.ndarray
    variation_factor: np.ndarray

    @property
    def num_epochs(self) -> int:
        return len(self.starts)

    @property
    def num_blocks(self) -> int:
        return int(self.counts.sum())

    def epoch_of_block(self, tb_id: int) -> int:
        """Epoch index containing thread block ``tb_id``."""
        if not 0 <= tb_id < self.num_blocks:
            raise IndexError("tb_id out of range")
        return tb_id // self.occupancy

    def intra_feature_vectors(self) -> np.ndarray:
        """(num_epochs, 1) matrix of intra-feature vectors, normalized by
        the mean stall probability (the same Eq. 2-style normalization,
        so the clustering threshold is a relative distance)."""
        p = self.stall_probability
        mean = p.mean()
        if mean == 0:
            return np.zeros((len(p), 1))
        return (p / mean)[:, None]


def build_epochs(profile: LaunchProfile, occupancy: int) -> EpochTable:
    """Group a launch's thread blocks into epochs of ``occupancy``
    consecutive IDs and compute per-epoch Eq. 5 summaries.

    This is the step that must be redone when the simulated occupancy
    changes (Section V-C) — but it reuses the one-time profile, so it is
    a vectorized pass over per-block counters, not a re-profile.
    """
    if occupancy < 1:
        raise ValueError("occupancy must be positive")
    n = profile.num_blocks
    starts = np.arange(0, n, occupancy, dtype=np.int64)
    ends = np.minimum(starts + occupancy, n)
    counts = ends - starts

    x = profile.mem_requests.astype(np.float64)  # Eq. 5 X
    y = profile.warp_insts.astype(np.float64)  # Eq. 5 Y
    per_block_p = x / y
    stall = np.add.reduceat(per_block_p, starts) / counts
    vf = np.maximum(
        _group_cov(x, starts, counts), _group_cov(y, starts, counts)
    )
    return EpochTable(
        occupancy=occupancy,
        starts=starts,
        counts=counts,
        stall_probability=stall,
        variation_factor=vf,
    )


__all__ = ["EpochTable", "build_epochs"]
