"""Homogeneous-region identification (Section IV-B1).

Three steps over a launch's epoch table:

1. **Epoch clustering** — hierarchical clustering of the intra-feature
   vectors (threshold sigma_intra); epochs in one cluster are believed
   to share stall probability ``p`` (and, since the same kernel code
   runs, stall latency ``M``).
2. **Outlier post-processing** — epochs whose variation factor exceeds
   the threshold contain outlier thread blocks and are evicted into
   singleton clusters.
3. **Region construction** — maximal runs of *consecutive* epochs with
   the same cluster ID become homogeneous regions; the region ID is
   recorded for every member thread block in the homogeneous-region
   table (Table III).  Runs shorter than ``min_region_epochs`` are not
   worth sampling and stay unmarked (simulated as usual).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import hierarchical_cluster
from repro.config import SamplingConfig
from repro.core.epochs import EpochTable


@dataclass(frozen=True)
class HomogeneousRegion:
    """One row of the homogeneous-region table (Table III)."""

    region_id: int
    start_tb: int
    end_tb: int  # exclusive
    start_epoch: int
    end_epoch: int  # exclusive
    cluster: int

    @property
    def num_blocks(self) -> int:
        return self.end_tb - self.start_tb

    @property
    def num_epochs(self) -> int:
        return self.end_epoch - self.start_epoch


@dataclass(frozen=True)
class RegionTable:
    """Homogeneous-region table for one launch.

    ``region_of`` maps every thread-block ID to its region ID, or -1 for
    blocks outside any region (simulated as usual).
    """

    regions: tuple[HomogeneousRegion, ...]
    region_of: np.ndarray  # int64[num_blocks]
    epoch_clusters: np.ndarray  # cluster ID per epoch (after outlier pass)
    outlier_epochs: np.ndarray  # bool per epoch

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def covered_blocks(self) -> int:
        """Thread blocks inside some homogeneous region."""
        return int((self.region_of >= 0).sum())

    def rows(self) -> list[tuple[int, int, int]]:
        """(region ID, start TB ID, end TB ID) rows, Table III style
        (end inclusive, as in the paper's table)."""
        return [(r.region_id, r.start_tb, r.end_tb - 1) for r in self.regions]


def identify_regions(
    epochs: EpochTable, config: SamplingConfig | None = None
) -> RegionTable:
    """Run the three identification steps on one launch's epoch table."""
    config = config or SamplingConfig()
    n_epochs = epochs.num_epochs

    # Step 1: epoch clustering on intra-feature vectors.
    vectors = epochs.intra_feature_vectors()
    clusters = hierarchical_cluster(vectors, config.intra_threshold).labels.copy()

    # Step 2: evict outlier epochs into singleton clusters.
    outliers = epochs.variation_factor > config.variation_factor
    next_cluster = int(clusters.max()) + 1 if n_epochs else 0
    for e in np.flatnonzero(outliers):
        clusters[e] = next_cluster
        next_cluster += 1

    # Step 3: consecutive same-cluster runs become regions.
    region_of = np.full(epochs.num_blocks, -1, dtype=np.int64)
    regions: list[HomogeneousRegion] = []
    run_start = 0
    for e in range(1, n_epochs + 1):
        if e < n_epochs and clusters[e] == clusters[run_start]:
            continue
        run_len = e - run_start
        if run_len >= config.min_region_epochs and not outliers[run_start]:
            region_id = len(regions)
            start_tb = int(epochs.starts[run_start])
            end_tb = int(epochs.starts[e - 1] + epochs.counts[e - 1])
            regions.append(
                HomogeneousRegion(
                    region_id=region_id,
                    start_tb=start_tb,
                    end_tb=end_tb,
                    start_epoch=run_start,
                    end_epoch=e,
                    cluster=int(clusters[run_start]),
                )
            )
            region_of[start_tb:end_tb] = region_id
        run_start = e

    return RegionTable(
        regions=tuple(regions),
        region_of=region_of,
        epoch_clusters=clusters,
        outlier_epochs=outliers,
    )


__all__ = ["HomogeneousRegion", "RegionTable", "identify_regions"]
