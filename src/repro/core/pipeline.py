"""The end-to-end TBPoint pipeline.

``run_tbpoint`` executes the whole flow of Figs. 2-3 for one kernel:

1. one-time functional profiling (or reuse of a supplied profile);
2. inter-launch sampling: Eq. 2 features -> hierarchical clustering ->
   representative launches;
3. for each representative launch: Eq. 4 epochs -> Eq. 5 intra-feature
   vectors -> homogeneous-region identification -> timing simulation
   with homogeneous-region sampling;
4. composition of the kernel-level IPC estimate (Table IV).

Both sampling levels can be disabled independently (they are orthogonal,
as the paper notes under Table IV), which the ablation benches use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GPUConfig, SamplingConfig
from repro.core.epochs import build_epochs
from repro.core.estimates import KernelEstimate, compose_kernel_estimate
from repro.core.interlaunch import InterLaunchPlan, plan_inter_launch, trivial_plan
from repro.core.intralaunch import RegionSampler
from repro.core.regions import RegionTable, identify_regions
from repro.exec.cache import cached_profile
from repro.exec.engine import DEFAULT_EXECUTION, ExecutionConfig, parallel_map
from repro.profiler.functional import KernelProfile, LaunchProfile
from repro.sim.gpu import GPUSimulator, LaunchResult
from repro.sim.worker import get_simulator, init_worker
from repro.trace import KernelTrace
from repro.trace.launch import LaunchTrace


@dataclass
class TBPointResult:
    """Everything a TBPoint run produces for one kernel."""

    kernel_name: str
    estimate: KernelEstimate
    plan: InterLaunchPlan
    region_tables: dict[int, RegionTable] = field(default_factory=dict)
    rep_results: dict[int, LaunchResult] = field(default_factory=dict)
    samplers: dict[int, RegionSampler] = field(default_factory=dict)
    #: How the representative-launch fan-out actually executed
    #: (``path``/``workers``/``items``/``reason``, from ``parallel_map``).
    exec_meta: dict = field(default_factory=dict)

    @property
    def overall_ipc(self) -> float:
        return self.estimate.overall_ipc

    @property
    def sample_size(self) -> float:
        return self.estimate.sample_size

    @property
    def intra_skipped_insts(self) -> int:
        """Warp instructions skipped by fast-forwarding within the
        simulated launches (Fig. 11's intra-launch share)."""
        return sum(r.skipped_warp_insts for r in self.rep_results.values())

    @property
    def inter_skipped_insts(self) -> int:
        """Warp instructions of launches never simulated (Fig. 11's
        inter-launch share)."""
        return sum(
            l.warp_insts for l in self.estimate.launches if not l.simulated
        )

    def skip_breakdown(self) -> tuple[float, float]:
        """Relative (inter, intra) shares of all skipped instructions —
        one Fig. 11 bar.  (0, 0) if nothing was skipped."""
        inter = self.inter_skipped_insts
        intra = self.intra_skipped_insts
        total = inter + intra
        if total == 0:
            return (0.0, 0.0)
        return (inter / total, intra / total)


def simulate_representative(
    launch: LaunchTrace,
    launch_profile: LaunchProfile,
    gpu: GPUConfig,
    sampling: SamplingConfig,
    use_intra: bool,
    simulator: GPUSimulator | None = None,
) -> tuple[RegionTable | None, RegionSampler | None, LaunchResult]:
    """Simulate one representative launch (steps 3 of Figs. 2-3): build
    the epoch table, identify homogeneous regions, run the timing
    simulation with region sampling.

    This is the unit of work the batch execution engine ships to worker
    processes; the serial path calls the very same function (with a
    shared, reset simulator), which is why parallel and serial runs are
    bit-identical: launch timing depends only on the arguments here,
    never on simulation order (the memory hierarchy is reset per launch).
    """
    simulator = simulator or GPUSimulator(gpu)
    table: RegionTable | None = None
    sampler: RegionSampler | None = None
    if use_intra:
        occupancy = gpu.system_occupancy(launch.warps_per_block)
        epochs = build_epochs(launch_profile, occupancy)
        table = identify_regions(epochs, sampling)
        sampler = RegionSampler(
            region_of=table.region_of,
            block_warp_insts=launch_profile.warp_insts,
            config=sampling,
            occupancy=occupancy,
            cluster_of_region={r.region_id: r.cluster for r in table.regions},
        )
    result = simulator.run_launch(launch, sampler=sampler)
    return table, sampler, result


def _rep_launch_task(task: tuple) -> tuple:
    """Picklable worker: simulate one representative launch in the
    worker's warm simulator (process-pool entry point; the simulator is
    built once per worker by :func:`repro.sim.worker.init_worker` and
    keeps its interned trace tables across this kernel's launches)."""
    launch, launch_profile, gpu, sampling, use_intra = task
    return simulate_representative(
        launch, launch_profile, gpu, sampling, use_intra,
        simulator=get_simulator(gpu),
    )


def run_tbpoint(
    kernel: KernelTrace,
    gpu: GPUConfig | None = None,
    sampling: SamplingConfig | None = None,
    profile: KernelProfile | None = None,
    simulator: GPUSimulator | None = None,
    use_inter: bool = True,
    use_intra: bool = True,
    feature_mask: tuple[bool, bool, bool, bool] | None = None,
    extra_features: np.ndarray | None = None,
    exec_config: ExecutionConfig | None = None,
) -> TBPointResult:
    """Run TBPoint on one kernel and return the composed estimate.

    Parameters
    ----------
    kernel:
        The kernel trace (all launches).
    gpu / sampling:
        Machine and sampling configurations.
    profile:
        Reuse of the one-time functional profile (hardware independent —
        valid across GPU configurations, per Section V-C).
    simulator:
        Reuse an existing simulator instance (its memory hierarchy is
        reset at each launch anyway).
    use_inter / use_intra:
        Enable/disable the two orthogonal sampling levels.
    feature_mask / extra_features:
        Forwarded to :func:`plan_inter_launch` for ablation studies and
        the BBV-feature extension.
    exec_config:
        Batch execution: worker count for fanning representative-launch
        simulations across processes, and whether to consult the
        persistent profile cache when ``profile`` is not supplied.
        ``None`` keeps the library default (serial, no cache).  The
        merge is deterministic — results are keyed by launch ID and
        collected in plan order — so any ``jobs`` value yields
        bit-identical estimates.
    """
    gpu = gpu or GPUConfig()
    sampling = sampling or SamplingConfig()
    exec_config = exec_config or DEFAULT_EXECUTION
    if profile is None:
        profile = cached_profile(kernel, exec_config)

    if use_inter:
        plan = plan_inter_launch(
            profile, sampling, include=feature_mask, extra_features=extra_features
        )
    else:
        plan = trivial_plan(profile)

    region_tables: dict[int, RegionTable] = {}
    rep_results: dict[int, LaunchResult] = {}
    samplers: dict[int, RegionSampler] = {}
    sim_launches = plan.simulated_launches
    jobs = exec_config.effective_jobs
    exec_meta: dict = {}
    if jobs > 1 and len(sim_launches) > 1:
        tasks = [
            (kernel.launches[lid], profile.launches[lid], gpu, sampling, use_intra)
            for lid in sim_launches
        ]
        # min_items=2: one launch simulation dwarfs the pool spawn
        # cost, so even two launches are worth fanning out (the
        # generic MIN_PARALLEL_ITEMS floor is sized for short tasks).
        outcomes = parallel_map(
            _rep_launch_task, tasks, jobs, meta=exec_meta, config=exec_config,
            min_items=2, initializer=init_worker, initargs=(gpu,),
        )
    else:
        exec_meta.update(
            path="serial", workers=1, items=len(sim_launches),
            reason=f"jobs={jobs}, {len(sim_launches)} launch(es)",
        )
        simulator = simulator or GPUSimulator(gpu)
        outcomes = [
            simulate_representative(
                kernel.launches[lid],
                profile.launches[lid],
                gpu,
                sampling,
                use_intra,
                simulator=simulator,
            )
            for lid in sim_launches
        ]
    for launch_id, (table, sampler, result) in zip(sim_launches, outcomes):
        if table is not None:
            region_tables[launch_id] = table
        if sampler is not None:
            samplers[launch_id] = sampler
        rep_results[launch_id] = result

    estimate = compose_kernel_estimate(profile, plan, rep_results)
    return TBPointResult(
        kernel_name=kernel.name,
        estimate=estimate,
        plan=plan,
        region_tables=region_tables,
        rep_results=rep_results,
        samplers=samplers,
        exec_meta=exec_meta,
    )


__all__ = ["TBPointResult", "run_tbpoint", "simulate_representative"]
