"""IPC composition and evaluation metrics (Table IV, Eq. 1, Figs. 9-10).

The kernel-level estimate composes per-launch estimates: a simulated
(representative) launch contributes its measured-plus-predicted cycles;
an unsimulated launch is predicted to run at its representative's IPC,
so its cycle estimate is its own instruction count divided by that IPC.
Overall IPC is total warp instructions over total estimated cycles —
the machine-wide form of the paper's per-SM sum, to which it is equal
when SMs are load-balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.interlaunch import InterLaunchPlan
from repro.profiler.functional import KernelProfile
from repro.sim.gpu import LaunchResult


@dataclass(frozen=True)
class LaunchEstimate:
    """Estimated timing of one launch within a kernel estimate."""

    launch_id: int
    warp_insts: int
    est_cycles: float
    simulated_insts: int
    simulated: bool  # was this launch actually timing-simulated?

    @property
    def est_ipc(self) -> float:
        return self.warp_insts / self.est_cycles if self.est_cycles else 0.0


@dataclass(frozen=True)
class KernelEstimate:
    """Composed kernel-level estimate (the TBPoint output)."""

    kernel_name: str
    launches: tuple[LaunchEstimate, ...]

    @property
    def total_warp_insts(self) -> int:
        return sum(l.warp_insts for l in self.launches)

    @property
    def est_total_cycles(self) -> float:
        return sum(l.est_cycles for l in self.launches)

    @property
    def overall_ipc(self) -> float:
        """Estimated overall IPC (warp instructions per machine cycle)."""
        cycles = self.est_total_cycles
        return self.total_warp_insts / cycles if cycles else 0.0

    @property
    def simulated_insts(self) -> int:
        """Warp instructions actually timing-simulated."""
        return sum(l.simulated_insts for l in self.launches)

    @property
    def sample_size(self) -> float:
        """Fig. 10's total sample size: simulated / total instructions."""
        total = self.total_warp_insts
        return self.simulated_insts / total if total else 0.0


def compose_kernel_estimate(
    profile: KernelProfile,
    plan: InterLaunchPlan,
    rep_results: dict[int, LaunchResult],
) -> KernelEstimate:
    """Combine representative-launch simulations into a kernel estimate.

    Parameters
    ----------
    profile:
        Functional profile (provides every launch's instruction count).
    plan:
        Inter-launch plan mapping launches to clusters/representatives.
    rep_results:
        ``launch_id -> LaunchResult`` for every representative launch.
    """
    if plan.num_launches != profile.num_launches:
        raise ValueError("plan does not match profile")
    missing = set(plan.simulated_launches) - set(rep_results)
    if missing:
        raise ValueError(f"missing representative results for launches {missing}")

    estimates = []
    for launch_id, launch_profile in enumerate(profile.launches):
        rep_id = plan.representative_of(launch_id)
        rep = rep_results[rep_id]
        insts = launch_profile.total_warp_insts
        if launch_id == rep_id:
            # Simulated launch: measured wall plus fast-forward credit.
            # total_warp_insts may differ slightly from the functional
            # count only if the trace and profile disagree — asserted in
            # tests to be identical.
            est_cycles = rep.est_cycles
            simulated_insts = rep.issued_warp_insts
            simulated = True
        else:
            # Unsimulated launch: Table IV — predicted to run at its
            # representative's IPC.  A representative with no estimated
            # IPC cannot price its cluster; silently contributing zero
            # cycles here would inflate the kernel IPC.
            if rep.est_ipc <= 0:
                raise ValueError(
                    f"representative launch {rep_id} has non-positive "
                    f"estimated IPC; cannot predict launch {launch_id}"
                )
            est_cycles = insts / rep.est_ipc
            simulated_insts = 0
            simulated = False
        estimates.append(
            LaunchEstimate(
                launch_id=launch_id,
                warp_insts=insts,
                est_cycles=est_cycles,
                simulated_insts=simulated_insts,
                simulated=simulated,
            )
        )
    return KernelEstimate(kernel_name=profile.kernel_name, launches=tuple(estimates))


def sampling_error(estimated_ipc: float, full_ipc: float) -> float:
    """Relative sampling error |est - full| / full (Fig. 9's metric)."""
    if full_ipc <= 0:
        raise ValueError("full-simulation IPC must be positive")
    return abs(estimated_ipc - full_ipc) / full_ipc


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean used for the headline aggregates; zero values are
    floored at a tiny epsilon so a perfect kernel cannot zero the mean."""
    arr = np.maximum(np.asarray(list(values), dtype=np.float64), 1e-9)
    if arr.size == 0:
        raise ValueError("geometric mean of nothing")
    return float(np.exp(np.mean(np.log(arr))))


__all__ = [
    "LaunchEstimate",
    "KernelEstimate",
    "compose_kernel_estimate",
    "sampling_error",
    "geometric_mean",
]
