"""Homogeneous-region sampling (Section IV-B2).

:class:`RegionSampler` implements the simulator's dispatch hooks as the
paper's three-step state machine:

* **Entering** — when every concurrently resident thread block belongs
  to the same homogeneous region, the region is entered (WARM state).
* **Sampling (warming)** — sampling units (specified-thread-block
  lifetimes) are simulated as usual; once two consecutive units inside
  the region differ in IPC by less than the warm tolerance, cache state
  is considered stable and fast-forwarding begins.  The predicted region
  IPC is measured over the whole post-first-unit warming window (single
  units alias against DRAM-queue and wave beat patterns), and a cluster
  whose IPC was already established by an earlier region of this launch
  fast-forwards after a single confirming unit.
* **Fast-forwarding** — newly dispatched blocks of the region are
  skipped and credited at the predicted IPC.  Skips come in contiguous
  whole-occupancy multiples (whole *waves*), so every later block keeps
  its wave phase, and the final occupancy-many blocks of a region are
  always simulated so a region reaching the launch's end reproduces the
  real ramp-down.
* **Exiting** — a dispatched block with a different region ID (or past
  the skip budget) ends the episode and simulation continues as usual.

Cycle accounting: when fast-forwarding ends mid-launch, the thread
blocks still resident drained with ever-fewer co-runners, slower than
inside the full run where dispatch would have kept the SMs full.  The
measured drain window of an episode that skipped work is therefore
replaced by crediting its instructions at the predicted region IPC,
exactly like the skipped blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SamplingConfig

# Sampler states.
_IDLE = 0  # not inside a homogeneous region
_WARM = 1  # inside a region, warming the caches
_FF = 2  # fast-forwarding through the region


@dataclass
class RegionEpisode:
    """Diagnostics for one entered region (used by tests and reports)."""

    region_id: int
    entered_at: int
    warm_units: int = 0
    fast_forwarded: bool = False
    skipped_blocks: int = 0
    skipped_insts: int = 0
    predicted_ipc: float = 0.0
    drain_insts: int = 0
    drain_cycles: int = 0


class RegionSampler:
    """Intra-launch sampling controller for one launch simulation.

    Parameters
    ----------
    region_of:
        Region ID per thread block (-1 = no region), from
        :func:`repro.core.regions.identify_regions`.
    block_warp_insts:
        Per-block warp-instruction counts from the functional profile —
        the cost model for skipped blocks.
    config:
        Sampling parameters (warm tolerance, minimum warm units).
    occupancy:
        System occupancy (concurrent thread blocks machine-wide).  The
        last ``occupancy`` blocks of a region are never skipped: the
        region's final wave is simulated for real, so a region that runs
        to the end of the launch reproduces the full run's ramp-down
        instead of fast-forwarding through it.
    cluster_of_region:
        Optional epoch-cluster ID per region ID.  Epochs in one cluster
        "are believed to have the same p and M" (Section IV-B1), so once
        a cluster's IPC has been measured by a completed warming period,
        later regions of the *same cluster* within this launch reuse the
        prediction after a single confirming sampling unit instead of a
        full warm — the intra-launch analogue of Eq. 1's
        one-representative-per-cluster logic.
    """

    def __init__(
        self,
        region_of: np.ndarray,
        block_warp_insts: np.ndarray,
        config: SamplingConfig | None = None,
        occupancy: int = 1,
        cluster_of_region: dict[int, int] | None = None,
    ) -> None:
        if len(region_of) != len(block_warp_insts):
            raise ValueError("region_of and block_warp_insts length mismatch")
        if occupancy < 1:
            raise ValueError("occupancy must be positive")
        region_arr = np.asarray(region_of, dtype=np.int64)
        self._region_of = region_arr.tolist()
        # A block may be skipped only if its region continues for at
        # least ``occupancy`` more blocks (the region tail is simulated).
        skippable = np.zeros(len(region_arr), dtype=bool)
        if len(region_arr) > occupancy:
            head = region_arr[:-occupancy]
            skippable[: len(head)] = (head >= 0) & (
                head == region_arr[occupancy:]
            )
        self._skippable = skippable.tolist()
        self._occupancy = occupancy
        self._insts = np.asarray(block_warp_insts, dtype=np.int64).tolist()
        self._config = config or SamplingConfig()
        self._cluster_of_region = cluster_of_region or {}
        # cluster ID -> IPC measured by a completed warming period.
        self._cluster_ipc: dict[int, float] = {}

        self._state = _IDLE
        self._current_region = -1
        # Resident composition: counts per region ID (-1 included).
        self._resident: dict[int, int] = {}
        self._resident_total = 0
        self._prev_unit_ipc: float | None = None
        self._warm_units = 0
        self._unit_valid = False
        self._predicted_ipc = 0.0
        self._ff_start_cycle = 0
        self._ff_start_issued = 0
        self._budget: int | None = None
        self._anchor_cycle = 0
        self._anchor_issued = 0

        # Public accounting consumed by the simulator's LaunchResult.
        self.skipped_warp_insts = 0
        self.extra_cycles = 0.0
        self.episodes: list[RegionEpisode] = []
        self._episode: RegionEpisode | None = None

    # ------------------------------------------------------------------
    # DispatchSampler interface
    # ------------------------------------------------------------------
    def on_dispatch(self, tb_id: int, now: int, issued: int) -> bool:
        region = self._region_of[tb_id]
        if self._state == _FF:
            if (
                region == self._current_region
                and self._skippable[tb_id]
                and self._skip_budget(tb_id) > 0
            ):
                self._budget -= 1
                insts = self._insts[tb_id]
                self.skipped_warp_insts += insts
                self.extra_cycles += insts / self._predicted_ipc
                episode = self._episode
                if episode is not None:
                    episode.skipped_blocks += 1
                    episode.skipped_insts += insts
                return False
            # A foreign block, the region's final wave, or an exhausted
            # skip budget: stop fast-forwarding and simulate.
            self._close_ff(now, issued)
            self._exit_region()
        # Simulate the block.
        self._resident[region] = self._resident.get(region, 0) + 1
        self._resident_total += 1
        self._update_state(now)
        return True

    def on_retire(self, tb_id: int, now: int, issued: int) -> None:
        region = self._region_of[tb_id]
        count = self._resident.get(region, 0) - 1
        if count:
            self._resident[region] = count
        else:
            self._resident.pop(region, None)
        self._resident_total -= 1
        self._update_state(now)

    def on_unit_start(self, now: int) -> None:
        # A unit is usable for the warming test only if it begins while
        # already inside the region (WARM state).
        self._unit_valid = self._state == _WARM

    def on_unit_complete(self, insts: int, cycles: int, now: int, issued: int) -> None:
        if self._state != _WARM or not self._unit_valid or insts <= 0:
            return
        ipc = insts / cycles
        self._warm_units += 1
        if self._warm_units == 1:
            # Anchor after the first in-region unit: everything from here
            # to the fast-forward decision is the prediction window.
            self._anchor_cycle = now
            self._anchor_issued = issued
        if self._episode is not None:
            self._episode.warm_units = self._warm_units
        cluster = self._cluster_of_region.get(self._current_region)
        known = self._cluster_ipc.get(cluster) if cluster is not None else None
        prev = self._prev_unit_ipc
        if (
            known is not None
            and known > 0
            and abs(ipc - known) / known < self._config.warm_tolerance
        ):
            # This cluster's IPC was already established by an earlier
            # warming period in this launch, and the confirming unit
            # agrees: caches are warm, fast-forward immediately.
            self._begin_ff(0.5 * (ipc + known), now, issued, cluster)
            return
        if (
            prev is not None
            and prev > 0
            and self._warm_units >= self._config.min_warm_units
            and abs(ipc - prev) / prev < self._config.warm_tolerance
        ):
            # Predict from the whole post-first-unit window rather than
            # one unit: single units alias against DRAM-queue and wave
            # beat patterns, and the first unit still carries cold-cache
            # ramp (the reason the warming period exists).
            window_cycles = now - self._anchor_cycle
            window_insts = issued - self._anchor_issued
            if window_cycles > 0 and window_insts > 0:
                predicted = window_insts / window_cycles
            else:
                predicted = ipc
            self._begin_ff(predicted, now, issued, cluster)
            return
        self._prev_unit_ipc = ipc

    def _begin_ff(
        self, predicted: float, now: int, issued: int, cluster: int | None
    ) -> None:
        self._state = _FF
        self._predicted_ipc = predicted
        self._ff_start_cycle = now
        self._ff_start_issued = issued
        self._budget = None  # computed at the first skip decision
        if cluster is not None:
            self._cluster_ipc[cluster] = predicted
        if self._episode is not None:
            self._episode.fast_forwarded = True
            self._episode.predicted_ipc = predicted

    def finalize(self, now: int, issued: int) -> None:
        """Launch simulation finished; close any open fast-forward.

        Because a region's final wave is never skipped, fast-forwarding
        normally ends at a dispatch before the launch does; this path
        only fires if the launch runs out while FF is still open (e.g.
        an unexpectedly truncated launch) and applies the same
        drain-replacement as a mid-launch exit."""
        if self._state == _FF:
            self._close_ff(now, issued)
        self._exit_region()

    # ------------------------------------------------------------------
    # Internal state transitions
    # ------------------------------------------------------------------
    def _skip_budget(self, tb_id: int) -> int:
        """Blocks this fast-forward episode may still skip.

        Thread blocks execute in occupancy-sized *waves*; removing a
        contiguous run that is an exact multiple of the occupancy shifts
        every later block by whole waves, leaving the launch's wave
        phase — and hence its ramp-down shape — identical to the full
        run's.  The budget is therefore the largest multiple of the
        occupancy that fits in the contiguous skippable run ahead."""
        if self._budget is None:
            run = 0
            skippable = self._skippable
            region_of = self._region_of
            n = len(region_of)
            while (
                tb_id + run < n
                and skippable[tb_id + run]
                and region_of[tb_id + run] == self._current_region
            ):
                run += 1
            self._budget = (run // self._occupancy) * self._occupancy
        return self._budget

    def _close_ff(self, now: int, issued: int) -> None:
        """Fast-forwarding ends: replace the drain window's measured
        cycles with a credit at the predicted region IPC (the drained
        instructions would have run at that IPC had dispatch kept the
        SMs full).

        An episode that never skipped anything gets no replacement: its
        "drain" window is real execution (e.g. fast-forward re-armed
        during a region's final wave, where the measured ramp-down must
        stand)."""
        drain_insts = issued - self._ff_start_issued
        drain_cycles = now - self._ff_start_cycle
        episode = self._episode
        if episode is not None:
            episode.drain_insts = drain_insts
            episode.drain_cycles = drain_cycles
        if episode is None or episode.skipped_blocks > 0:
            self.extra_cycles += drain_insts / self._predicted_ipc - drain_cycles

    def _update_state(self, now: int) -> None:
        """Re-evaluate the entering/exit-while-warming conditions after
        any change to the resident composition."""
        if self._state == _FF:
            return  # FF exits only via a foreign dispatch or finalize
        homogeneous = (
            self._resident_total > 0
            and len(self._resident) == 1
            and next(iter(self._resident)) >= 0
        )
        if self._state == _IDLE:
            if homogeneous:
                self._state = _WARM
                self._current_region = next(iter(self._resident))
                self._prev_unit_ipc = None
                self._warm_units = 0
                self._episode = RegionEpisode(
                    region_id=self._current_region, entered_at=now
                )
                self.episodes.append(self._episode)
        elif self._state == _WARM:
            if not homogeneous or next(iter(self._resident)) != self._current_region:
                self._exit_region()
                self._update_state(now)  # may immediately enter a new region

    def _exit_region(self) -> None:
        self._state = _IDLE
        self._current_region = -1
        self._prev_unit_ipc = None
        self._warm_units = 0
        self._unit_valid = False
        self._episode = None

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def fast_forwarded_regions(self) -> int:
        return sum(1 for e in self.episodes if e.fast_forwarded)


__all__ = ["RegionSampler", "RegionEpisode"]
