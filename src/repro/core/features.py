"""Inter-launch feature vectors (Eq. 2).

Each kernel launch is summarized by four architecture-independent
features, each normalized by its average across all launches of the
kernel so the dimensions share an order of magnitude:

1. **Kernel launch size** — thread instructions;
2. **Control-flow divergence** — warp instructions (two launches with
   equal thread instructions but different divergence differ here);
3. **Memory divergence** — memory requests (post-coalescing global/local
   transactions);
4. **Thread-block variation** — coefficient of variation of thread-block
   sizes (distinct interleaving even at equal totals).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.distance import normalize_columns
from repro.profiler.functional import KernelProfile

#: Names of the Eq. 2 dimensions, in order.
FEATURE_NAMES = (
    "kernel_launch_size",
    "control_flow_divergence",
    "memory_divergence",
    "thread_block_variation",
)


def raw_inter_features(profile: KernelProfile) -> np.ndarray:
    """Un-normalized (num_launches, 4) feature matrix."""
    rows = np.array(
        [
            [
                p.total_thread_insts,
                p.total_warp_insts,
                p.total_mem_requests,
                p.block_size_cov,
            ]
            for p in profile.launches
        ],
        dtype=np.float64,
    )
    return rows


def inter_feature_matrix(
    profile: KernelProfile, include: tuple[bool, bool, bool, bool] | None = None
) -> np.ndarray:
    """Eq. 2 feature matrix: raw features normalized column-wise by
    their launch-average.

    Parameters
    ----------
    profile:
        One-time functional profile of the kernel.
    include:
        Optional per-feature mask for ablation studies (the DESIGN.md
        feature-ablation bench); ``None`` keeps all four dimensions.
    """
    feats = normalize_columns(raw_inter_features(profile))
    if include is not None:
        mask = np.asarray(include, dtype=bool)
        if mask.shape != (4,):
            raise ValueError("include mask must have 4 entries")
        if not mask.any():
            raise ValueError("at least one feature must be included")
        feats = feats[:, mask]
    return feats


__all__ = ["inter_feature_matrix", "raw_inter_features", "FEATURE_NAMES"]
