"""TBPoint core: the paper's contribution.

* :mod:`repro.core.features` — Eq. 2 inter-launch feature vectors;
* :mod:`repro.core.interlaunch` — inter-launch clustering and
  representative-launch selection (Section III);
* :mod:`repro.core.epochs` — Eq. 4 epochs and Eq. 5 intra-feature
  vectors / variation factors;
* :mod:`repro.core.regions` — homogeneous-region identification and the
  homogeneous-region table (Section IV-B1, Table III);
* :mod:`repro.core.intralaunch` — homogeneous-region sampling: the
  enter / warm / fast-forward / exit state machine driven by the
  simulator's dispatch hooks (Section IV-B2);
* :mod:`repro.core.estimates` — IPC composition (Table IV / Eq. 1) and
  the error / sample-size metrics of Figs. 9-10;
* :mod:`repro.core.pipeline` — the end-to-end TBPoint flow.
"""

from repro.core.features import inter_feature_matrix
from repro.core.interlaunch import InterLaunchPlan, plan_inter_launch
from repro.core.epochs import EpochTable, build_epochs
from repro.core.regions import HomogeneousRegion, RegionTable, identify_regions
from repro.core.intralaunch import RegionSampler
from repro.core.estimates import KernelEstimate, LaunchEstimate, sampling_error
from repro.core.pipeline import TBPointResult, run_tbpoint

__all__ = [
    "inter_feature_matrix",
    "InterLaunchPlan",
    "plan_inter_launch",
    "EpochTable",
    "build_epochs",
    "HomogeneousRegion",
    "RegionTable",
    "identify_regions",
    "RegionSampler",
    "KernelEstimate",
    "LaunchEstimate",
    "sampling_error",
    "TBPointResult",
    "run_tbpoint",
]
