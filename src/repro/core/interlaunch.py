"""Inter-launch sampling: cluster launches, pick representatives.

Hierarchical clustering (distance threshold sigma_inter = 0.1) groups
kernel launches with homogeneous performance; within each cluster the
launch whose feature vector is closest to the cluster center becomes the
*simulation point* — the only launch of the cluster that is timing-
simulated (and further reduced by intra-launch sampling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterResult, hierarchical_cluster
from repro.config import SamplingConfig
from repro.core.features import inter_feature_matrix
from repro.profiler.functional import KernelProfile


@dataclass(frozen=True)
class InterLaunchPlan:
    """The inter-launch sampling decision for one kernel.

    Attributes
    ----------
    labels:
        Cluster ID per launch.
    representatives:
        Launch index simulated on behalf of each cluster.
    features:
        The Eq. 2 feature matrix the clustering saw.
    """

    labels: np.ndarray
    representatives: np.ndarray
    features: np.ndarray

    @property
    def num_launches(self) -> int:
        return len(self.labels)

    @property
    def num_clusters(self) -> int:
        return len(self.representatives)

    def cluster_of(self, launch_id: int) -> int:
        return int(self.labels[launch_id])

    def representative_of(self, launch_id: int) -> int:
        """The launch whose simulation stands in for ``launch_id``."""
        return int(self.representatives[self.labels[launch_id]])

    @property
    def simulated_launches(self) -> list[int]:
        """Sorted launch indices that actually get simulated."""
        return sorted(int(r) for r in self.representatives)

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_clusters)


def plan_inter_launch(
    profile: KernelProfile,
    config: SamplingConfig | None = None,
    include: tuple[bool, bool, bool, bool] | None = None,
    extra_features: np.ndarray | None = None,
) -> InterLaunchPlan:
    """Cluster a kernel's launches and select representatives.

    Parameters
    ----------
    profile:
        One-time functional profile.
    config:
        Sampling parameters (uses ``inter_threshold``).
    include:
        Optional Eq. 2 feature mask (ablation).
    extra_features:
        Optional (num_launches, d) matrix appended to the Eq. 2 features
        — the paper's footnote-2 extension of adding the BBV as another
        feature.  Columns should already be comparable in magnitude.
    """
    config = config or SamplingConfig()
    feats = inter_feature_matrix(profile, include=include)
    if extra_features is not None:
        extra = np.asarray(extra_features, dtype=np.float64)
        if extra.ndim != 2 or len(extra) != len(feats):
            raise ValueError("extra_features must be (num_launches, d)")
        feats = np.hstack([feats, extra])
    result: ClusterResult = hierarchical_cluster(feats, config.inter_threshold)
    return InterLaunchPlan(
        labels=result.labels,
        representatives=result.representatives,
        features=feats,
    )


def plan_inter_launch_kmeans(
    profile: KernelProfile,
    max_k: int = 10,
    rng: np.random.Generator | None = None,
) -> InterLaunchPlan:
    """The design alternative the paper rejects (Section III): cluster
    the Eq. 2 features with k-means, choosing k by BIC, instead of
    hierarchical clustering with a distance threshold.

    Implemented for the ablation benches: it needs a second index (BIC)
    to pick k and gives no bound on intra-cluster spread, which is why
    the paper prefers the sigma-threshold formulation."""
    import numpy as _np

    from repro.cluster.kmeans import select_k_bic

    feats = inter_feature_matrix(profile)
    rng = rng or _np.random.default_rng(0)
    run = select_k_bic(feats, max_k=min(max_k, len(feats)), rng=rng)
    labels = run.labels.astype(_np.int64)
    # Renumber contiguously (BIC may leave empty clusters) and pick the
    # member closest to each centroid as the representative.
    remap: dict[int, int] = {}
    new_labels = _np.empty_like(labels)
    for i, lab in enumerate(labels):
        new_labels[i] = remap.setdefault(int(lab), len(remap))
    reps = _np.empty(len(remap), dtype=_np.int64)
    for old, new in remap.items():
        members = _np.flatnonzero(new_labels == new)
        d = _np.linalg.norm(feats[members] - run.centroids[old], axis=1)
        reps[new] = members[int(_np.argmin(d))]
    return InterLaunchPlan(labels=new_labels, representatives=reps, features=feats)


def trivial_plan(profile: KernelProfile) -> InterLaunchPlan:
    """A no-op plan that simulates every launch (used when inter-launch
    sampling is disabled, e.g. the intra-only ablation)."""
    n = profile.num_launches
    labels = np.arange(n, dtype=np.int64)
    return InterLaunchPlan(
        labels=labels,
        representatives=labels.copy(),
        features=inter_feature_matrix(profile),
    )


__all__ = [
    "InterLaunchPlan",
    "plan_inter_launch",
    "plan_inter_launch_kmeans",
    "trivial_plan",
]
