"""Content-addressed, persistent functional-profile cache.

The paper notes (Section V-C) that the one-time functional profile is
hardware independent: it depends only on the kernel trace, never on the
simulated machine.  So there is no reason to ever profile the same trace
twice — across hardware-sensitivity sweeps, across CLI invocations,
across *days*.  This module stores :class:`KernelProfile` objects on
disk keyed by a hash of the kernel trace identity plus the profiler and
generator versions.

Key derivation (:func:`kernel_cache_key`):

* traces with *provenance* (anything built by ``get_workload``) hash the
  cheap ``(name, scale, seed, generator version)`` tuple — no trace walk;
* arbitrary traces fall back to a full content fingerprint
  (:func:`kernel_fingerprint`) streaming every block's columns through
  BLAKE2b, which is still cheaper than profiling plus guarantees
  correctness for hand-built traces.

Robustness:

* writers write to a unique temporary file in the cache directory and
  ``os.replace`` it into place, so concurrent writers and crashes can
  never leave a partially written entry under the final name;
* every entry embeds a payload checksum; a truncated, garbled or
  checksum-mismatched entry is silently discarded and recomputed, never
  trusted and never fatal.

Layout (``$TBPOINT_CACHE_DIR`` or ``~/.cache/tbpoint``)::

    profiles/<key>.npz    one cached KernelProfile per trace identity
    stats.json            cumulative hit/miss counters (cache info)
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.profiler.functional import (
    PROFILER_VERSION,
    KernelProfile,
    LaunchProfile,
    profile_kernel,
)
from repro.trace import KernelTrace

#: On-disk entry format version (independent of the profiler version).
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$TBPOINT_CACHE_DIR``, or ``~/.cache/tbpoint``."""
    env = os.environ.get("TBPOINT_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "tbpoint"


def kernel_fingerprint(kernel: KernelTrace) -> str:
    """Full content hash of a kernel trace (all launches, all blocks).

    Streams every warp's columns through BLAKE2b in dispatch order.
    This walks the whole trace — use it only when the trace has no
    provenance; it exists so hand-built traces still get correct
    content-addressed caching.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(f"{kernel.name}:{kernel.num_launches}".encode())
    for launch in kernel.launches:
        h.update(
            f"L{launch.launch_id}:{launch.num_blocks}:"
            f"{launch.warps_per_block}:{launch.num_bbs}".encode()
        )
        for block in launch.iter_blocks():
            for warp in block.warps:
                for col in (warp.op, warp.active, warp.mem_req,
                            warp.addr, warp.spread, warp.bb):
                    h.update(np.ascontiguousarray(col).tobytes())
    return h.hexdigest()


def kernel_cache_key(kernel: KernelTrace) -> str:
    """Cache key for a kernel trace: provenance hash if available, full
    content fingerprint otherwise; always salted with the profiler
    version so profiler changes invalidate every entry."""
    if kernel.provenance is not None:
        ident = repr((kernel.provenance, "profiler", PROFILER_VERSION))
        return hashlib.blake2b(ident.encode(), digest_size=20).hexdigest()
    ident = f"{kernel_fingerprint(kernel)}:profiler:{PROFILER_VERSION}"
    return hashlib.blake2b(ident.encode(), digest_size=20).hexdigest()


def _payload_checksum(arrays: dict[str, np.ndarray]) -> str:
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arrays[name]).tobytes())
    return h.hexdigest()


def _serialize_profile(profile: KernelProfile) -> dict[str, np.ndarray]:
    """Columnar encoding: per-launch metadata plus concatenated counters
    (block boundaries recovered from ``num_blocks`` offsets)."""
    arrays = {
        "num_blocks": np.array(
            [p.num_blocks for p in profile.launches], dtype=np.int64
        ),
        "warps_per_block": np.array(
            [p.warps_per_block for p in profile.launches], dtype=np.int64
        ),
        "warp_insts": np.concatenate(
            [p.warp_insts for p in profile.launches]
        ).astype(np.int64),
        "thread_insts": np.concatenate(
            [p.thread_insts for p in profile.launches]
        ).astype(np.int64),
        "mem_requests": np.concatenate(
            [p.mem_requests for p in profile.launches]
        ).astype(np.int64),
    }
    return arrays


def _deserialize_profile(kernel_name: str, data) -> KernelProfile:
    num_blocks = np.asarray(data["num_blocks"], dtype=np.int64)
    warps_per_block = np.asarray(data["warps_per_block"], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(num_blocks)])
    total = int(offsets[-1])
    cols = {}
    for name in ("warp_insts", "thread_insts", "mem_requests"):
        col = np.asarray(data[name], dtype=np.int64)
        if len(col) != total:
            raise ValueError("profile cache entry: column length mismatch")
        cols[name] = col
    launches = []
    for i in range(len(num_blocks)):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        launches.append(
            LaunchProfile(
                kernel_name=kernel_name,
                launch_id=i,
                warps_per_block=int(warps_per_block[i]),
                warp_insts=cols["warp_insts"][lo:hi].copy(),
                thread_insts=cols["thread_insts"][lo:hi].copy(),
                mem_requests=cols["mem_requests"][lo:hi].copy(),
            )
        )
    return KernelProfile(kernel_name=kernel_name, launches=launches)


class ProfileCache:
    """Persistent, concurrency-safe store of functional profiles.

    Instances also count this-process hits/misses (``session_hits`` /
    ``session_misses``); cumulative counters persist in ``stats.json``
    so ``repro cache info`` can show that a rerun profiled nothing.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.profiles_dir = self.root / "profiles"
        self.stats_path = self.root / "stats.json"
        self.session_hits = 0
        self.session_misses = 0

    # ------------------------------------------------------------------
    # Entry storage
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.profiles_dir / f"{key}.npz"

    def get(self, key: str, kernel_name: str) -> KernelProfile | None:
        """Load an entry; any corruption counts as a miss and removes
        the bad entry so it is recomputed, never crashes."""
        path = self._entry_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["format_version"]) != CACHE_FORMAT_VERSION:
                    raise ValueError("unsupported cache entry format")
                arrays = {
                    name: data[name]
                    for name in ("num_blocks", "warps_per_block",
                                 "warp_insts", "thread_insts", "mem_requests")
                }
                stored = str(data["checksum"])
                if _payload_checksum(arrays) != stored:
                    raise ValueError("cache entry checksum mismatch")
                return _deserialize_profile(kernel_name, arrays)
        except KeyboardInterrupt:
            raise
        except Exception:
            # Truncated archive, bad zip, missing column, checksum
            # mismatch, version skew: discard and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, profile: KernelProfile) -> None:
        """Atomically store an entry (write-to-temp + rename), so
        concurrent writers of the same key both leave a valid file.
        Best-effort: an unwritable cache location skips storing rather
        than failing the run the cache exists to accelerate."""
        arrays = _serialize_profile(profile)
        final = self._entry_path(key)
        tmp = final.with_name(
            f".{key}.{os.getpid()}.{id(profile) & 0xFFFF:x}.tmp"
        )
        try:
            self.profiles_dir.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    format_version=np.int64(CACHE_FORMAT_VERSION),
                    checksum=np.str_(_payload_checksum(arrays)),
                    **arrays,
                )
            os.replace(tmp, final)
        except OSError:
            pass
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # The one high-level operation the pipeline uses
    # ------------------------------------------------------------------
    def profile(self, kernel: KernelTrace) -> KernelProfile:
        """Return the kernel's functional profile, computing and storing
        it only on the first request for this trace identity ever."""
        key = kernel_cache_key(kernel)
        cached = self.get(key, kernel.name)
        if cached is not None:
            self.session_hits += 1
            self._bump(hits=1)
            return cached
        profile = profile_kernel(kernel)
        self.put(key, profile)
        self.session_misses += 1
        self._bump(misses=1)
        return profile

    # ------------------------------------------------------------------
    # Counters and maintenance (the `repro cache` CLI)
    # ------------------------------------------------------------------
    def _read_stats(self) -> dict:
        try:
            with open(self.stats_path) as fh:
                stats = json.load(fh)
            if not isinstance(stats, dict):
                return {}
            return stats
        except (OSError, ValueError):
            return {}

    def _bump(self, hits: int = 0, misses: int = 0) -> None:
        """Cumulative counters.  The read-modify-write cycle is guarded
        by an advisory ``flock`` on a sidecar lock file so concurrent
        workers never lose increments (regression: the multiprocess
        hammer in ``tests/test_exec_cache.py``); the write itself stays
        atomic (unique tmp + rename) so readers never see a torn file.
        Best-effort throughout: an unwritable or lock-less location
        skips counting rather than failing the run."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            lock_path = self.root / ".stats.lock"
            with open(lock_path, "a") as lock:
                try:
                    import fcntl

                    fcntl.flock(lock, fcntl.LOCK_EX)
                except (ImportError, OSError):
                    pass  # no locking available: degrade to best-effort
                stats = self._read_stats()
                stats["hits"] = int(stats.get("hits", 0)) + hits
                stats["misses"] = int(stats.get("misses", 0)) + misses
                tmp = self.stats_path.with_name(
                    f".stats.{os.getpid()}.{id(stats) & 0xFFFF:x}.tmp"
                )
                try:
                    with open(tmp, "w") as fh:
                        json.dump(stats, fh)
                    os.replace(tmp, self.stats_path)
                finally:
                    if tmp.exists():
                        try:
                            tmp.unlink()
                        except OSError:
                            pass
                # The lock releases when ``lock`` closes.
        except OSError:
            pass

    def entries(self) -> list[Path]:
        """Every cached profile, **sorted by path**.

        The sort is a determinism contract, not a nicety: ``glob``
        enumerates in filesystem order, which differs across machines
        and even across runs on the same machine, and everything
        downstream (``info()`` byte totals, ``clear()`` removal order,
        sweep resume scans) must not depend on it.  DET005 in
        ``repro lint`` enforces the same rule tree-wide."""
        if not self.profiles_dir.is_dir():
            return []
        return sorted(self.profiles_dir.glob("*.npz"))

    def info(self) -> dict:
        """Everything ``repro cache info`` reports."""
        entries = self.entries()
        stats = self._read_stats()
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": int(stats.get("hits", 0)),
            "misses": int(stats.get("misses", 0)),
            "profiler_version": PROFILER_VERSION,
            "format_version": CACHE_FORMAT_VERSION,
        }

    def clear(self) -> int:
        """Remove every cache entry and the counters; returns the number
        of entries removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self.stats_path.unlink()
        except OSError:
            pass
        return removed


def cached_profile(kernel: KernelTrace, exec_config=None) -> KernelProfile:
    """Profile a kernel through the persistent cache when the execution
    configuration enables it; plain :func:`profile_kernel` otherwise."""
    if exec_config is not None and exec_config.use_cache:
        return ProfileCache(exec_config.cache_dir).profile(kernel)
    return profile_kernel(kernel)


__all__ = [
    "CACHE_FORMAT_VERSION",
    "ProfileCache",
    "cached_profile",
    "default_cache_dir",
    "kernel_cache_key",
    "kernel_fingerprint",
]
