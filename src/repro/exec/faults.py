"""Deterministic fault injection for the execution layer.

The fault-tolerance machinery in :mod:`repro.exec.engine` is only
trustworthy if every failure mode it claims to survive can be produced
on demand, repeatably, in a test.  A :class:`FaultPlan` is a seeded,
picklable script of failures: it rides into worker processes attached to
an :class:`~repro.exec.engine.ExecutionConfig` and fires at exact
``(task index, attempt)`` coordinates, so a chaos test can say "the
worker running task 3 dies on its first attempt, task 5 raises on its
second" and assert the sweep still produces results bit-identical to a
clean serial run.

Fault kinds
-----------

``CRASH``
    ``os._exit`` inside a worker process — the hard death (OOM-killer,
    segfault) that turns into ``BrokenProcessPool`` in the parent.
    Guarded by the plan's recorded parent PID so a crash fault can never
    kill the orchestrating process: when the retry policy degrades the
    task to in-parent serial execution, the fault is skipped — which is
    exactly the semantics a real repeatedly-crashing worker needs.
``RAISE``
    An :class:`InjectedFault` exception from the task body — the
    recoverable failure (transient resource exhaustion).
``HANG``
    ``time.sleep`` for ``duration`` seconds — drives the per-task
    timeout + pool-respawn path when ``duration`` exceeds
    ``task_timeout``.
``CORRUPT_CACHE``
    Truncates every stored profile-cache entry under the plan's
    ``cache_dir`` — exercises the cache's quarantine-and-recompute
    guarantee mid-sweep, from inside a worker.

Determinism: a plan is pure data (tuples of :class:`Fault`), firing
depends only on ``(index, attempt)``, and nothing it does in a worker
can change a task's *successful* result — it can only delay or destroy
the attempt.  Combined with the engine's in-order merge, results under
any plan are bit-identical to a fault-free run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

#: Exit status used by injected worker crashes (visible in pool logs).
CRASH_EXIT_CODE = 86

CRASH = "crash"
RAISE = "raise"
HANG = "hang"
CORRUPT_CACHE = "corrupt_cache"

_KINDS = frozenset({CRASH, RAISE, HANG, CORRUPT_CACHE})


class InjectedFault(RuntimeError):
    """The exception raised by a ``RAISE`` fault (never by real code, so
    chaos tests can tell injected failures from genuine bugs)."""


@dataclass(frozen=True)
class Fault:
    """One scripted failure: fire ``kind`` when task ``index`` runs its
    ``attempt``-th attempt (0-based; the first try is attempt 0)."""

    kind: str
    index: int
    attempt: int = 0
    #: ``HANG`` only: how long the task stalls, in seconds.
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.index < 0 or self.attempt < 0:
            raise ValueError("fault index/attempt must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable script of failures for one ``parallel_map`` call.

    Attributes
    ----------
    faults:
        The scripted failures; several may target the same coordinate
        (they fire in order).
    seed:
        Recorded for provenance so a failing chaos run can be named and
        replayed exactly; the plan itself is already fully deterministic.
    cache_dir:
        Directory whose ``profiles/*.npz`` entries ``CORRUPT_CACHE``
        faults destroy.
    parent_pid:
        PID of the process that built the plan.  ``CRASH`` faults only
        fire in *other* processes (workers), so the degrade-to-serial
        path can re-run a worker-killing task safely in the parent.
    """

    faults: tuple[Fault, ...] = ()
    seed: int = 0
    cache_dir: str | None = None
    parent_pid: int = field(default_factory=os.getpid)

    def fire(self, index: int, attempt: int) -> None:
        """Trigger every fault scripted for this ``(index, attempt)``.

        Called by the engine's task wrapper immediately before the task
        body runs (in the worker for pool attempts, in the parent for
        the serial-fallback attempt).
        """
        for fault in self.faults:
            if fault.index != index or fault.attempt != attempt:
                continue
            if fault.kind == CRASH:
                if os.getpid() != self.parent_pid:
                    os._exit(CRASH_EXIT_CODE)
            elif fault.kind == RAISE:
                raise InjectedFault(
                    f"injected fault: task {index} attempt {attempt}"
                )
            elif fault.kind == HANG:
                time.sleep(fault.duration)
            elif fault.kind == CORRUPT_CACHE:
                self._corrupt_cache_entries()

    def _corrupt_cache_entries(self) -> None:
        """Truncate every profile-cache entry under ``cache_dir`` to
        half its size — structurally broken archives the cache must
        quarantine and recompute, never trust."""
        if self.cache_dir is None:
            return
        from repro.exec.cache import ProfileCache

        for path in ProfileCache(self.cache_dir).entries():
            try:
                data = path.read_bytes()
                path.write_bytes(data[: len(data) // 2])
            except OSError:
                continue

    # ------------------------------------------------------------------
    # JSON form (PR 9): the serve-level chaos harness hands plans to a
    # real daemon process via ``repro serve --fault-plan plan.json``, so
    # a plan must survive a JSON round trip, not just a pickle one.
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-native form; exact inverse of :meth:`from_dict`."""
        return {
            "faults": [
                {
                    "kind": f.kind,
                    "index": f.index,
                    "attempt": f.attempt,
                    "duration": f.duration,
                }
                for f in self.faults
            ],
            "seed": self.seed,
            "cache_dir": self.cache_dir,
            "parent_pid": self.parent_pid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output.  ``parent_pid``
        is preserved verbatim: the process that *built* the plan is the
        one its ``CRASH`` faults must never kill, even when the plan
        crossed a JSON file into a daemon on the way to its workers."""
        faults = tuple(
            Fault(
                kind=f["kind"],
                index=f["index"],
                attempt=f.get("attempt", 0),
                duration=f.get("duration", 0.0),
            )
            for f in data.get("faults", ())
        )
        return cls(
            faults=faults,
            seed=data.get("seed", 0),
            cache_dir=data.get("cache_dir"),
            parent_pid=data.get("parent_pid", os.getpid()),
        )

    # ------------------------------------------------------------------
    # Introspection used by the engine and tests
    # ------------------------------------------------------------------
    def fires(self, index: int, attempt: int) -> tuple[Fault, ...]:
        """The faults scripted for one ``(index, attempt)`` coordinate,
        in firing order — lets a supervisor reason about a plan (e.g.
        "is this attempt scripted to hang?") without triggering it."""
        return tuple(
            f
            for f in self.faults
            if f.index == index and f.attempt == attempt
        )

    def crash_attempts(self, index: int) -> tuple[int, ...]:
        """The attempts at which task ``index`` is scripted to kill its
        worker (sorted)."""
        return tuple(
            sorted(
                f.attempt
                for f in self.faults
                if f.kind == CRASH and f.index == index
            )
        )

    def __bool__(self) -> bool:
        return bool(self.faults)


def crash_plan(*indices: int, attempt: int = 0, **kwargs) -> FaultPlan:
    """A plan that kills the worker of each listed task once."""
    return FaultPlan(
        faults=tuple(Fault(CRASH, i, attempt) for i in indices), **kwargs
    )


def raise_plan(*coords: tuple[int, int], **kwargs) -> FaultPlan:
    """A plan raising :class:`InjectedFault` at each ``(index, attempt)``."""
    return FaultPlan(
        faults=tuple(Fault(RAISE, i, a) for i, a in coords), **kwargs
    )


def hang_plan(
    *indices: int, duration: float, attempt: int = 0, **kwargs
) -> FaultPlan:
    """A plan stalling each listed task's attempt for ``duration`` s."""
    return FaultPlan(
        faults=tuple(
            Fault(HANG, i, attempt, duration=duration) for i in indices
        ),
        **kwargs,
    )


__all__ = [
    "CRASH",
    "RAISE",
    "HANG",
    "CORRUPT_CACHE",
    "CRASH_EXIT_CODE",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "crash_plan",
    "raise_plan",
    "hang_plan",
]
