"""Persistent sweep checkpoint journal: crash recovery for long sweeps.

A multi-hour Fig. 9/10 or sensitivity sweep must not restart from zero
because the machine rebooted at kernel 11 of 12.  Each sweep driver
(``run_fig9_fig10``, ``run_sensitivity``, ``run_scaling``) opens a
:class:`SweepJournal` keyed by the *content* of the sweep — driver name
plus every parameter that shapes its results — and appends one entry per
completed kernel task the moment the result reaches the parent process.
A killed sweep rerun with ``--resume`` loads the journal and recomputes
only the missing tasks; since every task is a pure function of its
inputs, the journaled results are bit-identical to what recomputing
them would produce, so a resumed sweep equals a clean one.

Format (``<cache root>/journals/<sweep key>.jsonl``) — append-only
JSONL, one completed task per line::

    {"task": "<task key>", "sha": "<blake2b of payload>", "data": "<base64 pickle>"}

Robustness:

* appends are a single ``write`` + flush + fsync of one line, so a
  crash can tear at most the final line;
* every line carries a payload checksum; torn, garbled or mismatched
  lines are skipped on load (that task is simply recomputed);
* the sweep key hashes all sweep parameters (and the journal format
  version), so ``--resume`` with different kernels, scale, seed, GPU or
  sampling settings can never reuse stale results — it lands on a
  different journal;
* a fresh (non-resume) run truncates the journal first, so entries
  from an older run of the same sweep cannot leak into a later resume.

The payloads are pickles written and read only by this library on the
local machine — the same trust model as the profile cache.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path

from repro.exec.cache import default_cache_dir

#: Journal entry/key format version; bumping invalidates every journal.
JOURNAL_FORMAT_VERSION = 1


def default_journal_dir() -> Path:
    """``<cache root>/journals`` — journals sit next to the profile
    cache (and honour ``$TBPOINT_CACHE_DIR`` the same way)."""
    return default_cache_dir() / "journals"


def list_journals(journal_dir: str | Path | None = None) -> list[Path]:
    """Every sweep journal under ``journal_dir``, **sorted by path**.

    Like :meth:`repro.exec.cache.ProfileCache.entries`, the sort is a
    determinism contract: filesystem enumeration order varies across
    machines, and any tooling iterating journals (inspection, pruning,
    reporting) must see the same order everywhere.  DET005 in
    ``repro lint`` enforces the rule tree-wide."""
    root = Path(journal_dir) if journal_dir else default_journal_dir()
    if not root.is_dir():
        return []
    return sorted(root.glob("*.jsonl"))


def journals_info(journal_dir: str | Path | None = None) -> dict:
    """What ``repro cache info`` reports about the journals directory:
    how many sweep journals exist, their total size, and the sweep key
    of the most recently written one (its filename stem — journals are
    content-keyed, so the stem *is* the sweep identity)."""
    root = Path(journal_dir) if journal_dir else default_journal_dir()
    journals = list_journals(root)
    sizes: list[int] = []
    newest: tuple[float, str] | None = None
    for path in journals:
        try:
            stat = path.stat()
        except OSError:
            continue  # unlinked between glob and stat; skip, don't crash
        sizes.append(stat.st_size)
        if newest is None or stat.st_mtime > newest[0]:
            newest = (stat.st_mtime, path.stem)
    return {
        "dir": str(root),
        "journals": len(sizes),
        "bytes": sum(sizes),
        "newest_key": newest[1] if newest else None,
    }


def sweep_key(sweep: str, params: object) -> str:
    """Content key of one sweep invocation: the driver name plus the
    ``repr`` of every result-shaping parameter (all are frozen
    dataclasses / primitives with stable reprs), salted with the
    journal format version."""
    ident = repr((sweep, params, "journal", JOURNAL_FORMAT_VERSION))
    return hashlib.blake2b(ident.encode(), digest_size=20).hexdigest()


def _payload_sha(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class SweepJournal:
    """Append-only record of completed tasks for one sweep identity."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    @classmethod
    def for_sweep(
        cls, sweep: str, params: object, journal_dir: str | Path | None = None
    ) -> "SweepJournal":
        root = Path(journal_dir) if journal_dir else default_journal_dir()
        return cls(root / f"{sweep_key(sweep, params)}.jsonl")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, task_key: str, result: object) -> None:
        """Durably append one completed task.  Best-effort: an
        unwritable journal location costs only resumability, never the
        sweep (mirrors the profile cache's contract)."""
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            line = json.dumps(
                {
                    "task": task_key,
                    "sha": _payload_sha(payload),
                    "data": base64.b64encode(payload).decode("ascii"),
                }
            )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as fh:
                fh.write(line + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except (OSError, pickle.PicklingError, AttributeError, TypeError):
            # AttributeError/TypeError: how pickle actually reports
            # unpicklable objects (lambdas, locks, ...).
            pass

    def reset(self) -> None:
        """Start this sweep's journal afresh (non-resume runs call this
        so a later ``--resume`` only ever sees the current run)."""
        try:
            self.path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, object]:
        """All recoverable entries, ``task key -> result``.  Torn or
        corrupt lines are skipped (their tasks get recomputed); when a
        task was journaled twice the later entry wins."""
        entries: dict[str, object] = {}
        try:
            with open(self.path) as fh:
                lines = fh.readlines()
        except OSError:
            return entries
        for line in lines:
            try:
                record = json.loads(line)
                payload = base64.b64decode(record["data"])
                if _payload_sha(payload) != record["sha"]:
                    continue
                entries[str(record["task"])] = pickle.loads(payload)
            except KeyboardInterrupt:
                raise
            except Exception:
                continue  # torn tail, garbage, truncated base64, ...
        return entries

    def __len__(self) -> int:
        return len(self.load())


def open_sweep_journal(
    sweep: str, params: object, exec_config
) -> tuple["SweepJournal | None", dict[str, object]]:
    """The one call sweep drivers make: honour the execution config's
    journaling knobs and return ``(journal, completed)``.

    * journaling off → ``(None, {})``;
    * ``resume`` → the journal plus everything it already records;
    * fresh run → the journal, reset, with nothing completed.
    """
    if not (exec_config.journal or exec_config.resume):
        return None, {}
    root = exec_config.journal_dir
    if root is None and exec_config.cache_dir:
        # Keep journals next to an overridden profile cache so one
        # --cache-dir relocates all persistent state together.
        root = Path(exec_config.cache_dir) / "journals"
    journal = SweepJournal.for_sweep(sweep, params, root)
    if exec_config.resume:
        return journal, journal.load()
    journal.reset()
    return journal, {}


__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "SweepJournal",
    "default_journal_dir",
    "journals_info",
    "list_journals",
    "open_sweep_journal",
    "sweep_key",
]
