"""Deterministic, fault-tolerant parallel fan-out over a process pool.

The batch execution engine parallelizes the two embarrassingly parallel
axes of the evaluation:

* *launches* — representative-launch simulations within one
  :func:`~repro.core.pipeline.run_tbpoint` call (and the per-launch
  full-simulation reference), which are independent because the memory
  hierarchy is reset at every launch;
* *kernels* — whole-kernel experiments within a sweep
  (``run_fig9_fig10``, ``run_sensitivity``, ``run_scaling``), which are
  independent by construction.

Determinism contract: :func:`parallel_map` returns results in the exact
order of its input items, every worker computes with the same pure
functions and inputs as the serial path, and nothing about scheduling
leaks into results — so parallel and serial runs produce bit-identical
estimates (property-tested in ``tests/test_exec_parallel.py``).

Fault-tolerance contract (DESIGN.md §9, chaos-tested in
``tests/test_exec_faults.py``): the contract above additionally holds
*under partial failure*.  Tasks are submitted individually and
supervised; a failed attempt (task exception, per-task timeout, worker
death breaking the pool) is retried with exponential backoff up to
``retries`` times, a task that exhausts its pool budget degrades to one
final in-parent serial attempt, and a broken pool is respawned with
only unfinished tasks requeued.  Because tasks are pure functions of
their inputs, re-running an attempt can only reproduce the result the
clean run would have produced — retries are invisible in results and
visible only in the execution record (``meta``).
"""

from __future__ import annotations

import os
import pickle
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Iterable, Sequence, TypeVar

from repro.exec.faults import FaultPlan

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a process pool cannot amortize its spawn cost
#: (interpreter start + module imports per worker dwarf a short task),
#: so :func:`parallel_map` degrades to the serial path.
MIN_PARALLEL_ITEMS = 4

#: Exponential backoff never waits longer than this between attempts.
BACKOFF_CAP = 2.0


def default_jobs() -> int:
    """The default worker count: every available CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How a pipeline/sweep invocation executes.

    Attributes
    ----------
    jobs:
        Worker-process count; 0 means :func:`default_jobs` (all CPUs),
        1 forces fully serial in-process execution.
    use_cache:
        Consult/populate the persistent on-disk profile cache.
    cache_dir:
        Override the cache directory (default: ``$TBPOINT_CACHE_DIR`` or
        ``~/.cache/tbpoint``).
    task_timeout:
        Seconds one task attempt may run in a worker before it is
        declared hung; the pool is respawned and the task retried.
        ``None`` (default) never times out.
    retries:
        Extra pool attempts a failed task gets beyond its first (so a
        task runs at most ``1 + retries`` times in workers) before
        degrading to one final in-parent serial attempt.
    backoff:
        Base backoff delay in seconds; attempt *k*'s retry waits
        ``backoff * 2**(k-1)`` (capped at :data:`BACKOFF_CAP`) plus up
        to 25% deterministic jitter.  0 disables waiting.
    fault_plan:
        Deterministic fault-injection script (tests only); rides into
        workers and fires at scripted ``(task index, attempt)`` pairs.
    journal:
        Record each completed sweep task in the persistent checkpoint
        journal so a killed sweep can be resumed.
    journal_dir:
        Override the journal directory (default: ``<cache root>/journals``).
    resume:
        Load the sweep's journal and skip tasks it already records
        instead of starting the journal afresh.
    """

    jobs: int = 1
    use_cache: bool = True
    cache_dir: str | None = None
    task_timeout: float | None = None
    retries: int = 2
    backoff: float = 0.05
    fault_plan: FaultPlan | None = None
    journal: bool = False
    journal_dir: str | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all CPUs)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")

    @property
    def effective_jobs(self) -> int:
        """The worker count actually used.

        An *explicit* ``jobs`` request is honoured exactly: containers
        and cgroup CPU quotas routinely make ``os.cpu_count()`` under-
        report the truly available parallelism, and silently rewriting
        ``--jobs 4`` down to the apparent CPU count is how every run on
        such a host fell back to serial with the misleading reason
        ``"jobs=1, N launch(es)"`` (the BENCH_exec.json gating bug this
        replaced).  Only the *automatic* request (``jobs == 0``) is
        sized to the machine via :func:`default_jobs` — that is the
        case where the engine, not the user, picks the count, and
        oversubscribing by default would just add pool overhead (the
        0.67x "speedup" an earlier BENCH_exec.json recorded)."""
        return self.jobs if self.jobs > 0 else default_jobs()

    def serial(self) -> "ExecutionConfig":
        """A copy that runs in-process (used inside worker processes so
        nested fan-out never spawns pools of pools).  Fault injection
        and journaling stay at the level that owns the task indices —
        the outer map — so both are stripped here."""
        import dataclasses

        return dataclasses.replace(
            self, jobs=1, fault_plan=None, journal=False, resume=False
        )

    def with_(self, **changes) -> "ExecutionConfig":
        import dataclasses

        return dataclasses.replace(self, **changes)


#: Execution used when no configuration is supplied: serial, cache off.
#: Keeps the library functions pure-by-default; opting into persistence
#: and parallelism is explicit (the CLI does, with cache on and all CPUs).
DEFAULT_EXECUTION = ExecutionConfig(jobs=1, use_cache=False)


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def _is_pickle_error(exc: BaseException) -> bool:
    """Did this attempt fail to *serialize* rather than to compute?
    Such failures are permanent for the pool path (retrying re-pickles
    the same object) but trivially computable in-process."""
    if isinstance(exc, pickle.PicklingError):
        return True
    return "pickle" in f"{type(exc).__name__}: {exc}".lower()


def _invoke_task(fn, index: int, attempt: int, plan, item):
    """What actually runs in a worker: fire any scripted faults for this
    ``(task, attempt)`` coordinate, then the task body."""
    if plan is not None:
        plan.fire(index, attempt)
    return fn(item)


def _backoff_delay(base: float, consumed: int, index: int) -> float:
    """Backoff before re-running a task whose ``consumed``-th attempt
    just failed: exponential in the attempt number, capped, with up to
    25% deterministic per-(task, attempt) jitter so a batch of failed
    tasks does not retry in lockstep."""
    if base <= 0:
        return 0.0
    delay = min(base * (2 ** max(0, consumed - 1)), BACKOFF_CAP)
    jitter = random.Random(f"backoff:{index}:{consumed}").random()
    return delay * (1.0 + 0.25 * jitter)


def _init_meta(meta: dict, items: int) -> dict:
    meta.update(
        path="serial",
        workers=1,
        items=items,
        reason=None,
        attempts=0,
        retries=0,
        pool_respawns=0,
        timed_out=[],
        serial_fallback=[],
    )
    return meta


def _finalize_meta(meta: dict) -> None:
    meta["retries"] = meta["attempts"] - meta["items"]


def _serial_run(
    fn: Callable[[T], R],
    items: list[T],
    config: ExecutionConfig,
    meta: dict,
    on_result: Callable[[int, R], None] | None,
) -> list[R]:
    """The in-process path.  Still honours the retry budget and the
    fault plan (whose worker-crash faults are parent-PID-guarded, so
    they are skipped here by design) — the engine's behaviour under
    faults must not depend on whether a pool was available."""
    plan = config.fault_plan
    results: list[R] = []
    for index, item in enumerate(items):
        attempt = 0
        while True:
            meta["attempts"] += 1
            try:
                if plan is not None:
                    plan.fire(index, attempt)
                value = fn(item)
                break
            except KeyboardInterrupt:
                raise
            except Exception:
                if attempt >= config.retries:
                    raise
                time.sleep(_backoff_delay(config.backoff, attempt + 1, index))
                attempt += 1
        results.append(value)
        if on_result is not None:
            on_result(index, value)
    _finalize_meta(meta)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int,
    meta: dict | None = None,
    config: ExecutionConfig | None = None,
    on_result: Callable[[int, R], None] | None = None,
    min_items: int = MIN_PARALLEL_ITEMS,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list[R]:
    """Map ``fn`` over ``items``, fanning out across processes.

    Results are returned in input order regardless of completion order,
    which is what makes parallel merges deterministic.  Degrades to a
    plain serial map whenever parallelism cannot help — ``jobs`` ≤ 1
    (an explicit jobs request is otherwise honoured exactly, even past
    the apparent CPU count: see ``ExecutionConfig.effective_jobs``),
    fewer than ``min_items`` items (default
    :data:`MIN_PARALLEL_ITEMS`; callers whose tasks dwarf the pool
    spawn cost, like whole-launch simulations, pass a lower floor) —
    or cannot work (``fn``/first item not picklable; pool spawn
    failure).  Serial and parallel paths are bit-identical, so the
    degrade is invisible in results.

    ``initializer``/``initargs`` run once in every worker process at
    spawn (including respawns after a broken pool), letting tasks reuse
    expensive per-worker state — e.g. a warm simulator with interned
    trace tables (``repro.sim.worker``).  The initializer must only
    *prime* state that tasks would otherwise build themselves; results
    must not depend on it (the serial path never runs it).

    The pool path supervises every task individually (``submit``-based):
    task exceptions, per-task timeouts (``config.task_timeout``) and
    worker deaths (``BrokenProcessPool``) are retried with exponential
    backoff up to ``config.retries`` extra attempts, a broken pool is
    respawned with only unfinished tasks requeued, and a task that
    exhausts its pool budget (or cannot be pickled) runs one final
    serial attempt in this process.  ``KeyboardInterrupt`` shuts the
    pool down immediately (``cancel_futures``) instead of waiting for
    in-flight tasks.

    When ``meta`` is a dict it is filled in place with the execution
    record: ``path`` ("serial" or "parallel"), ``workers``, ``items``,
    ``reason`` for taking the serial path (``None`` when parallel), and
    the fault-handling counters ``attempts`` (total task attempts,
    including first tries), ``retries`` (attempts beyond each task's
    first), ``pool_respawns``, ``timed_out`` / ``serial_fallback``
    (sorted task indices).

    ``on_result(index, result)`` — when given — is invoked in *this*
    process as each task completes (in completion order, not input
    order); sweep drivers use it to checkpoint finished tasks to the
    journal the moment they are durable.
    """
    items = list(items)
    config = config or DEFAULT_EXECUTION
    if meta is None:
        meta = {}
    _init_meta(meta, len(items))
    if jobs <= 1:
        meta["reason"] = f"jobs={jobs} <= 1"
        return _serial_run(fn, items, config, meta, on_result)
    if len(items) < min_items:
        meta["reason"] = f"{len(items)} items < min_items={min_items}"
        return _serial_run(fn, items, config, meta, on_result)
    if not (_is_picklable(fn) and _is_picklable(items[0])):
        # Probe the function and the first item only; a stray
        # unpicklable item later is caught per task at submit time and
        # falls back to serial for that task alone.
        meta["reason"] = "fn or first item not picklable"
        return _serial_run(fn, items, config, meta, on_result)
    workers = min(jobs, len(items))
    try:
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )
    except (OSError, RuntimeError):
        # Process pools may be unavailable (sandboxes, nested daemons);
        # the serial path is always correct, only slower.
        meta["reason"] = "process pool unavailable"
        return _serial_run(fn, items, config, meta, on_result)
    meta.update(path="parallel", workers=workers)
    return _pool_run(
        fn, items, pool, workers, config, meta, on_result,
        initializer, initargs,
    )


class _PoolLost(Exception):
    """Internal: the pool broke and could not be respawned; finish the
    remaining tasks serially."""


def _pool_run(
    fn: Callable[[T], R],
    items: list[T],
    pool: ProcessPoolExecutor,
    workers: int,
    config: ExecutionConfig,
    meta: dict,
    on_result: Callable[[int, R], None] | None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list[R]:
    n = len(items)
    plan = config.fault_plan
    timeout = config.task_timeout
    max_pool_attempts = 1 + config.retries

    results: list = [None] * n
    completed = [False] * n
    attempts = [0] * n  # pool attempts consumed per task
    timed_out: set[int] = set()
    serial_fb: set[int] = set()

    queue: deque[int] = deque(range(n))
    retry_heap: list[tuple[float, int]] = []  # (ready time, task index)
    inflight: dict[Future, int] = {}
    deadlines: dict[Future, float] = {}

    def finish(index: int, value) -> None:
        results[index] = value
        completed[index] = True
        if on_result is not None:
            on_result(index, value)

    def submit(index: int) -> None:
        attempt = attempts[index]
        fut = pool.submit(_invoke_task, fn, index, attempt, plan, items[index])
        attempts[index] += 1
        meta["attempts"] += 1
        inflight[fut] = index
        if timeout is not None:
            deadlines[fut] = time.monotonic() + timeout

    def run_serial_fallback(index: int) -> None:
        """The last resort for a task the pool cannot finish: one
        in-parent attempt.  Worker-crash faults are PID-guarded and so
        cannot fire here — which mirrors reality: the parent does not
        die of a worker's OOM.  A genuine exception here propagates."""
        serial_fb.add(index)
        attempt = attempts[index]
        attempts[index] += 1
        meta["attempts"] += 1
        if plan is not None:
            plan.fire(index, attempt)
        finish(index, fn(items[index]))

    def after_failure(index: int) -> None:
        """A pool attempt of ``index`` failed (already charged at
        submit): requeue with backoff, or degrade to serial once the
        pool budget is spent."""
        if attempts[index] >= max_pool_attempts:
            run_serial_fallback(index)
        else:
            delay = _backoff_delay(config.backoff, attempts[index], index)
            heappush(retry_heap, (time.monotonic() + delay, index))

    def respawn_pool() -> None:
        """Replace a broken/poisoned pool.  Every in-flight future is
        drained first: already-completed work is salvaged, everything
        else goes back through the retry policy."""
        nonlocal pool
        meta["pool_respawns"] += 1
        pool.shutdown(wait=False, cancel_futures=True)
        for fut, index in list(inflight.items()):
            if completed[index]:
                continue
            exc = None
            if fut.done() and not fut.cancelled():
                exc = fut.exception()
                if exc is None:
                    finish(index, fut.result())
                    continue
            if fut.cancelled():
                # Never started: refund the attempt charged at submit.
                attempts[index] -= 1
                meta["attempts"] -= 1
                queue.append(index)
            else:
                after_failure(index)
        inflight.clear()
        deadlines.clear()
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=initializer,
                initargs=initargs,
            )
        except (OSError, RuntimeError):
            raise _PoolLost from None

    try:
        while queue or retry_heap or inflight:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, index = heappop(retry_heap)
                queue.append(index)
            while queue:
                submit(queue.popleft())

            wait_for: float | None = None
            if deadlines:
                wait_for = max(0.0, min(deadlines.values()) - time.monotonic())
            if retry_heap:
                ready = max(0.0, retry_heap[0][0] - time.monotonic())
                wait_for = ready if wait_for is None else min(wait_for, ready)
            if not inflight:
                if wait_for:
                    time.sleep(wait_for)
                continue

            done, _ = wait(
                list(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
            )
            pool_broke = False
            for fut in done:
                index = inflight.pop(fut)
                deadlines.pop(fut, None)
                exc = fut.exception()
                if exc is None:
                    finish(index, fut.result())
                elif isinstance(exc, BrokenProcessPool):
                    pool_broke = True
                    after_failure(index)
                elif _is_pickle_error(exc):
                    # Permanent for the pool; trivially computable here.
                    run_serial_fallback(index)
                else:
                    after_failure(index)
            if pool_broke:
                respawn_pool()
                continue

            if timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    fut
                    for fut, dl in deadlines.items()
                    if dl <= now and not fut.done()
                ]
                if expired:
                    # The hung worker cannot be reclaimed individually;
                    # abandon the whole pool and requeue the rest.
                    for fut in expired:
                        timed_out.add(inflight[fut])
                    respawn_pool()
    except _PoolLost:
        # No pool can be spawned any more: finish everything still
        # outstanding serially, in index order.
        for index in range(n):
            if not completed[index]:
                run_serial_fallback(index)
    except BaseException:
        # KeyboardInterrupt and fatal task errors alike: never hang
        # waiting for in-flight work; completed tasks were already
        # journaled via on_result.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=False)
    meta["timed_out"] = sorted(timed_out)
    meta["serial_fallback"] = sorted(serial_fb)
    _finalize_meta(meta)
    return results


def chunked(items: Iterable[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be positive")
    out: list[list[T]] = []
    chunk: list[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            out.append(chunk)
            chunk = []
    if chunk:
        out.append(chunk)
    return out


__all__ = [
    "ExecutionConfig",
    "DEFAULT_EXECUTION",
    "MIN_PARALLEL_ITEMS",
    "BACKOFF_CAP",
    "default_jobs",
    "parallel_map",
    "chunked",
]
