"""Deterministic parallel fan-out over a process pool.

The batch execution engine parallelizes the two embarrassingly parallel
axes of the evaluation:

* *launches* — representative-launch simulations within one
  :func:`~repro.core.pipeline.run_tbpoint` call (and the per-launch
  full-simulation reference), which are independent because the memory
  hierarchy is reset at every launch;
* *kernels* — whole-kernel experiments within a sweep
  (``run_fig9_fig10``, ``run_sensitivity``), which are independent by
  construction.

Determinism contract: :func:`parallel_map` returns results in the exact
order of its input items, every worker computes with the same pure
functions and inputs as the serial path, and nothing about scheduling
leaks into results — so parallel and serial runs produce bit-identical
estimates (property-tested in ``tests/test_exec_parallel.py``).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a process pool cannot amortize its spawn cost
#: (interpreter start + module imports per worker dwarf a short task),
#: so :func:`parallel_map` degrades to the serial path.
MIN_PARALLEL_ITEMS = 4


def default_jobs() -> int:
    """The default worker count: every available CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How a pipeline/sweep invocation executes.

    Attributes
    ----------
    jobs:
        Worker-process count; 0 means :func:`default_jobs` (all CPUs),
        1 forces fully serial in-process execution.
    use_cache:
        Consult/populate the persistent on-disk profile cache.
    cache_dir:
        Override the cache directory (default: ``$TBPOINT_CACHE_DIR`` or
        ``~/.cache/tbpoint``).
    """

    jobs: int = 1
    use_cache: bool = True
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = all CPUs)")

    @property
    def effective_jobs(self) -> int:
        """The worker count actually used: the requested ``jobs`` (or
        all CPUs for 0), never more than the machine has — asking for 8
        workers on a 1-CPU host just adds pool overhead (the 0.67x
        "speedup" BENCH_exec.json recorded before this cap existed)."""
        requested = self.jobs if self.jobs > 0 else default_jobs()
        return min(requested, default_jobs())

    def serial(self) -> "ExecutionConfig":
        """A copy that runs in-process (used inside worker processes so
        nested fan-out never spawns pools of pools)."""
        return ExecutionConfig(
            jobs=1, use_cache=self.use_cache, cache_dir=self.cache_dir
        )

    def with_(self, **changes) -> "ExecutionConfig":
        import dataclasses

        return dataclasses.replace(self, **changes)


#: Execution used when no configuration is supplied: serial, cache off.
#: Keeps the library functions pure-by-default; opting into persistence
#: and parallelism is explicit (the CLI does, with cache on and all CPUs).
DEFAULT_EXECUTION = ExecutionConfig(jobs=1, use_cache=False)


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int,
    meta: dict | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, fanning out across processes.

    Results are returned in input order regardless of completion order,
    which is what makes parallel merges deterministic.  Degrades to a
    plain serial map whenever parallelism cannot help — effective jobs
    ≤ 1 (including requests for more workers than the machine has CPUs),
    fewer than :data:`MIN_PARALLEL_ITEMS` items — or cannot work
    (``fn``/items not picklable, e.g. hand-built traces whose factories
    are closures; pool spawn failure).  Serial and parallel paths are
    bit-identical, so the degrade is invisible in results.

    When ``meta`` is a dict it is filled in place with the execution
    record: ``path`` ("serial" or "parallel"), ``workers``, ``items``,
    and ``reason`` for taking the serial path (``None`` when parallel).
    """
    items = list(items)
    effective = min(jobs, default_jobs())
    if meta is None:
        meta = {}
    meta.update(path="serial", workers=1, items=len(items), reason=None)
    if effective <= 1:
        meta["reason"] = (
            f"effective jobs {effective} <= 1 "
            f"(requested {jobs}, {default_jobs()} CPUs)"
        )
        return [fn(item) for item in items]
    if len(items) < MIN_PARALLEL_ITEMS:
        meta["reason"] = (
            f"{len(items)} items < MIN_PARALLEL_ITEMS={MIN_PARALLEL_ITEMS}"
        )
        return [fn(item) for item in items]
    if not (_is_picklable(fn) and all(_is_picklable(i) for i in items)):
        meta["reason"] = "fn or items not picklable"
        return [fn(item) for item in items]
    workers = min(effective, len(items))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(fn, items))
    except (OSError, RuntimeError):
        # Process pools may be unavailable (sandboxes, nested daemons);
        # the serial path is always correct, only slower.
        meta["reason"] = "process pool unavailable"
        return [fn(item) for item in items]
    meta.update(path="parallel", workers=workers)
    return results


def chunked(items: Iterable[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be positive")
    out: list[list[T]] = []
    chunk: list[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) == size:
            out.append(chunk)
            chunk = []
    if chunk:
        out.append(chunk)
    return out


__all__ = [
    "ExecutionConfig",
    "DEFAULT_EXECUTION",
    "MIN_PARALLEL_ITEMS",
    "default_jobs",
    "parallel_map",
    "chunked",
]
