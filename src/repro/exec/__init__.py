"""Batch execution engine: fault-tolerant parallel fan-out, persistent
profile cache, and sweep checkpoint journal.

Three orthogonal services behind one configuration object
(:class:`ExecutionConfig`):

* :func:`parallel_map` — deterministic, fault-tolerant process-pool
  fan-out (results always in input order, bit-identical to the serial
  path, with per-task timeouts, bounded retries, broken-pool respawn
  and per-task serial fallback — DESIGN.md §9);
* :class:`ProfileCache` — a content-addressed on-disk store of the
  one-time functional profiles, so ``profile_kernel`` runs once per
  kernel trace *ever* (the profile is hardware-independent, Sec. V-C);
* :class:`SweepJournal` — an append-only checkpoint record of completed
  sweep tasks, so a killed ``run_fig9_fig10`` / ``run_sensitivity`` /
  ``run_scaling`` resumes (CLI ``--resume``) instead of restarting.

:mod:`repro.exec.faults` provides the deterministic fault-injection
harness (:class:`FaultPlan`) that the chaos tests drive through all of
the above.

``run_tbpoint``, ``run_full`` and every experiment driver accept an
``exec_config``; the CLI exposes it as ``--jobs`` / ``--no-cache`` /
``--cache-dir`` / ``--task-timeout`` / ``--retries`` / ``--resume``
plus the ``repro cache {info,clear}`` maintenance commands.
"""

from repro.exec.cache import (
    CACHE_FORMAT_VERSION,
    ProfileCache,
    cached_profile,
    default_cache_dir,
    kernel_cache_key,
    kernel_fingerprint,
)
from repro.exec.engine import (
    BACKOFF_CAP,
    DEFAULT_EXECUTION,
    MIN_PARALLEL_ITEMS,
    ExecutionConfig,
    chunked,
    default_jobs,
    parallel_map,
)
from repro.exec.faults import (
    Fault,
    FaultPlan,
    InjectedFault,
    crash_plan,
    hang_plan,
    raise_plan,
)
from repro.exec.journal import (
    JOURNAL_FORMAT_VERSION,
    SweepJournal,
    default_journal_dir,
    journals_info,
    list_journals,
    open_sweep_journal,
    sweep_key,
)

__all__ = [
    "ExecutionConfig",
    "DEFAULT_EXECUTION",
    "MIN_PARALLEL_ITEMS",
    "BACKOFF_CAP",
    "default_jobs",
    "parallel_map",
    "chunked",
    "ProfileCache",
    "cached_profile",
    "default_cache_dir",
    "kernel_cache_key",
    "kernel_fingerprint",
    "CACHE_FORMAT_VERSION",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "crash_plan",
    "hang_plan",
    "raise_plan",
    "SweepJournal",
    "JOURNAL_FORMAT_VERSION",
    "default_journal_dir",
    "journals_info",
    "list_journals",
    "open_sweep_journal",
    "sweep_key",
]
