"""Batch execution engine: parallel fan-out + persistent profile cache.

Two orthogonal services behind one configuration object
(:class:`ExecutionConfig`):

* :func:`parallel_map` — deterministic process-pool fan-out (results
  always in input order, bit-identical to the serial path);
* :class:`ProfileCache` — a content-addressed on-disk store of the
  one-time functional profiles, so ``profile_kernel`` runs once per
  kernel trace *ever* (the profile is hardware-independent, Sec. V-C).

``run_tbpoint``, ``run_full`` and every experiment driver accept an
``exec_config``; the CLI exposes it as ``--jobs`` / ``--no-cache`` /
``--cache-dir`` plus the ``repro cache {info,clear}`` maintenance
commands.
"""

from repro.exec.cache import (
    CACHE_FORMAT_VERSION,
    ProfileCache,
    cached_profile,
    default_cache_dir,
    kernel_cache_key,
    kernel_fingerprint,
)
from repro.exec.engine import (
    DEFAULT_EXECUTION,
    MIN_PARALLEL_ITEMS,
    ExecutionConfig,
    chunked,
    default_jobs,
    parallel_map,
)

__all__ = [
    "ExecutionConfig",
    "DEFAULT_EXECUTION",
    "MIN_PARALLEL_ITEMS",
    "default_jobs",
    "parallel_map",
    "chunked",
    "ProfileCache",
    "cached_profile",
    "default_cache_dir",
    "kernel_cache_key",
    "kernel_fingerprint",
    "CACHE_FORMAT_VERSION",
]
