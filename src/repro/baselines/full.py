"""Full-simulation reference runner.

Runs every launch of a kernel through the timing simulator with no
sampling, producing (a) the reference overall IPC that sampling errors
are measured against and (b) the stream of fixed-instruction-count
sampling units (per-unit IPC and BBV) that the Random and Ideal-SimPoint
baselines operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GPUConfig
from repro.exec.engine import DEFAULT_EXECUTION, ExecutionConfig, parallel_map
from repro.sim.gpu import FixedUnitRecorder, GPUSimulator, LaunchResult, UnitRecord
from repro.sim.worker import get_simulator, init_worker
from repro.trace import KernelTrace
from repro.trace.launch import LaunchTrace


@dataclass
class FullRunResult:
    """Result of a full (unsampled) kernel simulation."""

    kernel_name: str
    launch_results: list[LaunchResult]
    units: list[UnitRecord]
    unit_insts: int | None
    #: How the per-launch fan-out actually executed
    #: (``path``/``workers``/``items``/``reason``, from ``parallel_map``).
    exec_meta: dict = field(default_factory=dict)

    @property
    def total_warp_insts(self) -> int:
        return sum(r.issued_warp_insts for r in self.launch_results)

    @property
    def total_cycles(self) -> int:
        return sum(r.wall_cycles for r in self.launch_results)

    @property
    def overall_ipc(self) -> float:
        """Machine-wide overall IPC (warp instructions / machine cycle);
        equals the paper's per-SM sum when SMs are balanced."""
        return self.total_warp_insts / max(1, self.total_cycles)

    @property
    def per_sm_ipc_sum(self) -> float:
        """The paper's literal Fig. 9 metric, cycle-weighted over
        launches: sum over SMs of instructions / busy cycles."""
        num_sms = len(self.launch_results[0].per_sm_issued)
        total = 0.0
        for k in range(num_sms):
            insts = sum(r.per_sm_issued[k] for r in self.launch_results)
            cycles = sum(r.per_sm_busy_cycles[k] for r in self.launch_results)
            if cycles:
                total += insts / cycles
        return total


def _simulate_full_launch(
    launch: LaunchTrace,
    gpu: GPUConfig,
    unit_insts: int | None,
    record_bbv: bool,
    simulator: GPUSimulator | None = None,
) -> tuple[LaunchResult, list[UnitRecord]]:
    """Simulate one launch in full; shared by the serial loop and the
    process-pool workers (launch timings are order-independent because
    the memory hierarchy is reset per launch)."""
    simulator = simulator or GPUSimulator(gpu)
    recorder = None
    if unit_insts is not None:
        recorder = FixedUnitRecorder(
            unit_insts=unit_insts,
            num_bbs=launch.num_bbs,
            record_bbv=record_bbv,
        )
    result = simulator.run_launch(launch, recorder=recorder)
    return result, recorder.units if recorder is not None else []


def _full_launch_task(task) -> tuple[LaunchResult, list[UnitRecord]]:
    """Picklable process-pool entry point (warm per-worker simulator,
    see :mod:`repro.sim.worker`)."""
    launch, gpu, unit_insts, record_bbv = task
    return _simulate_full_launch(
        launch, gpu, unit_insts, record_bbv, simulator=get_simulator(gpu)
    )


def run_full(
    kernel: KernelTrace,
    gpu: GPUConfig | None = None,
    simulator: GPUSimulator | None = None,
    unit_insts: int | None = None,
    record_bbv: bool = True,
    exec_config: ExecutionConfig | None = None,
) -> FullRunResult:
    """Simulate every launch of ``kernel`` in full.

    Parameters
    ----------
    unit_insts:
        If given, slice the run into sampling units of this many
        machine-wide warp instructions (units never span launches, since
        launches are serialized and timed independently).  ``None``
        skips unit recording (faster).
    record_bbv:
        Collect per-unit basic-block vectors (needed by Ideal-SimPoint,
        not by Random).
    exec_config:
        Batch execution: with ``jobs > 1``, launches are simulated in
        worker processes and merged in launch order — bit-identical to
        the serial run (the supplied ``simulator`` is then unused).
    """
    gpu = gpu or GPUConfig()
    exec_config = exec_config or DEFAULT_EXECUTION

    jobs = exec_config.effective_jobs
    exec_meta: dict = {}
    if jobs > 1 and kernel.num_launches > 1:
        tasks = [(l, gpu, unit_insts, record_bbv) for l in kernel.launches]
        # min_items=2: a whole-launch simulation dwarfs pool spawn
        # cost (same reasoning as the representative-launch fan-out).
        outcomes = parallel_map(
            _full_launch_task, tasks, jobs, meta=exec_meta, config=exec_config,
            min_items=2, initializer=init_worker, initargs=(gpu,),
        )
    else:
        exec_meta.update(
            path="serial", workers=1, items=kernel.num_launches,
            reason=f"jobs={jobs}, {kernel.num_launches} launch(es)",
        )
        simulator = simulator or GPUSimulator(gpu)
        outcomes = [
            _simulate_full_launch(
                launch, gpu, unit_insts, record_bbv, simulator=simulator
            )
            for launch in kernel.launches
        ]
    launch_results: list[LaunchResult] = []
    units: list[UnitRecord] = []
    for result, launch_units in outcomes:
        launch_results.append(result)
        units.extend(launch_units)
    return FullRunResult(
        kernel_name=kernel.name,
        launch_results=launch_results,
        units=units,
        unit_insts=unit_insts,
        exec_meta=exec_meta,
    )


__all__ = ["FullRunResult", "run_full"]
