"""Random sampling baseline (Section V-A).

"We conduct a full simulation in which we collect IPC for every sampling
unit with one million instructions and randomly select 10% sampling
units."  The estimate is the instruction-weighted mean CPI of the
selected units extrapolated to the whole kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.full import FullRunResult


@dataclass(frozen=True)
class BaselineEstimate:
    """A baseline's kernel-level estimate."""

    name: str
    overall_ipc: float
    sample_size: float  # simulated instructions / total instructions
    num_selected: int
    num_units: int


def estimate_random(
    full: FullRunResult,
    fraction: float = 0.10,
    rng: np.random.Generator | None = None,
) -> BaselineEstimate:
    """Estimate overall IPC from a random ``fraction`` of sampling units.

    Units carry their instruction counts as weights (trailing units of a
    launch can be partial), so the estimator is unbiased over instruction
    intervals:  est_cpi = sum(insts_i * cpi_i) / sum(insts_i) over the
    selected units, and overall IPC = 1 / est_cpi.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if not full.units:
        raise ValueError("full run recorded no sampling units")
    rng = rng or np.random.default_rng(0)

    n = len(full.units)
    k = max(1, int(round(n * fraction)))
    chosen = rng.choice(n, size=k, replace=False)

    insts = np.array([full.units[i].insts for i in chosen], dtype=np.float64)
    cpis = np.array([full.units[i].cpi for i in chosen], dtype=np.float64)
    est_cpi = float((insts * cpis).sum() / insts.sum())

    total_insts = sum(u.insts for u in full.units)
    return BaselineEstimate(
        name="random",
        overall_ipc=1.0 / est_cpi,
        sample_size=float(insts.sum()) / total_insts,
        num_selected=k,
        num_units=n,
    )


__all__ = ["BaselineEstimate", "estimate_random"]
