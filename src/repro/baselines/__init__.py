"""Reference runners and baseline sampling techniques (Section V-A).

* :func:`run_full` — the full simulation with no sampling ("Full"),
  also producing the fixed-size sampling units (IPC + BBV per unit)
  both baselines consume;
* :func:`estimate_random` — Random: simulate a random 10% of the units;
* :func:`estimate_simpoint` — Ideal-SimPoint: cluster per-unit BBVs with
  k-means/BIC and predict via Eq. 1.  "Ideal" because the BBVs come from
  a full timing run (warp interleaving is unknowable without one), so
  the technique is an upper bound, not a deployable GPGPU sampler.
"""

from repro.baselines.full import FullRunResult, run_full
from repro.baselines.random_sampling import BaselineEstimate, estimate_random
from repro.baselines.simpoint import SimpointEstimate, estimate_simpoint
from repro.baselines.systematic import estimate_systematic

__all__ = [
    "FullRunResult",
    "run_full",
    "BaselineEstimate",
    "estimate_random",
    "SimpointEstimate",
    "estimate_simpoint",
    "estimate_systematic",
]
