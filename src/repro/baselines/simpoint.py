"""Ideal-SimPoint baseline (Section V-A).

Per-sampling-unit basic-block vectors (collected during the full timing
run — hence "ideal": a real GPGPU deployment could not know them without
the very simulation it is trying to avoid) are clustered with the
SimPoint recipe — normalize, random-project, k-means with BIC model
selection — and the kernel IPC is predicted via Eq. 1: the weighted sum
of each cluster representative's CPI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.full import FullRunResult
from repro.baselines.random_sampling import BaselineEstimate
from repro.cluster.kmeans import random_projection, select_k_bic


@dataclass(frozen=True)
class SimpointEstimate(BaselineEstimate):
    """Random-style estimate plus the clustering detail."""

    labels: np.ndarray = None  # cluster per unit
    representatives: np.ndarray = None  # unit index per cluster


def _bbv_matrix(full: FullRunResult) -> np.ndarray:
    rows = []
    width = max(len(u.bbv) for u in full.units if u.bbv is not None)
    for u in full.units:
        if u.bbv is None:
            raise ValueError("full run did not record BBVs")
        row = np.zeros(width, dtype=np.float64)
        row[: len(u.bbv)] = u.bbv
        total = row.sum()
        rows.append(row / total if total else row)
    return np.stack(rows)


def estimate_simpoint(
    full: FullRunResult,
    max_k: int = 30,
    rng: np.random.Generator | None = None,
    projection_dims: int = 15,
) -> SimpointEstimate:
    """Cluster unit BBVs and predict the kernel IPC via Eq. 1."""
    if not full.units:
        raise ValueError("full run recorded no sampling units")
    rng = rng or np.random.default_rng(0)

    bbvs = _bbv_matrix(full)
    projected = random_projection(bbvs, dims=projection_dims, rng=rng)
    run = select_k_bic(projected, max_k=max_k, rng=rng)

    insts = np.array([u.insts for u in full.units], dtype=np.float64)
    cpis = np.array([u.cpi for u in full.units], dtype=np.float64)
    total_insts = float(insts.sum())

    # Representative per cluster: member closest to the centroid.
    k = run.k
    reps = np.full(k, -1, dtype=np.int64)
    est_cycles = 0.0
    sampled_insts = 0.0
    for c in range(k):
        members = np.flatnonzero(run.labels == c)
        if members.size == 0:
            continue
        dists = np.linalg.norm(projected[members] - run.centroids[c], axis=1)
        rep = int(members[np.argmin(dists)])
        reps[c] = rep
        # Eq. 1, instruction-weighted: the cluster's instructions are
        # predicted to run at the representative unit's CPI.
        cluster_insts = float(insts[members].sum())
        est_cycles += cluster_insts * cpis[rep]
        sampled_insts += float(insts[rep])

    return SimpointEstimate(
        name="ideal-simpoint",
        overall_ipc=total_insts / est_cycles,
        sample_size=sampled_insts / total_insts,
        num_selected=int((reps >= 0).sum()),
        num_units=len(full.units),
        labels=run.labels,
        representatives=reps,
    )


__all__ = ["SimpointEstimate", "estimate_simpoint"]
