"""Systematic sampling baseline (Section VI, Related Work).

The paper contrasts profiling-based sampling with *systematic sampling*:
"selects a random starting point and takes samples periodically; for
example, 0.1 million instructions are simulated for every 10 million
instructions".  Its weaknesses, which this implementation lets the
benches demonstrate: no workload insight (errors are unexplainable) and
overhead proportional to total instructions (regular kernels are
massively over-sampled).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.full import FullRunResult
from repro.baselines.random_sampling import BaselineEstimate


def estimate_systematic(
    full: FullRunResult,
    period: int = 10,
    rng: np.random.Generator | None = None,
) -> BaselineEstimate:
    """Estimate overall IPC by simulating every ``period``-th sampling
    unit, starting from a random offset.

    With ``period=10`` this is the paper's example configuration (one
    unit in ten, i.e. a 10% sample), directly comparable to the Random
    baseline but with deterministic spacing.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    if not full.units:
        raise ValueError("full run recorded no sampling units")
    rng = rng or np.random.default_rng(0)

    n = len(full.units)
    start = int(rng.integers(min(period, n)))
    chosen = np.arange(start, n, period)

    insts = np.array([full.units[i].insts for i in chosen], dtype=np.float64)
    cpis = np.array([full.units[i].cpi for i in chosen], dtype=np.float64)
    est_cpi = float((insts * cpis).sum() / insts.sum())
    total_insts = sum(u.insts for u in full.units)
    return BaselineEstimate(
        name="systematic",
        overall_ipc=1.0 / est_cpi,
        sample_size=float(insts.sum()) / total_insts,
        num_selected=len(chosen),
        num_units=n,
    )


__all__ = ["estimate_systematic"]
