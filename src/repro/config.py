"""Configuration objects for the TBPoint reproduction.

Three configuration layers:

* :class:`GPUConfig` — the simulated machine (Table V of the paper,
  NVIDIA-Fermi-like).  Everything the timing simulator needs: number of
  SMs, warps per SM, cache geometry, DRAM geometry and latencies.
* :class:`SamplingConfig` — the TBPoint sampling parameters (Section V-A):
  hierarchical-clustering distance thresholds for inter- and intra-launch
  sampling, the variation factor used for outlier-epoch detection, and the
  warming-period IPC tolerance.
* :class:`ExperimentConfig` — knobs for experiment drivers (workload scale,
  RNG seed, baseline sampling-unit sizing).

All objects are frozen dataclasses so that a configuration can be used as
part of a cache key and cannot be mutated mid-experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class GPUConfig:
    """Simulated GPU configuration (Table V, Fermi-like defaults).

    Attributes
    ----------
    num_sms:
        Number of streaming multiprocessors ("Number of cores: 14").
    warps_per_sm:
        Maximum resident warps on one SM.  Together with
        ``warps_per_block`` this bounds the SM occupancy (concurrent
        thread blocks per SM).
    max_blocks_per_sm:
        Architectural cap on concurrent thread blocks per SM (8 on Fermi).
    issue_width:
        Warp instructions issued per SM per cycle (Table V: 1).
    l1_kib / l1_line:
        Per-SM L1 data cache capacity (KiB) and line size (bytes).
    l2_kib / l2_line:
        Shared L2 capacity (KiB) and line size (bytes).
    l2_shards:
        Number of per-address-slice L2 banks (power of two).  1 (the
        default) keeps the single unified cache object; >1 partitions
        L2 state into :class:`~repro.sim.caches.ShardedL2` banks —
        bit-identical in hits/misses/LRU order to the unified cache
        (global-LRU coordination; property-tested), the partitioning
        the SM-group parallel mode probes per-shard state through.
    l1_latency / l2_latency / dram_latency:
        Load-to-use latencies in cycles for an L1 hit, L2 hit and DRAM
        row-buffer hit respectively (before queueing delays).
    dram_row_miss_penalty:
        Extra cycles for a DRAM row-buffer miss (precharge + activate).
    dram_channels / dram_banks:
        DRAM geometry; requests queue per (channel, bank).
    dram_service:
        Data-burst occupancy of a bank per transaction, in cycles; this is
        what creates queueing delay (the variable part of the paper's
        stall-latency random variable ``M``).
    dram_jitter:
        Span of the deterministic per-access latency jitter in cycles
        (each access adds 0..dram_jitter-1).  Models refresh/command
        interference; keeps uniform workloads from running phase-locked.
        0 disables jitter (useful for exact-arithmetic tests).
    scheduler:
        Warp-selection policy among ready warps: ``"oldest"`` favours
        the earliest-dispatched warp (greedy-then-oldest flavour),
        ``"lrr"`` is loose round-robin (least-recently-issued first).
    """

    num_sms: int = 14
    warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    issue_width: int = 1
    l1_kib: int = 16
    l1_line: int = 128
    l2_kib: int = 768
    l2_line: int = 128
    l2_shards: int = 1
    l1_latency: int = 28
    l2_latency: int = 120
    dram_latency: int = 220
    dram_row_miss_penalty: int = 110
    dram_channels: int = 6
    dram_banks: int = 16
    dram_service: int = 16
    dram_row_bytes: int = 2048
    dram_jitter: int = 9
    scheduler: str = "oldest"

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.warps_per_sm <= 0:
            raise ValueError("warps_per_sm must be positive")
        if self.issue_width != 1:
            raise ValueError("only single-issue SMs are modelled (Table V)")
        for name in ("l1_line", "l2_line"):
            line = getattr(self, name)
            if line & (line - 1):
                raise ValueError(f"{name} must be a power of two")
        if self.l2_shards <= 0 or self.l2_shards & (self.l2_shards - 1):
            raise ValueError("l2_shards must be a positive power of two")
        if self.scheduler not in ("oldest", "lrr"):
            raise ValueError("scheduler must be 'oldest' or 'lrr'")

    def sm_occupancy(self, warps_per_block: int) -> int:
        """Concurrent thread blocks on one SM for a kernel with
        ``warps_per_block`` warps per thread block (Fig. 1 "SM occupancy")."""
        if warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        by_warps = self.warps_per_sm // warps_per_block
        return max(1, min(self.max_blocks_per_sm, by_warps))

    def system_occupancy(self, warps_per_block: int) -> int:
        """Maximum concurrent thread blocks machine-wide (Fig. 1
        "system occupancy"); this is also the epoch size of Eq. 4."""
        return self.num_sms * self.sm_occupancy(warps_per_block)

    def with_(self, **changes) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SamplingConfig:
    """TBPoint sampling parameters (Section V-A).

    Attributes
    ----------
    inter_threshold:
        Distance threshold sigma for hierarchical clustering of
        inter-launch feature vectors (paper: 0.1).
    intra_threshold:
        Distance threshold sigma for hierarchical clustering of epoch
        intra-feature vectors (paper: 0.2).
    variation_factor:
        Epochs whose variation factor (Eq. 5) exceeds this are treated as
        containing outlier thread blocks and get singleton clusters
        (paper: 0.3).
    warm_tolerance:
        Relative IPC difference between consecutive sampling units below
        which cache state is considered stable and fast-forwarding begins
        (paper: 10%).
    min_warm_units:
        Minimum number of completed sampling units before fast-forwarding
        may start (>= 2 because the warming test compares two units; the
        default of 3 keeps the launch's cold-start ramp — which lives in
        the first unit — out of the comparison).
    min_region_epochs:
        Homogeneous regions shorter than this many epochs are not worth
        sampling and are simulated as usual.
    """

    inter_threshold: float = 0.1
    intra_threshold: float = 0.2
    variation_factor: float = 0.3
    warm_tolerance: float = 0.10
    min_warm_units: int = 3
    min_region_epochs: int = 2

    def __post_init__(self) -> None:
        if self.inter_threshold < 0 or self.intra_threshold < 0:
            raise ValueError("clustering thresholds must be non-negative")
        if not 0 < self.warm_tolerance < 1:
            raise ValueError("warm_tolerance must be in (0, 1)")
        if self.min_warm_units < 2:
            raise ValueError("min_warm_units must be >= 2")

    def with_(self, **changes) -> "SamplingConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for experiment drivers and baselines.

    Attributes
    ----------
    scale:
        Workload scale factor in (0, 1]; 1.0 reproduces the paper-scale
        thread-block counts of Table VI.  Benches default to a reduced
        scale so the whole evaluation runs in minutes.
    seed:
        Master RNG seed; every stochastic step (workload generation,
        random-sampling baseline, k-means initialization, Monte Carlo)
        derives its stream from this.
    random_fraction:
        Fraction of sampling units simulated by the Random baseline
        (paper: 10%).
    target_units:
        Number of fixed-size sampling units the Full run is divided into
        for the Random and Ideal-SimPoint baselines.  The paper uses
        one-million-instruction units; we size units as
        ``total_insts / target_units`` so scaled-down workloads keep a
        comparable unit count.
    simpoint_max_k:
        Upper bound on k explored by the BIC search of Ideal-SimPoint.
    """

    scale: float = 0.125
    seed: int = 2014
    random_fraction: float = 0.10
    target_units: int = 100
    simpoint_max_k: int = 30

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if not 0 < self.random_fraction <= 1:
            raise ValueError("random_fraction must be in (0, 1]")
        if self.target_units < 2:
            raise ValueError("target_units must be >= 2")

    def with_(self, **changes) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


#: Default machine used throughout the evaluation (Table V).
DEFAULT_GPU = GPUConfig()

#: Default sampling parameters (Section V-A).
DEFAULT_SAMPLING = SamplingConfig()
