"""Supervised worker-process pool behind the serve daemon (PR 9).

PR 8's daemon computed on an in-process thread pool: one segfault, OOM
kill or runaway request took down every warm store with the process,
and the GIL serialized compute.  This module lifts the PR 4 supervisor
discipline (``exec/engine.py``: per-attempt supervision, retries,
pool respawn, degrade-to-serial) into the serving layer as a pool of
**long-lived worker processes**, each holding its own warm
:class:`~repro.serve.jobs.JobRunner` (per-worker simulators, resident
traces, profile mirror — the PR 7 ``sim/worker`` reuse identity), fed
over a duplex pipe with per-request heartbeats.

Supervision contract (DESIGN.md §14, chaos-tested in
``tests/test_serve_supervisor.py``):

* **Crash isolation** — a worker death (``BrokenPipe``/process
  sentinel) never touches the daemon: the worker is respawned and its
  in-flight job is retried on a healthy worker, up to ``retries``
  extra attempts.  The daemon's coalescing map and journal are
  untouched — waiters keep waiting on the same future and the
  eventually-served payload is bit-identical to a fresh direct run
  (jobs are pure functions of their normalized request).
* **Hang detection** — a busy worker must heartbeat (job accepted /
  phase boundary messages) within ``hang_timeout`` seconds; past the
  deadline it is killed and the job retried.  The simulation hot loop
  is one Python call, so phase boundaries are the finest honest
  progress signal — ``hang_timeout`` therefore bounds one compute
  phase, exactly like PR 4's per-attempt ``task_timeout``.
* **Backpressure** — admission is bounded by ``max_backlog``
  (pending + busy); past it :meth:`WorkerSupervisor.submit` raises
  :class:`Overloaded` carrying a ``retry_after`` hint derived from the
  observed job-duration EWMA, and the server sheds the request with a
  structured ``overloaded`` error instead of queueing without bound.
* **Graceful degradation** — ``degrade_after`` consecutive respawns
  without a completed job flips the pool into degraded mode: every
  queued and future job fails fast with :class:`WorkersUnavailable`
  and the server falls back to its in-process thread path, so a
  worker-killing environment degrades throughput, never availability.

Exactly-once stance: the *daemon* coalesces duplicate content keys
onto one future before anything reaches this pool, so per content key
there is exactly one **completed** execution; a crashed or hung
attempt died before completing and its retry recomputes the same pure
function.  Fault injection rides the PR 4 :class:`FaultPlan` —
each submitted job gets a monotonically increasing fault index
(submission order), and workers fire ``plan.fire(index, attempt)``
right after the job-accepted heartbeat, so a chaos test can script
"the worker running request 0 dies on its first attempt; request 1
hangs on its second" at exact coordinates.

Wall-clock reads here are supervision timers and operator metrics
(heartbeat deadlines, queue waits) — they never touch simulation
results, hence the inline DET001 pragmas (DESIGN.md §10).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait

from repro.exec.faults import FaultPlan
from repro.serve.jobs import JobRunner, percentile
from repro.serve.payloads import RequestError

#: Heartbeat deadline applied to a worker that has not yet reported
#: ready (fork/spawn + imports must finish within this).
SPAWN_TIMEOUT = 120.0

#: Queue-wait samples kept for the supervisor's latency report.
QUEUE_WAIT_WINDOW = 10_000


class Overloaded(Exception):
    """Backlog full: the request is shed, not queued.  ``retry_after``
    is the supervisor's back-off hint in seconds."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


class WorkersUnavailable(Exception):
    """The pool is degraded or stopped; the caller should fall back to
    the in-process path (the request is still served)."""


class WorkerJobFailed(Exception):
    """A job exhausted its worker retry budget; the last failure is the
    message.  The caller decides the final fallback."""


def _default_mp_context() -> str:
    """``fork`` where available (Linux): worker spawn latency sits on
    the respawn path and fork inherits the parent's imported modules;
    ``spawn`` elsewhere."""
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


@dataclass(frozen=True)
class SupervisorConfig:
    """How the worker pool runs (all reachable via ``repro serve``
    flags; see ``ServeConfig`` for the daemon-level view).

    Attributes
    ----------
    workers:
        Long-lived worker processes (must be >= 1 here; the daemon
        maps ``--workers 0`` to "no supervisor at all").
    retries:
        Extra attempts a job gets after a worker crash/hang/exception
        before it is failed back to the daemon (which then falls back
        to the in-process path).
    hang_timeout:
        Seconds a busy worker may go without a heartbeat before it is
        declared hung, killed and its job retried.  ``None`` disables
        hang detection (the default: a paper-scale tbpoint estimate
        can legitimately compute for minutes in one phase).
    max_backlog:
        Bound on pending + in-flight jobs; past it ``submit`` raises
        :class:`Overloaded`.  0 disables shedding.
    degrade_after:
        Consecutive worker respawns (no job completed in between) that
        flip the pool into degraded mode.
    block_memo / cache_dir:
        Forwarded to each worker's :class:`JobRunner`.
    fault_plan:
        Deterministic chaos script fired inside workers at
        ``(fault index, attempt)`` coordinates (tests only).
    mp_context:
        ``multiprocessing`` start method for workers.
    """

    workers: int = 2
    retries: int = 2
    hang_timeout: float | None = None
    max_backlog: int = 32
    degrade_after: int = 4
    block_memo: int = 0
    cache_dir: str | None = None
    fault_plan: FaultPlan | None = None
    mp_context: str = field(default_factory=_default_mp_context)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1 for a supervisor")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        if self.max_backlog < 0:
            raise ValueError("max_backlog must be >= 0 (0 = unbounded)")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerConfig:
    """What one worker process needs to build its warm state (picklable
    for both fork and spawn start methods)."""

    block_memo: int = 0
    cache_dir: str | None = None
    fault_plan: FaultPlan | None = None


def _worker_main(conn: Connection, cfg: _WorkerConfig) -> None:
    """One worker process: build warm state, then serve jobs from the
    pipe until ``stop``/EOF.  Messages out: ``("ready", pid)``,
    ``("hb", job_id)`` heartbeats, then exactly one of
    ``("done", job_id, payload, meta)`` / ``("reject", job_id, msg)``
    (a :class:`RequestError` — the request's fault, never retried) /
    ``("fail", job_id, msg)`` (an execution failure — retried)."""
    # Pre-import the heavy tbpoint path so a job never pays (or, under
    # fork, deadlocks on) first-import cost mid-request.
    import repro.core.pipeline  # noqa: F401

    runner = JobRunner(block_memo=cfg.block_memo, cache_dir=cfg.cache_dir)
    try:
        conn.send(("ready", os.getpid()))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, job_id, norm, fault_index, attempt = msg
            conn.send(("hb", job_id))  # job accepted: the first heartbeat
            try:
                if cfg.fault_plan is not None:
                    cfg.fault_plan.fire(fault_index, attempt)
                payload, meta = runner.run(
                    norm, heartbeat=lambda: conn.send(("hb", job_id))
                )
                conn.send(("done", job_id, payload, meta.as_dict()))
            except RequestError as exc:
                conn.send(("reject", job_id, str(exc)))
            except Exception as exc:  # noqa: BLE001 — reported, retried
                conn.send(("fail", job_id, f"{type(exc).__name__}: {exc}"))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # supervisor went away; nothing to report to


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class _Job:
    """One submitted compute request on its way through the pool."""

    job_id: int
    norm: dict
    future: Future
    attempts: int = 0  # dispatches consumed (1 + retries allowed)
    enqueued_at: float = 0.0
    last_error: str = ""


class _Worker:
    """Parent-side handle for one worker process."""

    __slots__ = ("process", "conn", "job", "ready", "last_beat", "deadline")

    def __init__(self, process, conn: Connection, spawn_deadline: float):
        self.process = process
        self.conn = conn
        self.job: _Job | None = None
        self.ready = False
        self.last_beat = 0.0
        #: Current supervision deadline: spawn deadline until ready,
        #: then heartbeat deadline while busy, else None.
        self.deadline: float | None = spawn_deadline


@dataclass
class SupervisorCounters:
    """Supervision events (mirrored into the daemon's stats payload and
    ``--metrics-json`` under ``workers``)."""

    jobs_completed: int = 0
    retries: int = 0
    respawns: int = 0
    hangs: int = 0
    crashes: int = 0
    rejects: int = 0
    failures: int = 0  # jobs that exhausted the worker retry budget


class WorkerSupervisor:
    """The pool: spawn, feed, watch, respawn, degrade.  One monitor
    thread owns every worker; :meth:`submit` is called from the
    daemon's event loop and communicates through a lock + wake pipe."""

    def __init__(self, config: SupervisorConfig):
        self.config = config
        self.counters = SupervisorCounters()
        self._ctx = multiprocessing.get_context(config.mp_context)
        self._lock = threading.Lock()
        self._pending: deque[_Job] = deque()
        self._workers: list[_Worker] = []
        self._next_job_id = 0
        self._stopping = False
        self._degraded = False
        self._degrade_reason: str | None = None
        self._consecutive_respawns = 0
        self._avg_job_s: float | None = None
        self._queue_waits: deque = deque(maxlen=QUEUE_WAIT_WINDOW)
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the workers and the monitor thread.  Returns
        immediately — jobs submitted before workers report ready just
        queue until one does."""
        with self._lock:
            for _ in range(self.config.workers):
                self._workers.append(self._spawn())
        self._thread = threading.Thread(
            target=self._monitor, name="repro-serve-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the pool.  Jobs still queued or in flight are failed
        with :class:`WorkersUnavailable` (the daemon drains *before*
        stopping the supervisor, so this only fires on abrupt
        teardown); workers are asked to exit, then killed."""
        with self._lock:
            self._stopping = True
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout)
        with self._lock:
            self._fail_all_locked(WorkersUnavailable("supervisor stopped"))
            workers, self._workers = self._workers, []
        for w in workers:
            if w.process.is_alive():
                w.process.kill()
            w.process.join(5.0)
            w.conn.close()

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    # ------------------------------------------------------------------
    # Submission (event-loop thread)
    # ------------------------------------------------------------------
    def submit(self, norm: dict) -> Future:
        """Queue one normalized compute request; returns a
        ``concurrent.futures.Future`` resolving to ``(payload,
        meta_dict)``.  Raises :class:`Overloaded` past ``max_backlog``
        and :class:`WorkersUnavailable` when degraded/stopped."""
        with self._lock:
            if self._degraded:
                raise WorkersUnavailable(
                    f"worker pool degraded: {self._degrade_reason}"
                )
            if self._stopping:
                raise WorkersUnavailable("supervisor stopping")
            load = len(self._pending) + sum(
                1 for w in self._workers if w.job is not None
            )
            if self.config.max_backlog and load >= self.config.max_backlog:
                raise Overloaded(
                    f"worker backlog full ({load}/{self.config.max_backlog})",
                    retry_after=self._retry_after_locked(load),
                )
            job = _Job(
                job_id=self._next_job_id,
                norm=norm,
                future=Future(),
                enqueued_at=time.monotonic(),  # queue-wait metric  # lint: disable=DET001
            )
            self._next_job_id += 1
            self._pending.append(job)
        self._wake()
        return job.future

    def _retry_after_locked(self, load: int) -> float:
        """Back-off hint: the backlog's expected drain time across the
        pool, clamped to a sane band."""
        avg = self._avg_job_s if self._avg_job_s is not None else 0.5
        hint = avg * max(1, load) / max(1, len(self._workers))
        return round(min(60.0, max(0.05, hint)), 3)

    # ------------------------------------------------------------------
    # Monitor thread
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass  # monitor already gone; stop() handles the rest

    def _spawn(self) -> _Worker:
        """Start one worker process (lock held by caller)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cfg = _WorkerConfig(
            block_memo=self.config.block_memo,
            cache_dir=self.config.cache_dir,
            fault_plan=self.config.fault_plan,
        )
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, cfg),
            name="repro-serve-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + SPAWN_TIMEOUT  # spawn watchdog  # lint: disable=DET001
        return _Worker(process, parent_conn, deadline)

    def _monitor(self) -> None:
        while True:
            with self._lock:
                if self._stopping or self._degraded:
                    break
                self._dispatch_locked()
                waitables = [self._wake_r]
                deadline: float | None = None
                for w in self._workers:
                    waitables.append(w.conn)
                    waitables.append(w.process.sentinel)
                    if w.deadline is not None:
                        deadline = (
                            w.deadline
                            if deadline is None
                            else min(deadline, w.deadline)
                        )
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())  # hang watchdog  # lint: disable=DET001
            ready = connection_wait(waitables, timeout)
            if self._wake_r in ready:
                while self._wake_r.poll():
                    self._wake_r.recv_bytes()
            with self._lock:
                for w in list(self._workers):
                    self._drain_worker_locked(w)
                self._check_liveness_locked()
                self._check_deadlines_locked()
        # Graceful exit: ask live workers to stop.
        with self._lock:
            workers = list(self._workers)
        for w in workers:
            try:
                w.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass

    # -- all methods below run with self._lock held --------------------
    def _dispatch_locked(self) -> None:
        for w in self._workers:
            if not self._pending:
                return
            if not w.ready or w.job is not None:
                continue
            job = self._pending.popleft()
            attempt = job.attempts
            try:
                w.conn.send(
                    ("job", job.job_id, job.norm, job.job_id, attempt)
                )
            except (OSError, ValueError, BrokenPipeError):
                # Death noticed at dispatch: requeue in place, the
                # liveness sweep respawns the worker.
                self._pending.appendleft(job)
                continue
            job.attempts += 1
            now = time.monotonic()  # supervision timers  # lint: disable=DET001
            self._queue_waits.append(now - job.enqueued_at)
            w.job = job
            w.last_beat = now
            if self.config.hang_timeout is not None:
                w.deadline = now + self.config.hang_timeout
            else:
                w.deadline = None

    def _drain_worker_locked(self, w: _Worker) -> None:
        """Consume every message the worker has buffered (results are
        salvaged even if the worker died right after sending them)."""
        while True:
            try:
                if not w.conn.poll():
                    return
                msg = w.conn.recv()
            except (EOFError, OSError):
                return  # death itself is handled by the liveness sweep
            kind = msg[0]
            if kind == "ready":
                w.ready = True
                w.deadline = None
            elif kind == "hb":
                w.last_beat = time.monotonic()  # heartbeat clock  # lint: disable=DET001
                if w.job is not None and self.config.hang_timeout is not None:
                    w.deadline = w.last_beat + self.config.hang_timeout
            elif kind in ("done", "reject", "fail"):
                job = w.job
                w.job = None
                w.deadline = None
                if job is None or job.job_id != msg[1]:
                    continue  # stale answer from a retried job
                if kind == "done":
                    self._consecutive_respawns = 0
                    self.counters.jobs_completed += 1
                    elapsed = (
                        time.monotonic() - job.enqueued_at  # EWMA job-time metric  # lint: disable=DET001
                    )
                    self._avg_job_s = (
                        elapsed
                        if self._avg_job_s is None
                        else 0.8 * self._avg_job_s + 0.2 * elapsed
                    )
                    if not job.future.done():
                        job.future.set_result((msg[2], msg[3]))
                elif kind == "reject":
                    self.counters.rejects += 1
                    if not job.future.done():
                        job.future.set_exception(RequestError(msg[2]))
                else:
                    job.last_error = msg[2]
                    self._retry_or_fail_locked(job)

    def _retry_or_fail_locked(self, job: _Job) -> None:
        if job.attempts > self.config.retries:
            self.counters.failures += 1
            if not job.future.done():
                job.future.set_exception(
                    WorkerJobFailed(
                        f"job failed after {job.attempts} worker attempt(s): "
                        f"{job.last_error}"
                    )
                )
            return
        self.counters.retries += 1
        self._pending.appendleft(job)

    def _check_liveness_locked(self) -> None:
        for i, w in enumerate(self._workers):
            if w.process.is_alive():
                continue
            self._drain_worker_locked(w)  # salvage buffered results
            w.process.join(5.0)
            w.conn.close()
            self.counters.crashes += 1
            if w.job is not None:
                job, w.job = w.job, None
                job.last_error = (
                    f"worker died (exitcode {w.process.exitcode})"
                )
                self._retry_or_fail_locked(job)
            self._respawn_slot_locked(i)

    def _check_deadlines_locked(self) -> None:
        now = time.monotonic()  # supervision timers  # lint: disable=DET001
        for i, w in enumerate(self._workers):
            if w.deadline is None or w.deadline > now:
                continue
            if w.job is not None:
                # Busy past the heartbeat deadline: hung.
                self.counters.hangs += 1
                job, w.job = w.job, None
                job.last_error = (
                    f"worker hung (> {self.config.hang_timeout:g}s "
                    "without a heartbeat)"
                )
                self._retry_or_fail_locked(job)
            # else: never reported ready within the spawn deadline.
            w.process.kill()
            w.process.join(5.0)
            w.conn.close()
            self._respawn_slot_locked(i)

    def _respawn_slot_locked(self, index: int) -> None:
        self.counters.respawns += 1
        self._consecutive_respawns += 1
        if self._consecutive_respawns >= self.config.degrade_after:
            self._enter_degraded_locked(
                f"{self._consecutive_respawns} consecutive worker "
                "respawns without a completed job"
            )
            return
        try:
            self._workers[index] = self._spawn()
        except OSError as exc:
            self._enter_degraded_locked(f"cannot spawn workers: {exc}")

    def _enter_degraded_locked(self, reason: str) -> None:
        """Fail everything fast so the daemon's fallback path answers;
        kill what's left of the pool."""
        self._degraded = True
        self._degrade_reason = reason
        self._fail_all_locked(
            WorkersUnavailable(f"worker pool degraded: {reason}")
        )
        for w in self._workers:
            if w.process.is_alive():
                w.process.kill()

    def _fail_all_locked(self, exc: Exception) -> None:
        while self._pending:
            job = self._pending.popleft()
            if not job.future.done():
                job.future.set_exception(exc)
        for w in self._workers:
            if w.job is not None:
                job, w.job = w.job, None
                if not job.future.done():
                    job.future.set_exception(exc)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Supervision state for the daemon's stats payload /
        ``--metrics-json`` (safe to call after :meth:`stop`)."""
        with self._lock:
            waits = sorted(self._queue_waits)
            c = self.counters
            snap: dict = {
                "configured": self.config.workers,
                "alive": sum(
                    1 for w in self._workers if w.process.is_alive()
                ),
                "busy": sum(1 for w in self._workers if w.job is not None),
                "pending": len(self._pending),
                "retries": c.retries,
                "respawns": c.respawns,
                "hangs": c.hangs,
                "crashes": c.crashes,
                "rejects": c.rejects,
                "failures": c.failures,
                "jobs_completed": c.jobs_completed,
                "degraded": self._degraded,
                "degrade_reason": self._degrade_reason,
                "hang_timeout": self.config.hang_timeout,
                "max_backlog": self.config.max_backlog,
                "mp_context": self.config.mp_context,
            }
            if self._avg_job_s is not None:
                snap["avg_job_ms"] = round(self._avg_job_s * 1e3, 3)
            if waits:
                snap["queue_wait_p50_ms"] = round(
                    percentile(waits, 0.50) * 1e3, 3
                )
                snap["queue_wait_p90_ms"] = round(
                    percentile(waits, 0.90) * 1e3, 3
                )
            return snap


__all__ = [
    "Overloaded",
    "SupervisorConfig",
    "SupervisorCounters",
    "WorkerJobFailed",
    "WorkerSupervisor",
    "WorkersUnavailable",
]
