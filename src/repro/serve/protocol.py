"""Length-prefixed JSON wire protocol for the simulation service.

One message = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (always one object).  Length prefixing keeps the
framing trivial and pipelining natural: a client may write any number
of requests before reading responses, and the server replies to each
request exactly once, tagged with the request's ``id`` (responses to
pipelined requests may arrive out of order — requests are admitted and
simulated concurrently).

Requests::

    {"id": 7, "kind": "simulate", "params": {"kernel": "hotspot", ...}}

Responses::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": "deadline exceeded in queue"}

The module carries both transports of the same framing: blocking
socket helpers (:func:`send_message` / :func:`recv_message`) for the
client, and asyncio stream helpers (:func:`read_message` /
:func:`write_message`) for the server.  Payloads are pure JSON — no
pickles cross the socket, so a served result is exactly what lands in
``BENCH_serve.json`` and what the bit-identity oracle compares.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

#: Protocol/framing version, embedded in ``ping``/``stats`` responses.
PROTOCOL_VERSION = 1

#: Upper bound on one message; guards the server against garbage
#: prefixes from a misbehaving peer, not a real payload limit.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Fields every wire message must carry, by direction.  The MSG002 lint
#: rule enforces this at every send site: a field may only become
#: required here once every sender already emits it unconditionally
#: (the additive-evolution rule, DESIGN.md §15; pairs with the
#: ``PROTOCOL_VERSION`` compatibility contract in §14).
REQUIRED_FIELDS = {
    "request": ("id", "kind"),
    "response": ("id", "ok"),
}

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed framing or payload on the wire."""


def encode_message(obj: dict) -> bytes:
    """One framed message: length prefix + compact JSON payload."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message too large ({len(payload)} bytes)")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable message payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("message payload must be a JSON object")
    return obj


def _decode_length(header: bytes) -> int:
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message length {length} exceeds limit")
    if length == 0:
        # A message is always one JSON object; an empty frame is a
        # framing bug (or a probe), named explicitly rather than
        # surfacing as a confusing JSON decode error downstream.
        raise ProtocolError("zero-length frame")
    return length


# ----------------------------------------------------------------------
# Blocking (client) side
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a message
    boundary (0 bytes read), :class:`ProtocolError` on a torn read."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(65536, n - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-message ({got}/{n})")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, obj: dict) -> None:
    sock.sendall(encode_message(obj))


def recv_message(sock: socket.socket) -> dict | None:
    """The next message, or ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    payload = _recv_exactly(sock, _decode_length(header))
    if payload is None:
        raise ProtocolError("connection closed between header and payload")
    return decode_payload(payload)


# ----------------------------------------------------------------------
# Asyncio (server) side
# ----------------------------------------------------------------------
async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """The next message from a stream, or ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from exc
    try:
        payload = await reader.readexactly(_decode_length(header))
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-message") from exc
    return decode_payload(payload)


async def write_message(writer: asyncio.StreamWriter, obj: dict) -> None:
    writer.write(encode_message(obj))
    await writer.drain()


__all__ = [
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "REQUIRED_FIELDS",
    "ProtocolError",
    "decode_payload",
    "encode_message",
    "read_message",
    "recv_message",
    "send_message",
    "write_message",
]
