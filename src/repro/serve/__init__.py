"""Warm-state simulation service: ``repro serve`` / ``repro request``.

A long-lived daemon (:mod:`repro.serve.server`) owns warm simulation
state — keyed engine registry, resident kernel traces with enlarged
block-memo windows, in-memory profile mirror, optional journal-backed
idempotent replay — and amortizes process cold-start across requests.
Clients (:mod:`repro.serve.client`) speak a length-prefixed JSON
protocol (:mod:`repro.serve.protocol`); request semantics and the
bit-identity oracle live in :mod:`repro.serve.payloads`.

DESIGN.md §13 documents the architecture and the measured warm/cold
latency; ``benchmarks/bench_serve.py`` produces ``BENCH_serve.json``.
"""

from repro.serve.client import ServeClient, ServeError, wait_for_server
from repro.serve.payloads import (
    RESULTS_VERSION,
    RequestError,
    direct_payload,
    normalize_request,
    payloads_equal,
    request_key,
)
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import (
    ServeConfig,
    ServeCounters,
    Server,
    ServerThread,
    default_socket_path,
    run_server,
)

__all__ = [
    "PROTOCOL_VERSION",
    "RESULTS_VERSION",
    "ProtocolError",
    "RequestError",
    "ServeClient",
    "ServeConfig",
    "ServeCounters",
    "ServeError",
    "Server",
    "ServerThread",
    "default_socket_path",
    "direct_payload",
    "normalize_request",
    "payloads_equal",
    "request_key",
    "run_server",
    "wait_for_server",
]
