"""Warm-state simulation service: ``repro serve`` / ``repro request``.

A long-lived daemon (:mod:`repro.serve.server`) owns warm simulation
state — keyed engine registry, resident kernel traces with enlarged
block-memo windows, in-memory profile mirror, optional journal-backed
idempotent replay — and amortizes process cold-start across requests.
Clients (:mod:`repro.serve.client`) speak a length-prefixed JSON
protocol (:mod:`repro.serve.protocol`); request semantics and the
bit-identity oracle live in :mod:`repro.serve.payloads`.  With
``--workers N`` compute runs on a supervised pool of crash-isolated
worker processes (:mod:`repro.serve.supervisor`, PR 9) sharing the
job body in :mod:`repro.serve.jobs`.

DESIGN.md §13–14 document the architecture, the measured warm/cold
latency and the supervision contract; ``benchmarks/bench_serve.py``
produces ``BENCH_serve.json``.
"""

from repro.serve.client import (
    ServeClient,
    ServeConnectionError,
    ServeError,
    wait_for_server,
)
from repro.serve.jobs import JobMeta, JobRunner
from repro.serve.payloads import (
    RESULTS_VERSION,
    RequestError,
    direct_payload,
    normalize_request,
    payloads_equal,
    request_key,
)
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import (
    ServeConfig,
    ServeCounters,
    Server,
    ServerThread,
    default_socket_path,
    run_server,
)
from repro.serve.supervisor import (
    Overloaded,
    SupervisorConfig,
    WorkerJobFailed,
    WorkerSupervisor,
    WorkersUnavailable,
)

__all__ = [
    "JobMeta",
    "JobRunner",
    "Overloaded",
    "PROTOCOL_VERSION",
    "RESULTS_VERSION",
    "ProtocolError",
    "RequestError",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "ServeCounters",
    "ServeError",
    "Server",
    "ServerThread",
    "SupervisorConfig",
    "WorkerJobFailed",
    "WorkerSupervisor",
    "WorkersUnavailable",
    "default_socket_path",
    "direct_payload",
    "normalize_request",
    "payloads_equal",
    "request_key",
    "run_server",
    "wait_for_server",
]
