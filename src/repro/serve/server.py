"""The long-lived simulation server behind ``repro serve``.

One process owns the hot state every one-shot invocation throws away:

* **warm engines** — a keyed registry of :class:`GPUSimulator`
  instances (checkout/checkin), keyed by the exact
  (config, engine, front-end) triple via
  :func:`repro.sim.worker.simulator_key` — the same reuse identity the
  launch fan-out workers use — so simulator-lifetime trace-interning
  tables survive across requests;
* **resident traces** — :class:`KernelTrace` objects per
  (kernel, scale, seed), their launches' block-memo windows enlarged
  (by default to the launch's full block count) so >256-block launches
  stop re-synthesizing blocks through the bounded LRU on every pass;
* **warm profiles** — an in-memory mirror of the content-addressed
  profile cache, backed by the persistent on-disk
  :class:`~repro.exec.cache.ProfileCache`;
* **served results** (opt-in ``journal=True``) — completed payloads
  recorded to a :class:`~repro.exec.journal.SweepJournal` under their
  request content keys, replayed idempotently across server restarts.

The asyncio front end admits compute requests under an explicit
concurrency limit (a semaphore + a same-sized thread pool), coalesces
duplicate in-flight requests (same content key → one simulation, N
responses), honours per-request deadlines while queued (the simulation
itself always completes and warms the server), and drains gracefully on
shutdown: queued work finishes and every accepted request is answered
before the socket closes.

Correctness stance: every served payload is bit-identical to
:func:`repro.serve.payloads.direct_payload` — a fresh direct run of the
same request — because everything the server keeps warm is a pure
cache (see that module's docstring).  Concurrent requests touching the
same resident kernel serialize on a per-kernel lock (the block-memo
window is shared mutable state); requests for different kernels
overlap.  Threads buy protocol/queue overlap, not parallel
simulation — the hot loop is pure Python under the GIL; DESIGN.md §13
records the honest latency numbers.

Determinism lint: the ``serve`` package is inside ``repro lint``'s
deterministic scope (DESIGN.md §10), but a server legitimately reads
the wall clock for deadlines, queue-latency metrics and uptime.  Those
sites — and only those — carry ``lint: disable=DET001`` pragmas; they
feed operator metrics, never simulation results.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.exec.faults import FaultPlan
from repro.exec.journal import SweepJournal, default_journal_dir
from repro.serve.jobs import JobMeta, JobRunner, percentile
from repro.serve.payloads import (
    RESULTS_VERSION,
    RequestError,
    normalize_request,
    request_key,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_message,
    write_message,
)
from repro.serve.supervisor import (
    Overloaded,
    SupervisorConfig,
    WorkerJobFailed,
    WorkerSupervisor,
    WorkersUnavailable,
)


def default_socket_path(cache_dir: str | Path | None = None) -> str:
    """``<cache root>/serve.sock`` — the unix socket lives next to the
    profile cache and journals so one ``--cache-dir`` relocates all
    persistent and rendezvous state together."""
    root = Path(cache_dir) if cache_dir else default_journal_dir().parent
    return str(root / "serve.sock")


@dataclass(frozen=True)
class ServeConfig:
    """How one server process runs.

    Attributes
    ----------
    socket_path:
        Unix-domain socket to listen on (default
        ``<cache root>/serve.sock``).  Ignored when ``host`` is set.
    host / port:
        TCP listen address instead of a unix socket; ``port=0`` binds
        an ephemeral port (read it back from ``Server.address``).
    max_concurrency:
        Compute requests admitted simultaneously; the rest queue.
    block_memo:
        Block-memo window applied to every resident launch trace.
        0 (default) sizes each launch's window to its full block
        count — regeneration-free resident traces.
    journal:
        Record completed payloads to the serve journal and replay them
        idempotently (including across restarts).  Off by default so
        warm-request latency measures warm *simulation*, not a lookup.
    cache_dir:
        Override the persistent cache root (profiles + journals).
    metrics_json:
        Dump the final ``stats`` payload to this file on shutdown.
    queue_latency_window:
        Most recent queue-wait samples kept for the percentile report.
    workers:
        Supervised worker processes for compute (PR 9).  0 (default)
        keeps the PR 8 in-process thread path; with workers the thread
        path remains the degraded-mode fallback.
    worker_retries:
        Extra worker attempts a job gets after a crash/hang/exception
        before the daemon falls back to computing it in-process.
    hang_timeout:
        Seconds a busy worker may go without a heartbeat before it is
        killed and its job retried (None disables hang detection).
    max_backlog:
        Bound on jobs queued + in flight across the worker pool; past
        it requests are shed with a structured ``overloaded`` error
        (0 = unbounded, no shedding).
    degrade_after:
        Consecutive worker respawns without a completed job that flip
        the daemon into degraded (in-process) mode.
    fault_plan:
        Deterministic chaos script injected into workers (tests/CI
        only; see :mod:`repro.exec.faults`).
    mp_context:
        ``multiprocessing`` start method for workers (None = platform
        default chosen by the supervisor).
    """

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    max_concurrency: int = 2
    block_memo: int = 0
    journal: bool = False
    cache_dir: str | None = None
    metrics_json: str | None = None
    queue_latency_window: int = 100_000
    workers: int = 0
    worker_retries: int = 2
    hang_timeout: float | None = None
    max_backlog: int = 32
    degrade_after: int = 4
    fault_plan: FaultPlan | None = None
    mp_context: str | None = None

    def __post_init__(self) -> None:
        if self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if self.block_memo < 0:
            raise ValueError("block_memo must be >= 0 (0 = full launch)")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if self.workers > 0:
            # Fail fast on bad pool parameters, before a socket binds.
            self.supervisor_config()

    def supervisor_config(self) -> SupervisorConfig:
        """The worker-pool view of this config (``workers > 0`` only)."""
        kwargs: dict = {}
        if self.mp_context is not None:
            kwargs["mp_context"] = self.mp_context
        return SupervisorConfig(
            workers=self.workers,
            retries=self.worker_retries,
            hang_timeout=self.hang_timeout,
            max_backlog=self.max_backlog,
            degrade_after=self.degrade_after,
            block_memo=self.block_memo,
            cache_dir=self.cache_dir,
            fault_plan=self.fault_plan,
            **kwargs,
        )


@dataclass
class ServeCounters:
    """Request-level metrics (reported by ``stats`` and
    ``--metrics-json``; the serve analogue of ``SimCounters``)."""

    requests_total: int = 0
    simulate_requests: int = 0
    tbpoint_requests: int = 0
    stats_requests: int = 0
    ping_requests: int = 0
    errors: int = 0
    #: Duplicate in-flight requests answered by an existing simulation.
    coalesced_hits: int = 0
    #: Requests answered from the serve journal (``journal=True`` only).
    journal_hits: int = 0
    sims_run: int = 0
    tbpoint_runs: int = 0
    #: Warm = an idle engine with the exact key was reused; cold = a
    #: new ``GPUSimulator`` had to be built.
    engine_warm_acquisitions: int = 0
    engine_cold_acquisitions: int = 0
    kernels_built: int = 0
    kernel_warm_hits: int = 0
    #: Functional-profile sourcing for tbpoint requests.
    profile_memory_hits: int = 0
    profile_disk_hits: int = 0
    profile_computed: int = 0
    #: Block re-syntheses observed across all served simulations (the
    #: resident traces' enlarged windows should pin this at ~0).
    block_regenerations: int = 0
    deadline_misses: int = 0
    draining_rejections: int = 0
    max_queue_depth: int = 0
    #: Supervision (PR 9): requests refused with ``overloaded`` because
    #: the worker backlog was full.
    shed_requests: int = 0
    #: Requests computed in-process because the worker pool was
    #: degraded (repeated respawns) at submit or mid-flight.
    degraded_fallbacks: int = 0
    #: Requests computed in-process after exhausting worker retries.
    worker_exhausted_fallbacks: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class Server:
    """One ``repro serve`` daemon.  See the module docstring."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.counters = ServeCounters()
        # Warm state for the in-process path (and degraded fallback);
        # each worker process owns its own JobRunner.
        self._runner = JobRunner(
            block_memo=self.config.block_memo,
            cache_dir=self.config.cache_dir,
        )
        self._supervisor: WorkerSupervisor | None = None
        # Idempotent replay (PR 4 journal machinery) ------------------
        self._journal: SweepJournal | None = None
        self._journal_results: dict[str, dict] = {}
        if self.config.journal:
            root = (
                Path(self.config.cache_dir) / "journals"
                if self.config.cache_dir else default_journal_dir()
            )
            self._journal = SweepJournal.for_sweep(
                "serve", ("results", RESULTS_VERSION), root
            )
            loaded = self._journal.load()
            self._journal_results = {
                k: v for k, v in loaded.items() if isinstance(v, dict)
            }
        # Admission / lifecycle ---------------------------------------
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue_waits: deque = deque(maxlen=self.config.queue_latency_window)
        self._queued = 0
        self._draining = False
        self._pending: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: dict[asyncio.StreamWriter, asyncio.Lock] = {}
        self._server: asyncio.base_events.Server | None = None
        self._sem: asyncio.Semaphore | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop: asyncio.Event | None = None
        self._signals_installed: list[int] = []
        self._t0 = time.monotonic()  # uptime metric  # lint: disable=DET001

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def socket_path(self) -> str | None:
        if self.config.host is not None:
            return None
        if self.config.socket_path:
            return str(self.config.socket_path)
        return default_socket_path(self.config.cache_dir)

    @property
    def address(self) -> tuple[str, int] | None:
        """Bound (host, port) when serving TCP (after :meth:`start`)."""
        if self.config.host is None or self._server is None:
            return None
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stop = asyncio.Event()
        self._sem = asyncio.Semaphore(self.config.max_concurrency)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        if self.config.workers > 0:
            self._supervisor = WorkerSupervisor(self.config.supervisor_config())
            self._supervisor.start()
        self._install_signal_handlers()
        if self.config.host is not None:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port
            )
        else:
            path = Path(self.socket_path)
            # startup, before any connection is accepted: nothing is
            # waiting on the loop yet, so inline path ops are harmless
            path.parent.mkdir(parents=True, exist_ok=True)  # lint: disable=ASYNC001
            if path.exists():
                # stale socket from a previous run  # lint: disable=ASYNC001
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=str(path)
            )

    def _install_signal_handlers(self) -> None:
        """SIGTERM (container/systemd stop) and SIGINT both trigger the
        graceful drain, so accepted requests are answered and
        ``--metrics-json`` flushed.  Best-effort: a loop running off
        the main thread (``ServerThread``) cannot own signals — there
        the test harness calls :meth:`request_stop` directly."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                continue
            self._signals_installed.append(sig)

    def request_stop(self) -> None:
        """Begin graceful shutdown (idempotent, loop-thread only)."""
        self._draining = True
        if self._stop is not None:
            self._stop.set()

    async def serve_until_stopped(self) -> None:
        """Run until a ``shutdown`` request (or :meth:`request_stop`),
        then drain: stop accepting, answer everything already accepted,
        flush metrics, close."""
        assert self._server is not None and self._stop is not None
        try:
            await self._stop.wait()
        finally:
            await self._drain_and_close()

    async def run(self) -> None:
        """Start, serve, drain — the CLI entry point."""
        await self.start()
        await self.serve_until_stopped()

    async def _drain_and_close(self) -> None:
        self._draining = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # Answer every accepted request (tasks may spawn compute tasks,
        # so loop until the pending set is truly empty).
        while True:
            pending = [t for t in tuple(self._pending) if not t.done()]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._supervisor is not None:
            # Workers are idle by now (pending drained above); stopping
            # joins processes, so keep it off the event loop.
            await asyncio.to_thread(self._supervisor.stop)
        loop = asyncio.get_running_loop()
        for sig in self._signals_installed:
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        self._signals_installed.clear()
        # mkdir + write_text; idle connections are still being served
        # below, so even the shutdown flush stays off the loop.
        await asyncio.to_thread(self._write_metrics)
        # Hang up on idle connections and reap their handler tasks so
        # nothing is left for loop teardown to cancel noisily.
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        if self.config.host is None:
            try:
                # last statement of the drain: every request answered,
                # every connection closed — nothing left to stall
                Path(self.socket_path).unlink()  # lint: disable=ASYNC001
            except OSError:
                pass

    def _write_metrics(self) -> None:
        if not self.config.metrics_json:
            return
        try:
            path = Path(self.config.metrics_json)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(self.stats_payload(), indent=2) + "\n")
        except OSError:
            pass  # metrics are best-effort, never fatal on the way out

    # ------------------------------------------------------------------
    # Connections and dispatch
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
            me.add_done_callback(self._conn_tasks.discard)
        self._writers[writer] = asyncio.Lock()
        conn_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    msg = await read_message(reader)
                except (ProtocolError, ConnectionError, OSError):
                    break
                if msg is None:
                    break
                task = asyncio.create_task(self._handle_message(msg, writer))
                for registry in (self._pending, conn_tasks):
                    registry.add(task)
                    task.add_done_callback(registry.discard)
        finally:
            # Let this connection's in-flight responses go out before
            # the writer closes under them.
            while True:
                open_tasks = [t for t in tuple(conn_tasks) if not t.done()]
                if not open_tasks:
                    break
                await asyncio.gather(*open_tasks, return_exceptions=True)
            self._writers.pop(writer, None)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        lock = self._writers.get(writer)
        if lock is None:
            return  # connection already torn down
        try:
            async with lock:
                await write_message(writer, obj)
        except (ConnectionError, RuntimeError, OSError):
            pass  # peer vanished; its response is simply dropped

    async def _handle_message(
        self, msg: dict, writer: asyncio.StreamWriter
    ) -> None:
        rid = msg.get("id")
        self.counters.requests_total += 1
        try:
            kind = msg.get("kind")
            if kind == "ping":
                self.counters.ping_requests += 1
                result: dict = {
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "draining": self._draining,
                }
            elif kind == "stats":
                self.counters.stats_requests += 1
                result = self.stats_payload()
            elif kind == "shutdown":
                result = {"draining": True, "inflight": len(self._inflight)}
                self.request_stop()
            else:
                result = await self._handle_compute(
                    str(kind), msg.get("params") or {}
                )
            response = {"id": rid, "ok": True, "result": result}
        except RequestError as exc:
            self.counters.errors += 1
            response = {"id": rid, "ok": False, "error": str(exc)}
            # Additive, machine-readable error classification (PR 9):
            # same protocol version, scripted clients can react to
            # overloaded/draining/deadline without parsing prose.
            if exc.kind is not None:
                response["error_kind"] = exc.kind
            if exc.retry_after is not None:
                response["retry_after"] = exc.retry_after
        except Exception as exc:  # defensive: one bad request != a dead server
            self.counters.errors += 1
            response = {"id": rid, "ok": False, "error": f"internal error: {exc!r}"}
        await self._send(writer, response)

    # ------------------------------------------------------------------
    # Compute requests: coalescing, admission, deadlines
    # ------------------------------------------------------------------
    async def _handle_compute(self, kind: str, params: dict) -> dict:
        if kind == "simulate":
            self.counters.simulate_requests += 1
        elif kind == "tbpoint":
            self.counters.tbpoint_requests += 1
        if self._draining:
            self.counters.draining_rejections += 1
            raise RequestError(
                "server draining; request rejected", kind="draining"
            )
        norm = normalize_request(kind, params)
        key = request_key(norm)
        timeout = params.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError) as exc:
                raise RequestError(f"malformed timeout: {exc}") from exc

        stored = self._journal_results.get(key)
        if stored is not None:
            self.counters.journal_hits += 1
            return stored

        fut = self._inflight.get(key)
        if fut is None:
            fut = asyncio.get_running_loop().create_future()
            self._inflight[key] = fut
            task = asyncio.create_task(self._compute(norm, key, fut))
            self._pending.add(task)
            task.add_done_callback(self._pending.discard)
        else:
            self.counters.coalesced_hits += 1

        try:
            if timeout is not None:
                outcome = await asyncio.wait_for(asyncio.shield(fut), timeout)
            else:
                outcome = await fut
        except asyncio.TimeoutError:
            self.counters.deadline_misses += 1
            raise RequestError(
                f"deadline exceeded after {timeout:g}s in queue "
                "(the simulation still completes and warms the server)",
                kind="deadline",
            ) from None
        status, value = outcome
        if status == "ok":
            return value
        raise value  # a RequestError (carries kind/retry_after)

    async def _compute(self, norm: dict, key: str, fut: asyncio.Future) -> None:
        """Owner task for one content key: run the job on the worker
        pool (or the in-process thread path), publish ``("ok",
        payload)`` / ``("error", RequestError)`` to every waiter.  Runs
        to completion even if every requester's deadline lapsed — the
        result warms the journal for the next asker."""
        try:
            if self._supervisor is not None:
                payload, meta = await self._compute_in_worker(norm)
            else:
                payload, meta = await self._compute_in_thread(norm)
            self._apply_meta(meta)
            if self._journal is not None:
                # The journal fsyncs every line; keep it off the loop.
                await asyncio.to_thread(self._journal.record, key, payload)
                self._journal_results[key] = payload
            outcome = ("ok", payload)
        except RequestError as exc:
            outcome = ("error", exc)
        except Exception as exc:
            outcome = ("error", RequestError(f"internal error: {exc!r}"))
        finally:
            self._inflight.pop(key, None)
        if not fut.done():
            fut.set_result(outcome)

    async def _compute_in_worker(self, norm: dict) -> tuple[dict, JobMeta]:
        """Run one job on the supervised pool.  Admission is the pool's
        bounded backlog (shed past it — never unbounded queueing); a
        degraded pool or an exhausted retry budget falls back to the
        in-process path so the request is still answered.  Injected
        faults only ever fire inside workers (the plan's parent-PID
        guard), so the fallback attempt is always clean."""
        assert self._supervisor is not None
        try:
            wfut = self._supervisor.submit(norm)
        except Overloaded as exc:
            self.counters.shed_requests += 1
            raise RequestError(
                str(exc), kind="overloaded", retry_after=exc.retry_after
            ) from None
        except WorkersUnavailable:
            self.counters.degraded_fallbacks += 1
            return await self._compute_in_thread(norm)
        try:
            payload, meta_dict = await asyncio.wrap_future(wfut)
        except RequestError:
            raise  # the request's own fault, same on any path
        except WorkersUnavailable:
            self.counters.degraded_fallbacks += 1
            return await self._compute_in_thread(norm)
        except WorkerJobFailed:
            self.counters.worker_exhausted_fallbacks += 1
            return await self._compute_in_thread(norm)
        return payload, JobMeta(**meta_dict)

    async def _compute_in_thread(self, norm: dict) -> tuple[dict, JobMeta]:
        """The PR 8 in-process path: admit under the concurrency
        semaphore, run on the daemon's thread pool."""
        assert self._sem is not None
        loop = asyncio.get_running_loop()
        t0 = time.monotonic()  # queue-latency metric  # lint: disable=DET001
        self._queued += 1
        self.counters.max_queue_depth = max(
            self.counters.max_queue_depth, self._queued
        )
        admitted = False
        try:
            async with self._sem:
                self._queued -= 1
                admitted = True
                wait = time.monotonic() - t0  # queue-latency metric  # lint: disable=DET001
                self._queue_waits.append(wait)
                return await loop.run_in_executor(
                    self._executor, self._runner.run, norm
                )
        finally:
            if not admitted:
                self._queued -= 1

    def _apply_meta(self, meta: JobMeta) -> None:
        c = self.counters
        if meta.kind == "simulate":
            c.sims_run += 1
        else:
            c.tbpoint_runs += 1
        if meta.engine_warm:
            c.engine_warm_acquisitions += 1
        else:
            c.engine_cold_acquisitions += 1
        if meta.kernel_warm:
            c.kernel_warm_hits += 1
        else:
            c.kernels_built += 1
        c.block_regenerations += meta.block_regenerations
        if meta.profile_source == "memory":
            c.profile_memory_hits += 1
        elif meta.profile_source == "disk":
            c.profile_disk_hits += 1
        elif meta.profile_source == "computed":
            c.profile_computed += 1

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        waits = sorted(self._queue_waits)
        queue: dict = {
            "depth": self._queued,
            "samples": len(waits),
        }
        if waits:
            queue.update(
                p50_ms=percentile(waits, 0.50) * 1e3,
                p90_ms=percentile(waits, 0.90) * 1e3,
                p99_ms=percentile(waits, 0.99) * 1e3,
                max_ms=waits[-1] * 1e3,
            )
        payload = {
            "protocol": PROTOCOL_VERSION,
            "results_version": RESULTS_VERSION,
            "pid": os.getpid(),
            "uptime_s": time.monotonic() - self._t0,  # uptime metric  # lint: disable=DET001
            "draining": self._draining,
            "max_concurrency": self.config.max_concurrency,
            "block_memo": self.config.block_memo,
            "journal": self._journal is not None,
            "journal_entries": len(self._journal_results),
            "counters": self.counters.as_dict(),
            "queue": queue,
            "inflight": len(self._inflight),
        }
        # In-process warm stores (worker processes keep their own; the
        # keys below describe the daemon's thread-path/fallback runner).
        payload.update(self._runner.stats())
        if self._supervisor is not None:
            payload["workers"] = self._supervisor.snapshot()
        return payload


def run_server(config: ServeConfig | None = None) -> None:
    """Blocking entry point (the ``repro serve`` command body).

    SIGTERM and SIGINT are handled inside the loop (installed by
    :meth:`Server.start`): both trigger the graceful drain, so accepted
    requests are answered and ``--metrics-json`` is flushed before
    exit.  The ``KeyboardInterrupt`` catch is the fallback for
    platforms where signal handlers can't be installed."""
    server = Server(config)
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A server running on a background thread — the harness tests and
    benches use to host a real daemon inside one process.

    >>> handle = ServerThread.start(ServeConfig(socket_path=...))
    >>> ... ServeClient(handle.socket_path) ...
    >>> handle.stop()
    """

    def __init__(self, server: Server):
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @classmethod
    def start(
        cls, config: ServeConfig | None = None, timeout: float = 10.0
    ) -> "ServerThread":
        handle = cls(Server(config))
        thread = threading.Thread(
            target=handle._run, name="repro-serve-loop", daemon=True
        )
        handle._thread = thread
        thread.start()
        if not handle._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if handle._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {handle._startup_error!r}"
            )
        return handle

    def _run(self) -> None:
        async def body() -> None:
            try:
                await self.server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(body())
        except BaseException:
            self._ready.set()

    @property
    def socket_path(self) -> str | None:
        return self.server.socket_path

    @property
    def address(self) -> tuple[str, int] | None:
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        """Request a graceful drain and join the loop thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closing
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


__all__ = [
    "ServeConfig",
    "ServeCounters",
    "Server",
    "ServerThread",
    "default_socket_path",
    "run_server",
]
