"""Blocking client for the simulation service (``repro request``).

:class:`ServeClient` speaks the length-prefixed JSON protocol over a
unix or TCP socket.  Calls are synchronous request/response; the client
tags each request with a monotonically increasing ``id`` and matches
responses by tag, so a single connection can also be driven in
pipelined mode (:meth:`submit` then :meth:`drain`) — the pattern the
coalescing tests and the sustained-throughput bench use.

The client keeps no local caching — warmth lives in the server; a
client that silently cached would undermine the bit-identity story the
serve tests enforce.  It does, however, survive one transport failure
per call (PR 9): requests are idempotent under the server's content
keys (duplicates coalesce in flight and replay from the journal), so
when the connection drops mid-request :meth:`call` reconnects and
resends exactly once, counting each recovery in :attr:`reconnects`.
Pipelined use (:meth:`submit`/:meth:`drain`) never auto-retries — a
drop there loses the whole in-flight window, which the caller must
replay itself.
"""

from __future__ import annotations

import socket
import time

from repro.serve.protocol import ProtocolError, recv_message, send_message


class ServeError(RuntimeError):
    """The server answered ``ok=false`` (the request's fault) or the
    conversation broke (connection/protocol trouble).

    ``kind`` / ``retry_after`` mirror the response's machine-readable
    ``error_kind`` / ``retry_after`` fields when the server sent them
    (e.g. kind ``"overloaded"`` with a back-off hint in seconds).
    """

    def __init__(
        self,
        message: str,
        kind: str | None = None,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.retry_after = retry_after


class ServeConnectionError(ServeError, ConnectionError):
    """The transport failed before a response arrived (send error,
    receive error, or the server hung up mid-conversation) — the one
    failure class :meth:`ServeClient.call` retries after reconnecting."""


class ServeClient:
    """One connection to a running simulation server.

    >>> with ServeClient(path) as client:
    ...     payload = client.simulate("hotspot", scale=0.125)
    ...     stats = client.stats()
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        connect_timeout: float = 10.0,
        retry_connect: bool = True,
    ):
        if (socket_path is None) == (host is None):
            raise ValueError("pass exactly one of socket_path or (host, port)")
        if host is not None and port is None:
            raise ValueError("TCP connections need an explicit port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        #: Reconnect + resend once per :meth:`call` on transport failure.
        self.retry_connect = retry_connect
        #: Transport failures recovered by reconnecting (tests read this).
        self.reconnects = 0
        self._sock: socket.socket | None = None
        self._next_id = 0
        #: Responses received while waiting for a different id (pipelined
        #: peers may answer out of order).
        self._stash: dict[object, dict] = {}

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.connect_timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            sock.settimeout(None)  # requests block until answered
            self._sock = sock
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pipelined primitives
    # ------------------------------------------------------------------
    def submit(self, kind: str, params: dict | None = None) -> int:
        """Send one request without waiting; returns its id (for
        :meth:`drain`)."""
        rid = self._next_id
        self._next_id += 1
        msg = {"id": rid, "kind": kind}
        if params is not None:
            msg["params"] = params
        try:
            send_message(self._connect(), msg)
        except OSError as exc:
            self.close()
            raise ServeConnectionError(f"send failed: {exc}") from exc
        return rid

    def drain(self, rid: int) -> dict:
        """Block until the response for ``rid`` arrives; stashes any
        out-of-order responses for their own ``drain`` calls."""
        if rid in self._stash:
            response = self._stash.pop(rid)
        else:
            sock = self._connect()
            while True:
                try:
                    response = recv_message(sock)
                except ProtocolError as exc:
                    self.close()
                    raise ServeError(f"receive failed: {exc}") from exc
                except OSError as exc:
                    self.close()
                    raise ServeConnectionError(f"receive failed: {exc}") from exc
                if response is None:
                    self.close()
                    raise ServeConnectionError(
                        "server closed the connection before answering"
                    )
                if response.get("id") == rid:
                    break
                self._stash[response.get("id")] = response
        if not response.get("ok"):
            raise ServeError(
                str(response.get("error", "unknown server error")),
                kind=response.get("error_kind"),
                retry_after=response.get("retry_after"),
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def call(self, kind: str, params: dict | None = None) -> dict:
        """One synchronous round trip.  On a transport failure
        (:class:`ServeConnectionError`) the client reconnects and
        resends exactly once — safe because compute requests are
        idempotent under the server's content keys."""
        try:
            return self.drain(self.submit(kind, params))
        except ServeConnectionError:
            if not self.retry_connect:
                raise
            self.reconnects += 1
            return self.drain(self.submit(kind, params))

    # ------------------------------------------------------------------
    # Request kinds
    # ------------------------------------------------------------------
    def simulate(self, kernel: str, **params: object) -> dict:
        """Simulate one launch (see ``normalize_request`` for params:
        scale, seed, launch, engine, mem_front_end, l2_shards, timeout)."""
        return self.call("simulate", {"kernel": kernel, **params})

    def tbpoint(self, kernel: str, **params: object) -> dict:
        """Full TBPoint estimate of one kernel."""
        return self.call("tbpoint", {"kernel": kernel, **params})

    def stats(self) -> dict:
        return self.call("stats")

    def ping(self) -> dict:
        return self.call("ping")

    def shutdown(self) -> dict:
        """Ask the server to drain and exit (in-flight work completes)."""
        return self.call("shutdown")


def wait_for_server(
    socket_path: str | None = None,
    host: str | None = None,
    port: int | None = None,
    timeout: float = 15.0,
    interval: float = 0.05,
) -> None:
    """Poll until a server answers ``ping`` (used right after spawning a
    daemon).  Raises :class:`ServeError` on timeout."""
    deadline = time.monotonic() + timeout  # wall-clock poll budget  # lint: disable=DET001
    last: Exception | None = None
    while time.monotonic() < deadline:  # wall-clock poll budget  # lint: disable=DET001
        try:
            with ServeClient(socket_path, host, port) as client:
                client.ping()
            return
        except (ServeError, OSError) as exc:
            last = exc
            time.sleep(interval)
    raise ServeError(f"no server answered within {timeout:g}s: {last!r}")


__all__ = [
    "ServeClient",
    "ServeConnectionError",
    "ServeError",
    "wait_for_server",
]
