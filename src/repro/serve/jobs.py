"""Warm-state job execution shared by every serve compute path.

PR 8 ran every compute request on the daemon's thread pool via a
private ``_run_job`` closure over the :class:`~repro.serve.server.Server`
object.  PR 9 adds a second place the same job must run — long-lived
supervised *worker processes* (:mod:`repro.serve.supervisor`) — so the
warm stores and the request body are factored out here as
:class:`JobRunner`:

* the daemon owns one ``JobRunner`` for its in-process thread path
  (and for degraded mode when the worker pool is down);
* each worker process owns its own ``JobRunner`` — same stores, same
  compute body, no locks contended (a worker runs one job at a time,
  but the locks make the runner safe under the daemon's thread pool).

The bit-identity contract rides on this sharing: whatever path a
request takes — thread, worker, worker-after-crash-retry, degraded
fallback — it executes *this* code against warm stores that are pure
caches, so every eventually-served payload equals
:func:`repro.serve.payloads.direct_payload` for the same request.

Heartbeats: :meth:`JobRunner.run` accepts an optional ``heartbeat``
callback and invokes it at the job's coarse phase boundaries (request
accepted, kernel resident, profile resolved).  Worker processes wire it
to a pipe send so the supervisor sees per-request progress; the thread
path passes nothing.  The callback must be observation-free — it never
influences results (the simulation hot loop itself is one Python call,
so phase boundaries are the finest honest granularity).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

from repro.config import GPUConfig, SamplingConfig
from repro.exec.cache import ProfileCache, kernel_cache_key
from repro.exec.engine import ExecutionConfig
from repro.profiler.functional import KernelProfile, profile_kernel
from repro.serve.payloads import RequestError, result_payload, tbpoint_payload
from repro.sim.gpu import GPUSimulator
from repro.sim.worker import simulator_key
from repro.trace import KernelTrace
from repro.workloads import get_workload


@dataclass
class JobMeta:
    """Per-job observations made where the job ran (executor thread or
    worker process) and applied to the daemon's counters on the event
    loop — counters themselves are only ever mutated there."""

    kind: str
    engine_warm: bool = False
    kernel_warm: bool = False
    block_regenerations: int = 0
    profile_source: str | None = None

    def as_dict(self) -> dict:
        """JSON/pipe-safe form (what a worker sends back to the
        supervisor alongside the payload)."""
        return asdict(self)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list (used
    by both the server's queue-wait report and the supervisor's)."""
    idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
    return samples[idx]


class JobRunner:
    """Warm stores + the compute body for one serve execution domain.

    Stores (each a pure cache keyed exactly like PR 8's in-server
    registries, see DESIGN.md §13):

    * idle engines keyed by :func:`repro.sim.worker.simulator_key`;
    * resident kernel traces per (kernel, scale, seed) with block-memo
      windows enlarged to ``block_memo`` (0 = each launch's full block
      count) and a per-kernel serialization lock (the memo window is
      shared mutable state);
    * functional profiles: in-memory mirror over the persistent
      on-disk :class:`~repro.exec.cache.ProfileCache`.
    """

    def __init__(self, block_memo: int = 0, cache_dir: str | None = None):
        self.block_memo = block_memo
        self._idle_engines: dict[tuple, list[GPUSimulator]] = {}
        self._engines_lock = threading.Lock()
        self._engines_built: list[str] = []
        self._kernels: dict[tuple, KernelTrace] = {}
        self._kernel_locks: dict[tuple, threading.Lock] = {}
        self._kernels_lock = threading.Lock()
        self._profiles: dict[str, KernelProfile] = {}
        self._profiles_lock = threading.Lock()
        self._profile_cache = ProfileCache(cache_dir)

    # ------------------------------------------------------------------
    # Warm-state registries
    # ------------------------------------------------------------------
    def get_kernel(self, norm: dict) -> tuple[KernelTrace, threading.Lock, bool]:
        """The resident kernel trace for (kernel, scale, seed), its
        serialization lock, and whether it was already warm."""
        key = (norm["kernel"], norm["scale"], norm["seed"])
        with self._kernels_lock:
            kernel = self._kernels.get(key)
            if kernel is not None:
                return kernel, self._kernel_locks[key], True
        # Build outside the registry lock: synthesis is pure, and a
        # rare double build just loses the race below.
        kernel = get_workload(norm["kernel"], scale=norm["scale"], seed=norm["seed"])
        for launch in kernel.launches:
            launch.resize_block_memo(self.block_memo or launch.num_blocks)
        with self._kernels_lock:
            existing = self._kernels.get(key)
            if existing is not None:
                return existing, self._kernel_locks[key], True
            self._kernels[key] = kernel
            lock = self._kernel_locks[key] = threading.Lock()
        return kernel, lock, False

    def checkout_engine(self, norm: dict) -> tuple[GPUSimulator, bool]:
        gpu = GPUConfig(l2_shards=norm["l2_shards"])
        key = simulator_key(gpu, norm["engine"], norm["mem_front_end"])
        with self._engines_lock:
            idle = self._idle_engines.get(key)
            if idle:
                return idle.pop(), True
        sim = GPUSimulator(
            gpu, engine=norm["engine"], mem_front_end=norm["mem_front_end"]
        )
        with self._engines_lock:
            self._engines_built.append(
                f"{norm['engine']}/{norm['mem_front_end']}"
                f"/l2_shards={norm['l2_shards']}"
            )
        return sim, False

    def checkin_engine(self, sim: GPUSimulator) -> None:
        key = simulator_key(sim.config, sim.engine, sim.mem_front_end)
        with self._engines_lock:
            self._idle_engines.setdefault(key, []).append(sim)

    def get_profile(self, kernel: KernelTrace) -> tuple[KernelProfile, str]:
        key = kernel_cache_key(kernel)
        with self._profiles_lock:
            prof = self._profiles.get(key)
        if prof is not None:
            return prof, "memory"
        prof = self._profile_cache.get(key, kernel.name)
        source = "disk"
        if prof is None:
            prof = profile_kernel(kernel)
            self._profile_cache.put(key, prof)
            source = "computed"
        with self._profiles_lock:
            self._profiles.setdefault(key, prof)
        return prof, source

    # ------------------------------------------------------------------
    # Introspection (the daemon's stats payload)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._engines_lock:
            idle_engines = sum(len(v) for v in self._idle_engines.values())
            engines_built = list(self._engines_built)
        with self._kernels_lock:
            kernels = sorted(
                f"{name}@{scale:g}/{seed}"
                for name, scale, seed in self._kernels
            )
        with self._profiles_lock:
            profiles = len(self._profiles)
        return {
            "engines_built": engines_built,
            "idle_engines": idle_engines,
            "resident_kernels": kernels,
            "resident_profiles": profiles,
        }

    # ------------------------------------------------------------------
    # The compute body
    # ------------------------------------------------------------------
    def run(self, norm: dict, heartbeat=None) -> tuple[dict, JobMeta]:
        """Execute one normalized compute request: warm state in, pure
        simulation, JSON payload out.  Serializes on the kernel's
        resident lock (shared block-memo window).  ``heartbeat`` (if
        given) is called at phase boundaries — progress signal only,
        never results."""
        if heartbeat is not None:
            heartbeat()
        kernel, kernel_lock, kernel_warm = self.get_kernel(norm)
        meta = JobMeta(kind=norm["kind"], kernel_warm=kernel_warm)
        sim, warm = self.checkout_engine(norm)
        meta.engine_warm = warm
        if heartbeat is not None:
            heartbeat()
        try:
            with kernel_lock:
                if norm["kind"] == "simulate":
                    if not 0 <= norm["launch"] < len(kernel.launches):
                        raise RequestError(
                            f"launch {norm['launch']} out of range: "
                            f"{norm['kernel']} has {len(kernel.launches)} "
                            f"launches at scale {norm['scale']:g}"
                        )
                    launch = kernel.launches[norm["launch"]]
                    regen0 = launch.regenerations
                    result = sim.run_launch(launch)
                    meta.block_regenerations = launch.regenerations - regen0
                    return result_payload(result), meta
                profile, source = self.get_profile(kernel)
                meta.profile_source = source
                if heartbeat is not None:
                    heartbeat()
                regen0 = sum(l.regenerations for l in kernel.launches)
                from repro.core.pipeline import run_tbpoint

                tbp = run_tbpoint(
                    kernel,
                    sim.config,
                    SamplingConfig(),
                    profile=profile,
                    simulator=sim,
                    exec_config=ExecutionConfig(jobs=1, use_cache=False),
                )
                meta.block_regenerations = (
                    sum(l.regenerations for l in kernel.launches) - regen0
                )
                return tbpoint_payload(tbp), meta
        finally:
            self.checkin_engine(sim)


__all__ = ["JobMeta", "JobRunner", "percentile"]
