"""Request normalization, content keys, and JSON result payloads.

This module is the *semantics* of the simulation service, kept free of
any socket or asyncio machinery so the bit-identity oracle is a plain
function call:

* :func:`normalize_request` canonicalizes a raw request-parameter dict
  (fill defaults, coerce types, validate against the registries) into
  the normal form both the server and the oracle consume;
* :func:`request_key` derives the request's *content key* from that
  normal form via :func:`repro.exec.journal.sweep_key` — the same
  content-addressing machinery the sweep checkpoint journal uses, so
  served results are idempotent under exactly the keying discipline
  PR 4 established (duplicate in-flight requests coalesce on it, and
  the optional serve journal replays on it across restarts);
* :func:`result_payload` / :func:`tbpoint_payload` render results as
  JSON-native dicts (ints, floats, lists) — what crosses the wire is
  exactly what the oracle compares, no pickles;
* :func:`direct_payload` computes the payload for a request *from
  scratch in a fresh simulator* — a fresh ``repro run`` of the same
  request.  Every served estimate must equal it bit-for-bit; the serve
  test suite and ``benchmarks/bench_serve.py`` assert exactly that.

Why bit-identity holds: workload synthesis is deterministic in
``(kernel, scale, seed)``; ``run_launch`` resets the memory hierarchy
per launch, so timing never depends on simulation order or on how warm
an engine is; the block-memo window and trace interning are pure
caches.  A warm served result and a cold direct run are therefore the
same pure function evaluated twice.
"""

from __future__ import annotations

from repro.config import GPUConfig, SamplingConfig
from repro.exec.engine import ExecutionConfig
from repro.exec.journal import sweep_key
from repro.sim.gpu import GPUSimulator, LaunchResult
from repro.sim.memory import MEMORY_FRONT_ENDS
from repro.workloads import ALL_KERNELS, get_workload

#: Version of the served-payload schema; salts request content keys and
#: the serve journal identity so schema changes can never replay stale
#: payloads recorded by an older server.
RESULTS_VERSION = 1

#: Request kinds that run a simulation (and therefore coalesce/journal).
COMPUTE_KINDS = ("simulate", "tbpoint")


class RequestError(ValueError):
    """A malformed or unsatisfiable request (client's fault, reported
    in the error response; never tears down the server).

    ``kind`` optionally classifies the error machine-readably so
    scripted clients can react without parsing prose: the server sets
    ``"overloaded"`` (load shed; ``retry_after`` carries a back-off
    hint in seconds), ``"draining"`` (shutdown in progress) and
    ``"deadline"`` (queued past the request's own timeout).  Both
    fields ride on the error response as ``error_kind`` /
    ``retry_after`` next to the human-readable ``error`` string.
    """

    def __init__(
        self,
        message: str,
        kind: str | None = None,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.kind = kind
        self.retry_after = retry_after


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def normalize_request(kind: str, params: dict) -> dict:
    """Canonical normal form of one compute request.

    Fills defaults, coerces numeric types (JSON clients may send ``1``
    for ``1.0`` and vice versa) and validates names against the kernel,
    engine and memory-front-end registries.  Two requests that mean the
    same simulation normalize identically — which is what makes
    :func:`request_key` a true content key.
    """
    _require(kind in COMPUTE_KINDS, f"unknown compute kind {kind!r}")
    _require(isinstance(params, dict), "params must be an object")
    known = {"kernel", "scale", "seed", "launch", "engine",
             "mem_front_end", "l2_shards", "timeout"}
    unknown = set(params) - known
    _require(not unknown, f"unknown request parameters: {sorted(unknown)}")

    kernel = params.get("kernel")
    _require(isinstance(kernel, str) and kernel in ALL_KERNELS,
             f"unknown kernel {kernel!r}; known: {list(ALL_KERNELS)}")
    try:
        scale = float(params.get("scale", 0.125))
        seed = int(params.get("seed", 2014))
        launch = int(params.get("launch", 0))
        l2_shards = int(params.get("l2_shards", 1))
    except (TypeError, ValueError) as exc:
        raise RequestError(f"malformed numeric parameter: {exc}") from exc
    _require(0 < scale <= 1, "scale must be in (0, 1]")
    _require(launch >= 0, "launch must be >= 0")
    engine = params.get("engine", "compact")
    _require(engine in GPUSimulator.ENGINES,
             f"unknown engine {engine!r}; choose from {GPUSimulator.ENGINES}")
    mem_front_end = params.get("mem_front_end", "fast")
    _require(mem_front_end in MEMORY_FRONT_ENDS,
             f"unknown mem_front_end {mem_front_end!r}; "
             f"choose from {tuple(MEMORY_FRONT_ENDS)}")
    try:
        GPUConfig(l2_shards=l2_shards)
    except ValueError as exc:
        raise RequestError(str(exc)) from exc
    norm = {
        "kind": kind,
        "kernel": kernel,
        "scale": scale,
        "seed": seed,
        "engine": engine,
        "mem_front_end": mem_front_end,
        "l2_shards": l2_shards,
    }
    if kind == "simulate":
        norm["launch"] = launch
    elif "launch" in params:
        raise RequestError("tbpoint requests estimate the whole kernel; "
                           "'launch' applies to simulate requests only")
    return norm


def request_key(norm: dict) -> str:
    """Content key of a normalized request — the PR 4 journal keying
    (:func:`~repro.exec.journal.sweep_key`) over every result-shaping
    parameter, salted with the payload schema version."""
    ident = tuple(sorted(norm.items())) + (("results", RESULTS_VERSION),)
    return sweep_key("serve", ident)


def gpu_config(norm: dict) -> GPUConfig:
    return GPUConfig(l2_shards=norm["l2_shards"])


# ----------------------------------------------------------------------
# Result payloads (JSON-native: what crosses the wire IS the oracle's
# comparison object; json round-trips of ints/floats are exact)
# ----------------------------------------------------------------------
def _json_stats(stats: dict) -> dict:
    return {
        k: list(v) if isinstance(v, tuple) else v for k, v in stats.items()
    }


def result_payload(result: LaunchResult) -> dict:
    """JSON-native summary of one launch simulation."""
    counters = result.counters
    return {
        "launch_id": int(result.launch_id),
        "issued_warp_insts": int(result.issued_warp_insts),
        "wall_cycles": int(result.wall_cycles),
        "skipped_warp_insts": int(result.skipped_warp_insts),
        "machine_ipc": float(result.machine_ipc),
        "per_sm_issued": [int(v) for v in result.per_sm_issued],
        "per_sm_busy_cycles": [int(v) for v in result.per_sm_busy_cycles],
        "mem_stats": _json_stats(result.mem_stats),
        "block_regenerations": (
            int(counters.block_regenerations) if counters is not None else None
        ),
    }


def tbpoint_payload(result) -> dict:
    """JSON-native summary of one TBPoint kernel estimate
    (:class:`~repro.core.pipeline.TBPointResult`)."""
    return {
        "kernel": result.kernel_name,
        "overall_ipc": float(result.overall_ipc),
        "sample_size": float(result.sample_size),
        "num_launches": len(result.estimate.launches),
        "simulated_launches": sorted(int(k) for k in result.rep_results),
        "inter_skipped_insts": int(result.inter_skipped_insts),
        "intra_skipped_insts": int(result.intra_skipped_insts),
    }


# ----------------------------------------------------------------------
# The oracle: a fresh direct run of the same request
# ----------------------------------------------------------------------
def direct_payload(norm: dict) -> dict:
    """Compute the payload for a normalized request from scratch — a
    fresh workload build, a fresh (cold) simulator, no caches.  This is
    what ``repro run``/``repro simulate`` would produce for the same
    request; every served payload must equal it exactly.

    ``block_regenerations`` is the one field the oracle *recomputes
    against its own default memo window* — it is observability of the
    cache, not of the simulated machine, so the serve tests compare it
    separately (the daemon's enlarged window must drive it to zero, not
    match the cold run's thrash).
    """
    kernel = get_workload(norm["kernel"], scale=norm["scale"], seed=norm["seed"])
    gpu = gpu_config(norm)
    simulator = GPUSimulator(
        gpu, engine=norm["engine"], mem_front_end=norm["mem_front_end"]
    )
    if norm["kind"] == "simulate":
        _require(
            norm["launch"] < len(kernel.launches),
            f"launch {norm['launch']} out of range: {norm['kernel']} has "
            f"{len(kernel.launches)} launches at scale {norm['scale']:g}",
        )
        result = simulator.run_launch(kernel.launches[norm["launch"]])
        return result_payload(result)
    from repro.core.pipeline import run_tbpoint

    tbp = run_tbpoint(
        kernel,
        gpu,
        SamplingConfig(),
        simulator=simulator,
        exec_config=ExecutionConfig(jobs=1, use_cache=False),
    )
    return tbpoint_payload(tbp)


def payloads_equal(served: dict, direct: dict) -> bool:
    """The bit-identity predicate: every field equal except
    ``block_regenerations`` (cache observability, see
    :func:`direct_payload`)."""
    a = {k: v for k, v in served.items() if k != "block_regenerations"}
    b = {k: v for k, v in direct.items() if k != "block_regenerations"}
    return a == b


__all__ = [
    "COMPUTE_KINDS",
    "RESULTS_VERSION",
    "RequestError",
    "direct_payload",
    "gpu_config",
    "normalize_request",
    "payloads_equal",
    "request_key",
    "result_payload",
    "tbpoint_payload",
]
