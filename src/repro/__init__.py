"""TBPoint: profiling-based sampling for GPGPU kernel simulation.

A full reproduction of *TBPoint: Reducing Simulation Time for
Large-Scale GPGPU Kernels* (Huang, Nai, Kim, Lee — IPDPS 2014),
including every substrate the paper depends on: synthetic GPGPU
workloads (Table VI), a functional profiler (the GPUOcelot role), a
cycle-approximate multi-SM timing simulator (the Macsim role), the
clustering machinery, the Markov-chain/Monte-Carlo model of Section
IV-A, and the Random / Ideal-SimPoint baselines.

Quickstart::

    from repro import get_workload, run_tbpoint
    from repro.baselines import run_full

    kernel = get_workload("hotspot", scale=0.5)
    full = run_full(kernel)
    tbp = run_tbpoint(kernel)
    err = abs(tbp.overall_ipc - full.overall_ipc) / full.overall_ipc
    print(f"error {err:.2%} at sample size {tbp.sample_size:.2%}")
"""

from repro.config import (
    DEFAULT_GPU,
    DEFAULT_SAMPLING,
    ExperimentConfig,
    GPUConfig,
    SamplingConfig,
)
from repro.core import run_tbpoint, TBPointResult
from repro.exec import ExecutionConfig, ProfileCache
from repro.baselines import (
    estimate_random,
    estimate_simpoint,
    estimate_systematic,
    run_full,
)
from repro.profiler import profile_kernel, profile_launch
from repro.sim import GPUSimulator
from repro.workloads import ALL_KERNELS, TABLE_VI, get_workload

__version__ = "1.0.0"

__all__ = [
    "GPUConfig",
    "SamplingConfig",
    "ExperimentConfig",
    "DEFAULT_GPU",
    "DEFAULT_SAMPLING",
    "run_tbpoint",
    "TBPointResult",
    "ExecutionConfig",
    "ProfileCache",
    "run_full",
    "estimate_random",
    "estimate_simpoint",
    "estimate_systematic",
    "profile_kernel",
    "profile_launch",
    "GPUSimulator",
    "get_workload",
    "ALL_KERNELS",
    "TABLE_VI",
    "__version__",
]
