"""The paper's mathematical model (Section IV-A).

A warp alternates between *runnable* and *stalled* states (Fig. 4): a
runnable warp stalls with probability ``p`` per cycle; a stalled warp
wakes with probability ``1/M``.  An SM with N warps is a Markov chain
over the 2^N joint states (Eq. 3); the SM issues whenever at least one
warp is runnable, so IPC = 1 - P[all stalled].

Lemma 4.1 — the justification for homogeneous-region sampling — states
that when each warp's mean stall latency M is drawn from a Gaussian
(sigma = 0.1 mu / 1.96), more than 95% of Monte-Carlo samples land
within 10% of the mean IPC.  :mod:`repro.model.montecarlo` reproduces
that study (Fig. 5).
"""

from repro.model.markov import (
    analytic_ipc,
    ipc_from_steady_state,
    steady_state,
    transition_matrix,
    warp_runnable_probability,
)
from repro.model.montecarlo import (
    IPCVariation,
    ipc_variation,
    sample_stall_latencies,
)

__all__ = [
    "transition_matrix",
    "steady_state",
    "ipc_from_steady_state",
    "analytic_ipc",
    "warp_runnable_probability",
    "sample_stall_latencies",
    "ipc_variation",
    "IPCVariation",
]
