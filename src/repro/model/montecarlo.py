"""Monte-Carlo study of IPC variation under variable stall latency.

Reproduces Lemma 4.1 / Fig. 5: draw each warp's mean stall latency
M_x from a Gaussian N(mu, sigma^2) with sigma = 0.1 mu / 1.96 (so 95% of
draws fall within +-10% of mu), evaluate the Markov-chain IPC per draw,
and report the distribution of relative IPC deviation from the mean.
The paper's conclusion — the basis for treating a homogeneous region's
IPC as a single number — is that >95% of samples deviate by <10%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.markov import analytic_ipc

#: The paper's Monte-Carlo sample count.
DEFAULT_SAMPLES = 10_000

#: sigma = GAUSS_SPREAD * mu / 1.96 puts 95% of draws within
#: +-GAUSS_SPREAD of mu (the paper uses 10%).
GAUSS_SPREAD = 0.10


def sample_stall_latencies(
    mean_latency: float,
    num_warps: int,
    num_samples: int = DEFAULT_SAMPLES,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw per-warp stall latencies M_x ~ N(mu, (0.1 mu / 1.96)^2),
    shape (num_samples, num_warps), clipped below at 1 cycle."""
    if mean_latency < 1:
        raise ValueError("mean stall latency must be >= 1 cycle")
    if num_warps < 1 or num_samples < 1:
        raise ValueError("num_warps and num_samples must be positive")
    rng = rng or np.random.default_rng(0)
    sigma = GAUSS_SPREAD * mean_latency / 1.96
    draws = rng.normal(mean_latency, sigma, size=(num_samples, num_warps))
    return np.maximum(draws, 1.0)


@dataclass(frozen=True)
class IPCVariation:
    """Result of one Monte-Carlo configuration (one Fig. 5 curve).

    Attributes
    ----------
    stall_probability, mean_latency, num_warps:
        The (p, M, N) configuration, e.g. Fig. 5's "p0.05M100N4".
    ipcs:
        IPC per Monte-Carlo sample.
    """

    stall_probability: float
    mean_latency: float
    num_warps: int
    ipcs: np.ndarray

    @property
    def label(self) -> str:
        """Fig. 5 legend label, e.g. ``p0.05M100N4``."""
        m = self.mean_latency
        m_str = str(int(m)) if float(m).is_integer() else f"{m:g}"
        return f"p{self.stall_probability:g}M{m_str}N{self.num_warps}"

    @property
    def mean_ipc(self) -> float:
        return float(self.ipcs.mean())

    @property
    def relative_deviation(self) -> np.ndarray:
        """|IPC - mean| / mean per sample."""
        mean = self.mean_ipc
        return np.abs(self.ipcs - mean) / mean

    def fraction_within(self, tolerance: float = 0.10) -> float:
        """Fraction of samples whose IPC deviates from the mean by less
        than ``tolerance`` (Lemma 4.1 claims > 0.95 at 0.10)."""
        return float(np.mean(self.relative_deviation < tolerance))

    def deviation_cdf(self, grid: np.ndarray) -> np.ndarray:
        """CDF of the relative deviation evaluated at ``grid`` — the
        curve plotted in Fig. 5."""
        dev = np.sort(self.relative_deviation)
        return np.searchsorted(dev, grid, side="right") / len(dev)


def ipc_variation(
    stall_probability: float,
    mean_latency: float,
    num_warps: int,
    num_samples: int = DEFAULT_SAMPLES,
    rng: np.random.Generator | None = None,
) -> IPCVariation:
    """Run the Monte-Carlo study for one (p, M, N) configuration.

    Each sample fixes per-warp latencies M_x and evaluates the steady-
    state IPC of the Eq. 3 chain (via the factorized closed form, which
    matches the explicit matrix to numerical precision)."""
    ms = sample_stall_latencies(mean_latency, num_warps, num_samples, rng)
    ipcs = analytic_ipc(stall_probability, ms)
    return IPCVariation(
        stall_probability=float(stall_probability),
        mean_latency=float(mean_latency),
        num_warps=int(num_warps),
        ipcs=np.asarray(ipcs, dtype=np.float64),
    )


__all__ = [
    "sample_stall_latencies",
    "ipc_variation",
    "IPCVariation",
    "DEFAULT_SAMPLES",
    "GAUSS_SPREAD",
]
