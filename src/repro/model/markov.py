"""Markov-chain IPC model (Eq. 3 of the paper).

Two implementations of the same model:

* :func:`transition_matrix` + :func:`steady_state` build the literal
  2^N x 2^N chain of Eq. 3 and solve it by power iteration from the
  paper's initial vector V_i = <0, 0, ..., 1> (all warps runnable).
* :func:`analytic_ipc` exploits that Eq. 3 treats warps as independent
  two-state chains, so the joint steady state factorizes:
  P[warp x runnable] = 1 / (1 + p * M_x) and
  IPC = 1 - prod_x (p M_x / (1 + p M_x)).

The exact and analytic forms agree to numerical precision (tested); the
analytic form makes the 10,000-sample Monte-Carlo study of Fig. 5 a
single vectorized expression.
"""

from __future__ import annotations

import numpy as np

#: Largest warp count for which the dense 2^N matrix is built.
MAX_EXACT_WARPS = 12


def _as_latencies(stall_latency: float | np.ndarray, num_warps: int) -> np.ndarray:
    m = np.broadcast_to(
        np.asarray(stall_latency, dtype=np.float64), (num_warps,)
    ).copy()
    if np.any(m < 1.0):
        raise ValueError("stall latencies must be >= 1 cycle")
    return m


def transition_matrix(
    stall_probability: float, stall_latency: float | np.ndarray, num_warps: int
) -> np.ndarray:
    """Build the 2^N x 2^N transition matrix T of Eq. 3.

    State bit x (bit value 1 = runnable, 0 = stalled) is warp x; entry
    S[i, j] is the probability of moving from joint state i to j in one
    cycle, the product over warps of the per-warp factor f of Eq. 3.

    Parameters
    ----------
    stall_probability:
        p — probability a runnable warp stalls this cycle.
    stall_latency:
        M — mean stall cycles; scalar or per-warp array of length
        ``num_warps`` (the Monte-Carlo study draws one M per warp).
    num_warps:
        N <= 12 (the matrix has 4^N entries).
    """
    p = float(stall_probability)
    if not 0.0 <= p <= 1.0:
        raise ValueError("stall probability must be in [0, 1]")
    if not 1 <= num_warps <= MAX_EXACT_WARPS:
        raise ValueError(f"num_warps must be in [1, {MAX_EXACT_WARPS}]")
    m = _as_latencies(stall_latency, num_warps)
    wake = 1.0 / m  # per-warp probability of leaving the stalled state

    size = 1 << num_warps
    bits = (np.arange(size)[:, None] >> np.arange(num_warps)[None, :]) & 1
    bits = bits.astype(bool)  # (size, N), bit x of state i

    # f factors per (from-state, to-state, warp), built per warp to keep
    # temporaries at (size, size) instead of (size, size, N).
    T = np.ones((size, size), dtype=np.float64)
    for x in range(num_warps):
        ai = bits[:, x][:, None]  # from-state bit
        aj = bits[:, x][None, :]  # to-state bit
        changed = ai != aj
        factor = np.where(
            changed,
            np.where(ai, p, wake[x]),
            np.where(ai, 1.0 - p, 1.0 - wake[x]),
        )
        T *= factor
    return T


def steady_state(
    T: np.ndarray, tol: float = 1e-12, max_iter: int = 200_000
) -> np.ndarray:
    """Steady-state distribution V_s = lim V_i T^n (Eq. 3), by power
    iteration from the paper's initial vector <0, ..., 0, 1>."""
    size = len(T)
    v = np.zeros(size, dtype=np.float64)
    v[-1] = 1.0  # all warps runnable
    for _ in range(max_iter):
        nxt = v @ T
        if np.abs(nxt - v).max() < tol:
            return nxt
        v = nxt
    return v


def ipc_from_steady_state(v: np.ndarray) -> float:
    """Eq. 3: IPC = 1.0 x (1 - R_0), where R_0 is the probability of the
    all-stalled state (index 0)."""
    return float(1.0 - v[0])


def warp_runnable_probability(
    stall_probability: float, stall_latency: float | np.ndarray
) -> np.ndarray:
    """Per-warp steady-state probability of being runnable:
    pi_run = (1/M) / (p + 1/M) = 1 / (1 + p M)."""
    p = float(stall_probability)
    m = np.asarray(stall_latency, dtype=np.float64)
    return 1.0 / (1.0 + p * m)


def analytic_ipc(
    stall_probability: float,
    stall_latency: float | np.ndarray,
    num_warps: int | None = None,
) -> float | np.ndarray:
    """Closed-form IPC of the Eq. 3 chain.

    Because Eq. 3's f factors make warps independent chains, the joint
    steady state factorizes and

        IPC = 1 - prod_x P[warp x stalled] = 1 - prod_x (p M_x / (1 + p M_x)).

    ``stall_latency`` may be a scalar (with ``num_warps`` giving N), a
    1-D array of per-warp latencies, or a 2-D array (samples, N) — the
    Monte-Carlo path — in which case an IPC per sample is returned.
    """
    p = float(stall_probability)
    if not 0.0 <= p <= 1.0:
        raise ValueError("stall probability must be in [0, 1]")
    m = np.asarray(stall_latency, dtype=np.float64)
    if m.ndim == 0:
        if num_warps is None:
            raise ValueError("num_warps required for scalar stall latency")
        m = np.full(num_warps, float(m))
    if np.any(m < 1.0):
        raise ValueError("stall latencies must be >= 1 cycle")
    stalled = (p * m) / (1.0 + p * m)
    result = 1.0 - np.prod(stalled, axis=-1)
    return float(result) if np.ndim(result) == 0 else result


__all__ = [
    "transition_matrix",
    "steady_state",
    "ipc_from_steady_state",
    "analytic_ipc",
    "warp_runnable_probability",
    "MAX_EXACT_WARPS",
]
