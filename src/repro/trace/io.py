"""Trace serialization: save/load launches as ``.npz`` archives.

Traces are normally synthesized on demand, but exporting a launch is
useful for offline inspection, for diffing generator versions, and for
feeding external tools.  The format is columnar: every warp's columns
are concatenated in dispatch order with explicit warp/block boundaries,
so loading is pure slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.trace.blocktrace import BlockTrace
from repro.trace.launch import LaunchTrace
from repro.trace.warptrace import WarpTrace

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ArchiveBlockFactory:
    """Block factory over a loaded archive's columnar data.

    Module-level (not a closure) so launches loaded from disk remain
    picklable and can be shipped to worker processes, exactly like
    generated launches built on ``SpecBlockFactory``.
    """

    cols: dict
    warp_start: np.ndarray
    first_warp: np.ndarray

    def __call__(self, tb_id: int) -> BlockTrace:
        warps = []
        for i in range(self.first_warp[tb_id], self.first_warp[tb_id + 1]):
            lo, hi = self.warp_start[i], self.warp_start[i + 1]
            warps.append(
                WarpTrace(
                    self.cols["op"][lo:hi],
                    self.cols["active"][lo:hi],
                    self.cols["mem_req"][lo:hi],
                    self.cols["addr"][lo:hi],
                    self.cols["spread"][lo:hi],
                    self.cols["bb"][lo:hi],
                )
            )
        return BlockTrace(tb_id, warps)


def save_launch(launch: LaunchTrace, path: str | Path) -> None:
    """Write every thread block of ``launch`` to a compressed archive."""
    cols = {name: [] for name in ("op", "active", "mem_req", "addr", "spread", "bb")}
    warp_lengths: list[int] = []
    block_warp_counts: list[int] = []
    for block in launch.iter_blocks():
        block_warp_counts.append(len(block.warps))
        for warp in block.warps:
            warp_lengths.append(len(warp))
            for name in cols:
                cols[name].append(getattr(warp, name))
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        kernel_name=np.str_(launch.kernel_name),
        launch_id=np.int64(launch.launch_id),
        num_blocks=np.int64(launch.num_blocks),
        warps_per_block=np.int64(launch.warps_per_block),
        num_bbs=np.int64(launch.num_bbs),
        warp_lengths=np.asarray(warp_lengths, dtype=np.int64),
        block_warp_counts=np.asarray(block_warp_counts, dtype=np.int64),
        **{name: np.concatenate(arrs) for name, arrs in cols.items()},
    )


def load_launch(path: str | Path) -> LaunchTrace:
    """Load a launch saved by :func:`save_launch`.

    The returned :class:`LaunchTrace` serves blocks by slicing the
    archive's columns; it behaves identically to the generated original
    (the round-trip is exact, see the tests).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        kernel_name = str(data["kernel_name"])
        launch_id = int(data["launch_id"])
        num_blocks = int(data["num_blocks"])
        warps_per_block = int(data["warps_per_block"])
        num_bbs = int(data["num_bbs"])
        warp_lengths = data["warp_lengths"]
        block_warp_counts = data["block_warp_counts"]
        cols = {
            name: data[name]
            for name in ("op", "active", "mem_req", "addr", "spread", "bb")
        }

    if len(block_warp_counts) != num_blocks:
        raise ValueError("corrupt archive: block count mismatch")

    # Precompute slice offsets: warp w of block b occupies
    # cols[...][warp_start[i] : warp_start[i + 1]] where i enumerates
    # warps in dispatch order.
    warp_start = np.concatenate([[0], np.cumsum(warp_lengths)])
    first_warp = np.concatenate([[0], np.cumsum(block_warp_counts)])

    return LaunchTrace(
        kernel_name=kernel_name,
        launch_id=launch_id,
        num_blocks=num_blocks,
        warps_per_block=warps_per_block,
        factory=ArchiveBlockFactory(cols, warp_start, first_warp),
        num_bbs=num_bbs,
    )


__all__ = ["ArchiveBlockFactory", "save_launch", "load_launch"]
