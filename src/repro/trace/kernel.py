"""Kernel trace: an ordered sequence of kernel launches."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.launch import LaunchTrace


@dataclass
class KernelTrace:
    """A GPGPU kernel and all of its launches for one program/input pair.

    ``kind`` records the paper's Fig. 8 classification ("regular" or
    "irregular") as asserted by the workload generator; the empirical
    classifier in :mod:`repro.analysis.kernel_types` should agree with it.
    """

    name: str
    suite: str
    kind: str
    launches: list[LaunchTrace] = field(default_factory=list)
    #: Optional cheap identity for caching: a tuple that deterministically
    #: identifies the trace content without walking it (e.g.
    #: ``("workload", name, scale, seed, generator_version)`` as set by
    #: :func:`repro.workloads.get_workload`).  ``None`` means the trace
    #: has no known provenance and content hashing is required.
    provenance: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("regular", "irregular"):
            raise ValueError("kind must be 'regular' or 'irregular'")
        if not self.launches:
            raise ValueError("a kernel needs at least one launch")
        for i, launch in enumerate(self.launches):
            if launch.launch_id != i:
                raise ValueError("launch IDs must be contiguous from 0")

    @property
    def num_launches(self) -> int:
        return len(self.launches)

    @property
    def num_blocks(self) -> int:
        """Total thread blocks across all launches (Table VI row)."""
        return sum(l.num_blocks for l in self.launches)

    def __repr__(self) -> str:
        return (
            f"KernelTrace({self.name!r}, suite={self.suite!r}, kind={self.kind!r}, "
            f"launches={self.num_launches}, blocks={self.num_blocks})"
        )


__all__ = ["KernelTrace"]
