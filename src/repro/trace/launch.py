"""Kernel-launch trace with lazy, deterministic thread-block synthesis."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

from repro.trace.blocktrace import BlockTrace

#: Default number of recently generated blocks kept alive.  The timing
#: simulator touches blocks roughly in dispatch order, so a small window
#: covering the maximum system occupancy is enough to make regeneration
#: rare *within* one pass; re-walking a launch wider than the window
#: (>256-block launches, or a re-simulation of the same trace) pays the
#: synthesis cost again — which is what :attr:`LaunchTrace.block_memo`
#: and the ``block_regenerations`` counter exist to make visible and,
#: for long-lived processes such as ``repro serve``, eliminate.
_BLOCK_CACHE_SIZE = 256


class LaunchTrace:
    """One kernel launch: ``num_blocks`` thread blocks, dispatched in
    thread-block-ID order by the greedy global scheduler (Section II-A).

    Thread-block traces are synthesized on demand by ``factory(tb_id)``
    and memoized in an LRU window of ``block_memo`` entries (default
    :data:`_BLOCK_CACHE_SIZE`).  The factory must be deterministic:
    calling it twice with the same ID yields identical traces, which is
    what lets the functional profiler and the timing simulator agree
    without storing the trace — and what makes the memo window a pure
    performance knob that can never change results.

    ``regenerations`` counts factory calls for blocks that had already
    been synthesized once and were evicted from the window — the
    re-synthesis thrash a too-small window causes on launches wider
    than it.  :class:`~repro.sim.gpu.SimCounters` snapshots the delta
    per simulated launch.
    """

    def __init__(
        self,
        kernel_name: str,
        launch_id: int,
        num_blocks: int,
        warps_per_block: int,
        factory: Callable[[int], BlockTrace],
        num_bbs: int = 1,
        block_memo: int | None = None,
    ):
        if num_blocks <= 0:
            raise ValueError("launch with no thread blocks")
        if warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        if block_memo is not None and block_memo <= 0:
            raise ValueError("block_memo must be positive (or None)")
        self.kernel_name = kernel_name
        self.launch_id = launch_id
        self.num_blocks = num_blocks
        self.warps_per_block = warps_per_block
        self.num_bbs = num_bbs
        self.block_memo = (
            int(block_memo) if block_memo is not None else _BLOCK_CACHE_SIZE
        )
        self._factory = factory
        self._cache: OrderedDict[int, BlockTrace] = OrderedDict()
        #: Factory calls for blocks generated before but since evicted.
        self.regenerations = 0
        #: Lazily allocated has-been-generated bitmap (1 byte/block).
        self._seen: bytearray | None = None

    def block(self, tb_id: int) -> BlockTrace:
        """Return the trace of thread block ``tb_id`` (0-based)."""
        if not 0 <= tb_id < self.num_blocks:
            raise IndexError(f"tb_id {tb_id} out of range [0, {self.num_blocks})")
        cached = self._cache.get(tb_id)
        if cached is not None:
            self._cache.move_to_end(tb_id)
            return cached
        block = self._factory(tb_id)
        if block.tb_id != tb_id:
            raise ValueError("factory returned a block with the wrong ID")
        seen = self._seen
        if seen is None:
            seen = self._seen = bytearray(self.num_blocks)
        if seen[tb_id]:
            self.regenerations += 1
        else:
            seen[tb_id] = 1
        self._cache[tb_id] = block
        if len(self._cache) > self.block_memo:
            self._cache.popitem(last=False)
        return block

    def resize_block_memo(self, window: int) -> None:
        """Resize the memo window in place (a pure performance knob:
        blocks are deterministic, so results can never depend on it).
        Shrinking evicts least-recently-used entries immediately."""
        if window <= 0:
            raise ValueError("block_memo must be positive")
        self.block_memo = int(window)
        cache = self._cache
        while len(cache) > window:
            cache.popitem(last=False)

    def __getstate__(self) -> dict:
        """Pickle support: the memoization window is dropped (workers
        regenerate blocks on demand) and the regeneration bookkeeping
        restarts, so a launch pickles iff its factory does — true for
        all spec-synthesized workload launches.  ``block_memo`` itself
        survives the round trip."""
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        state["_seen"] = None
        state["regenerations"] = 0
        return state

    def iter_blocks(self) -> Iterator[BlockTrace]:
        """Iterate thread blocks in dispatch (ID) order."""
        for tb_id in range(self.num_blocks):
            yield self.block(tb_id)

    def __len__(self) -> int:
        return self.num_blocks

    def __repr__(self) -> str:
        return (
            f"LaunchTrace({self.kernel_name!r}, launch={self.launch_id}, "
            f"blocks={self.num_blocks}, warps_per_block={self.warps_per_block})"
        )


__all__ = ["LaunchTrace"]
