"""Kernel-launch trace with lazy, deterministic thread-block synthesis."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

from repro.trace.blocktrace import BlockTrace

#: Number of recently generated blocks kept alive.  The timing simulator
#: touches blocks roughly in dispatch order, so a small window covering
#: the maximum system occupancy is enough to make regeneration rare.
_BLOCK_CACHE_SIZE = 256


class LaunchTrace:
    """One kernel launch: ``num_blocks`` thread blocks, dispatched in
    thread-block-ID order by the greedy global scheduler (Section II-A).

    Thread-block traces are synthesized on demand by ``factory(tb_id)``
    and memoized in a small LRU window.  The factory must be
    deterministic: calling it twice with the same ID yields identical
    traces, which is what lets the functional profiler and the timing
    simulator agree without storing the trace.
    """

    def __init__(
        self,
        kernel_name: str,
        launch_id: int,
        num_blocks: int,
        warps_per_block: int,
        factory: Callable[[int], BlockTrace],
        num_bbs: int = 1,
    ):
        if num_blocks <= 0:
            raise ValueError("launch with no thread blocks")
        if warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")
        self.kernel_name = kernel_name
        self.launch_id = launch_id
        self.num_blocks = num_blocks
        self.warps_per_block = warps_per_block
        self.num_bbs = num_bbs
        self._factory = factory
        self._cache: OrderedDict[int, BlockTrace] = OrderedDict()

    def block(self, tb_id: int) -> BlockTrace:
        """Return the trace of thread block ``tb_id`` (0-based)."""
        if not 0 <= tb_id < self.num_blocks:
            raise IndexError(f"tb_id {tb_id} out of range [0, {self.num_blocks})")
        cached = self._cache.get(tb_id)
        if cached is not None:
            self._cache.move_to_end(tb_id)
            return cached
        block = self._factory(tb_id)
        if block.tb_id != tb_id:
            raise ValueError("factory returned a block with the wrong ID")
        self._cache[tb_id] = block
        if len(self._cache) > _BLOCK_CACHE_SIZE:
            self._cache.popitem(last=False)
        return block

    def __getstate__(self) -> dict:
        """Pickle support: the memoization window is dropped (workers
        regenerate blocks on demand), so a launch pickles iff its factory
        does — true for all spec-synthesized workload launches."""
        state = self.__dict__.copy()
        state["_cache"] = OrderedDict()
        return state

    def iter_blocks(self) -> Iterator[BlockTrace]:
        """Iterate thread blocks in dispatch (ID) order."""
        for tb_id in range(self.num_blocks):
            yield self.block(tb_id)

    def __len__(self) -> int:
        return self.num_blocks

    def __repr__(self) -> str:
        return (
            f"LaunchTrace({self.kernel_name!r}, launch={self.launch_id}, "
            f"blocks={self.num_blocks}, warps_per_block={self.warps_per_block})"
        )


__all__ = ["LaunchTrace"]
