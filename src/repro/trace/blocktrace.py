"""Thread-block trace: a set of warps plus cached summary counts."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.warptrace import WarpTrace


@dataclass(frozen=True)
class BlockStats:
    """Per-thread-block summary counters the profiler extracts.

    These are exactly the quantities the paper's profiling step needs:
    thread instructions and warp instructions (Eq. 2 features 1 and 2,
    Eq. 5 denominator ``y``), and global/local memory requests (Eq. 2
    feature 3, Eq. 5 numerator ``x``).
    """

    tb_id: int
    warp_insts: int
    thread_insts: int
    mem_requests: int

    @property
    def stall_probability(self) -> float:
        """Eq. 5's per-block stall probability approximation
        ``x / y`` = memory requests / warp instructions."""
        return self.mem_requests / self.warp_insts


class BlockTrace:
    """One thread block: ``warps_per_block`` warp traces.

    The block is the paper's sampling granularity — thread blocks are
    dispatched, profiled, clustered into epochs, and skipped or simulated
    as indivisible units.
    """

    __slots__ = ("tb_id", "warps", "_stats")

    def __init__(self, tb_id: int, warps: list[WarpTrace]):
        if not warps:
            raise ValueError("a thread block needs at least one warp")
        self.tb_id = tb_id
        self.warps = warps
        self._stats: BlockStats | None = None

    def __len__(self) -> int:
        return len(self.warps)

    @property
    def stats(self) -> BlockStats:
        """Summary counters (computed once, cached)."""
        if self._stats is None:
            self._stats = BlockStats(
                tb_id=self.tb_id,
                warp_insts=sum(w.warp_insts for w in self.warps),
                thread_insts=sum(w.thread_insts for w in self.warps),
                mem_requests=sum(w.mem_requests for w in self.warps),
            )
        return self._stats

    def bb_counts(self, num_bbs: int) -> np.ndarray:
        """Executed warp-instruction counts per basic block, summed over
        the block's warps."""
        total = np.zeros(num_bbs, dtype=np.int64)
        for w in self.warps:
            total += w.bb_counts(num_bbs)
        return total


__all__ = ["BlockTrace", "BlockStats"]
