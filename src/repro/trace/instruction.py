"""Warp-instruction encoding.

Instructions are stored column-wise as small-integer numpy arrays (see
:class:`repro.trace.warptrace.WarpTrace`); this module defines the
operation classes, the per-class scoreboard stall latencies, and helper
predicates.

The latency table plays the role of "instruction latencies are modeled
according to the CUDA manual" in Table V of the paper: the value for an
operation class is the number of cycles after issue before the *same
warp* may issue its next (dependent) instruction.  Memory operations to
global/local space carry no static latency here — their stall time is
produced dynamically by the memory hierarchy (L1/L2/DRAM plus queueing),
which is exactly the variable stall latency ``M`` of the paper's model.
"""

from __future__ import annotations

import numpy as np

#: SIMD width of a warp (threads per warp).
WARP_WIDTH = 32

# Operation classes.  Values are contiguous so STALL_CYCLES can be an array.
OP_ALU = 0  #: integer / single-precision arithmetic
OP_FP = 1  #: double precision / multi-cycle FP
OP_SFU = 2  #: special function unit (transcendental)
OP_BRANCH = 3  #: control flow
OP_SYNC = 4  #: barrier / membar
OP_MEM_SHARED = 5  #: software-managed (shared) memory access
OP_MEM_GLOBAL = 6  #: global memory access (goes through L1/L2/DRAM)
OP_MEM_LOCAL = 7  #: local memory access (goes through L1/L2/DRAM)

NUM_OPS = 8

OP_NAMES = (
    "alu",
    "fp",
    "sfu",
    "branch",
    "sync",
    "mem_shared",
    "mem_global",
    "mem_local",
)

#: Scoreboard stall (cycles until the issuing warp is next ready) per
#: operation class.  Global/local memory entries are placeholders — the
#: timing simulator replaces them with hierarchy-dependent latency.
STALL_CYCLES = np.array(
    [
        8,  # OP_ALU: dependent-issue latency of simple arithmetic
        16,  # OP_FP
        24,  # OP_SFU
        4,  # OP_BRANCH
        4,  # OP_SYNC (barrier cost itself; arrival skew not modelled)
        26,  # OP_MEM_SHARED: bank-conflict-free shared access
        0,  # OP_MEM_GLOBAL: dynamic
        0,  # OP_MEM_LOCAL: dynamic
    ],
    dtype=np.int64,
)

#: Operation classes whose requests traverse the L1/L2/DRAM hierarchy.
#: These are also the classes the paper counts as "memory requests" for
#: the stall probability of Eq. 5 ("global and local memory accesses").
_DRAM_OPS = frozenset({OP_MEM_GLOBAL, OP_MEM_LOCAL})


def is_mem_op(op: int | np.ndarray):
    """True for any memory-space operation (shared, global or local)."""
    return (np.asarray(op) >= OP_MEM_SHARED) if isinstance(op, np.ndarray) else op >= OP_MEM_SHARED


def is_dram_op(op: int | np.ndarray):
    """True for operations that traverse the L1/L2/DRAM hierarchy
    (global and local accesses — the paper's "memory requests")."""
    return (np.asarray(op) >= OP_MEM_GLOBAL) if isinstance(op, np.ndarray) else op >= OP_MEM_GLOBAL


def validate_ops(op: np.ndarray) -> None:
    """Raise ``ValueError`` if ``op`` contains an unknown operation class."""
    if op.size and (op.min() < 0 or op.max() >= NUM_OPS):
        raise ValueError("unknown operation class in trace")
