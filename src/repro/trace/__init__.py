"""Kernel trace representation.

A GPGPU kernel is represented hierarchically, following the CUDA
terminology the paper uses (Section II-A):

* :class:`~repro.trace.kernel.KernelTrace` — a kernel with one or more
  *kernel launches*;
* :class:`~repro.trace.launch.LaunchTrace` — one launch: an ordered
  sequence of *thread blocks*, dispatched greedily by thread-block ID;
* :class:`~repro.trace.blocktrace.BlockTrace` — one thread block: a set of
  *warps*;
* :class:`~repro.trace.warptrace.WarpTrace` — one warp: numpy arrays of
  *warp instructions* (each executing up to 32 *thread instructions*).

Traces are generated lazily and deterministically: a
:class:`LaunchTrace` holds a factory that synthesizes any thread block's
trace on demand from a seed derived from (kernel, launch, block).  The
functional profiler and the timing simulator therefore observe
bit-identical instruction streams without ever materializing a full
multi-gigabyte trace — the moral equivalent of re-readable trace files in
a trace-driven simulator such as Macsim.
"""

from repro.trace.instruction import (
    OP_ALU,
    OP_BRANCH,
    OP_FP,
    OP_MEM_GLOBAL,
    OP_MEM_LOCAL,
    OP_MEM_SHARED,
    OP_NAMES,
    OP_SFU,
    OP_SYNC,
    STALL_CYCLES,
    WARP_WIDTH,
    is_dram_op,
    is_mem_op,
)
from repro.trace.warptrace import WarpTrace
from repro.trace.blocktrace import BlockTrace
from repro.trace.launch import LaunchTrace
from repro.trace.kernel import KernelTrace

__all__ = [
    "OP_ALU",
    "OP_FP",
    "OP_SFU",
    "OP_MEM_GLOBAL",
    "OP_MEM_LOCAL",
    "OP_MEM_SHARED",
    "OP_BRANCH",
    "OP_SYNC",
    "OP_NAMES",
    "STALL_CYCLES",
    "WARP_WIDTH",
    "is_mem_op",
    "is_dram_op",
    "WarpTrace",
    "BlockTrace",
    "LaunchTrace",
    "KernelTrace",
]
