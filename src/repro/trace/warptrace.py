"""Per-warp instruction trace.

A :class:`WarpTrace` stores one warp's dynamic instruction stream as a
structure of arrays — the column-wise layout keeps the hot simulation
loop reading small contiguous integer arrays (see the HPC guide's advice
on cache-friendly access) and makes functional profiling a handful of
vectorized reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.instruction import (
    OP_MEM_GLOBAL,
    WARP_WIDTH,
    is_dram_op,
    validate_ops,
)


@dataclass
class WarpTrace:
    """Dynamic instruction stream of one warp.

    All arrays have the same length ``n`` (the number of warp
    instructions).  For non-memory instructions ``mem_req`` is 0 and
    ``addr``/``spread`` are ignored.

    Attributes
    ----------
    op:
        Operation class per instruction (``uint8``, see
        :mod:`repro.trace.instruction`).
    active:
        Active threads per instruction, 1..32 (``uint8``).  The sum of
        this column is the warp's *thread instruction* count; its length
        is the *warp instruction* count.  The ratio captures control-flow
        divergence (Eq. 2's second feature).
    mem_req:
        Number of memory transactions the instruction issues after
        coalescing, 0 for non-memory ops (``uint8``).  A fully coalesced
        access is 1; a fully divergent one is up to 32 (Eq. 2's third
        feature counts these).
    addr:
        Base byte address of the first transaction (``int64``).
    spread:
        Byte distance between consecutive transactions of one instruction
        (``int64``); transaction ``j`` touches ``addr + j * spread``.
    bb:
        Static basic-block ID per instruction (``uint16``) — the raw
        material for basic-block vectors (Ideal-SimPoint baseline).
    """

    op: np.ndarray
    active: np.ndarray
    mem_req: np.ndarray
    addr: np.ndarray
    spread: np.ndarray
    bb: np.ndarray
    _validate: bool = field(default=True, repr=False)

    def __post_init__(self) -> None:
        self.op = np.ascontiguousarray(self.op, dtype=np.uint8)
        self.active = np.ascontiguousarray(self.active, dtype=np.uint8)
        self.mem_req = np.ascontiguousarray(self.mem_req, dtype=np.uint8)
        self.addr = np.ascontiguousarray(self.addr, dtype=np.int64)
        self.spread = np.ascontiguousarray(self.spread, dtype=np.int64)
        self.bb = np.ascontiguousarray(self.bb, dtype=np.uint16)
        if self._validate:
            self.validate()

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        n = len(self.op)
        for name in ("active", "mem_req", "addr", "spread", "bb"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} length mismatch")
        validate_ops(self.op)
        if n == 0:
            raise ValueError("empty warp trace")
        if self.active.min() < 1 or self.active.max() > WARP_WIDTH:
            raise ValueError("active thread count out of [1, 32]")
        dram = is_dram_op(self.op)
        if np.any(self.mem_req[dram] < 1):
            raise ValueError("DRAM-bound instruction with zero transactions")
        if np.any(self.mem_req[~dram] != 0):
            raise ValueError("non-memory instruction with transactions")
        if np.any(self.mem_req > WARP_WIDTH):
            raise ValueError("more than 32 transactions in one instruction")

    # ------------------------------------------------------------------
    # Profile-level reductions (used by the functional profiler).
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.op)

    @property
    def warp_insts(self) -> int:
        """Number of warp instructions."""
        return len(self.op)

    @property
    def thread_insts(self) -> int:
        """Number of thread instructions (sum of active thread counts)."""
        return int(self.active.sum(dtype=np.int64))

    @property
    def mem_requests(self) -> int:
        """Total memory transactions to global/local space."""
        return int(self.mem_req.sum(dtype=np.int64))

    def bb_counts(self, num_bbs: int) -> np.ndarray:
        """Executed warp-instruction count per basic block (length
        ``num_bbs``)."""
        return np.bincount(self.bb, minlength=num_bbs).astype(np.int64)

    @classmethod
    def from_columns(
        cls,
        op: np.ndarray,
        active: np.ndarray,
        mem_req: np.ndarray,
        addr: np.ndarray,
        spread: np.ndarray,
        bb: np.ndarray,
        validate: bool = True,
    ) -> "WarpTrace":
        """Build a trace from raw columns, optionally skipping validation
        (generators validate once per code template, not per warp)."""
        return cls(op, active, mem_req, addr, spread, bb, _validate=validate)


def concat_warp_traces(traces: list[WarpTrace]) -> WarpTrace:
    """Concatenate several warp traces into one stream (used by tests and
    trace export, not by the simulator)."""
    if not traces:
        raise ValueError("nothing to concatenate")
    return WarpTrace(
        np.concatenate([t.op for t in traces]),
        np.concatenate([t.active for t in traces]),
        np.concatenate([t.mem_req for t in traces]),
        np.concatenate([t.addr for t in traces]),
        np.concatenate([t.spread for t in traces]),
        np.concatenate([t.bb for t in traces]),
    )


__all__ = ["WarpTrace", "concat_warp_traces", "OP_MEM_GLOBAL"]
