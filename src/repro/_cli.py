"""Command-line interface: ``python -m repro <command>``.

Every experiment in the evaluation can be regenerated from the shell:

* ``list`` — the Table VI benchmark inventory;
* ``run KERNEL`` — Full vs Random vs Ideal-SimPoint vs TBPoint on one
  kernel (one Fig. 9/10 row);
* ``headline`` — the full Fig. 9 + Fig. 10 sweep with geomeans;
* ``breakdown`` — Fig. 11's inter/intra skipped-instruction shares;
* ``sensitivity`` — Figs. 12-13 hardware-configuration sweep;
* ``scaling`` — TBPoint error/sample size across workload scales;
* ``model`` — Fig. 5's Markov/Monte-Carlo study;
* ``table1`` — projected simulation times at measured throughput;
* ``simulate KERNEL`` — one timing-simulator launch, with
  ``--mem-stats`` for the memory-hierarchy statistics (L1/L2 hit
  rates, DRAM row-hit rate, mean queue delay);
* ``cache info`` / ``cache clear`` — persistent profile-cache and
  journal-directory status and maintenance;
* ``serve`` / ``request`` — the warm-state simulation service: a
  long-lived daemon that keeps engines, traces and profiles warm
  across requests (DESIGN.md §13), and its one-shot client;
* ``lint`` — static determinism / process-safety / hot-loop /
  oracle-parity checks over the source tree (DESIGN.md §10).

Batch execution applies to every experiment command: ``--jobs N`` fans
work out across N worker processes (0 = all CPUs, the default; results
are bit-identical to ``--jobs 1``), and the one-time functional profiles
are cached on disk across invocations unless ``--no-cache`` is given.
Execution is fault tolerant (DESIGN.md §9): failed or crashed tasks
retry up to ``--retries`` times, ``--task-timeout`` reclaims hung
workers, the sweep commands (``headline``/``sensitivity``/``scaling``)
checkpoint each completed kernel to a journal, and ``--resume`` picks a
killed sweep back up without recomputing journaled work — all without
changing results.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.experiments import (
    SENSITIVITY_CONFIGS,
    run_breakdown,
    run_fig5_model,
    run_fig9_fig10,
    run_kernel_comparison,
    run_sensitivity,
    run_table1,
)
from repro.analysis.report import render_table
from repro.config import ExperimentConfig
from repro.core.estimates import geometric_mean
from repro.exec import ExecutionConfig, ProfileCache, default_cache_dir
from repro.sim.memory import MEMORY_FRONT_ENDS
from repro.workloads import ALL_KERNELS, TABLE_VI


def _experiment(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(scale=args.scale, seed=args.seed)


def _exec_config(
    args: argparse.Namespace, journal: bool = False
) -> ExecutionConfig:
    """Execution knobs shared by every experiment command: ``--jobs 0``
    (the default) uses every CPU; the profile cache is on unless
    ``--no-cache``; failed tasks retry up to ``--retries`` times with
    ``--task-timeout`` guarding against hung workers.  Sweep commands
    (``headline``/``sensitivity``/``scaling``) pass ``journal=True`` so
    completed kernels are checkpointed and ``--resume`` can recover a
    killed sweep."""
    return ExecutionConfig(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        task_timeout=args.task_timeout,
        retries=args.retries,
        journal=journal,
        resume=journal and args.resume,
    )


def _kernels(args: argparse.Namespace) -> tuple[str, ...]:
    if not args.kernels:
        return ALL_KERNELS
    names = tuple(args.kernels)
    unknown = set(names) - set(ALL_KERNELS)
    if unknown:
        raise SystemExit(f"unknown kernels: {sorted(unknown)}")
    return names


def cmd_list(args: argparse.Namespace) -> None:
    rows = [
        (i.name, i.full_name, i.suite, i.kind, i.launches, i.blocks)
        for i in TABLE_VI
    ]
    print(render_table(
        ["name", "benchmark", "suite", "type", "launches", "thread blocks"],
        rows,
        title="Table VI — evaluated benchmarks (paper-scale counts)",
    ))


def _comparison_row(
    name: str,
    experiment: ExperimentConfig,
    exec_config: ExecutionConfig | None = None,
    comparison=None,
):
    c = comparison
    if c is None:
        c = run_kernel_comparison(name, experiment, exec_config=exec_config)
    return c, (
        name,
        c.kind,
        f"{c.full_ipc:.3f}",
        f"{c.random_error:.2%}",
        f"{c.simpoint_error:.2%}",
        f"{c.tbpoint_error:.2%}",
        f"{c.random_sample_size:.2%}",
        f"{c.simpoint_sample_size:.2%}",
        f"{c.tbpoint_sample_size:.2%}",
    )


_COMPARISON_HEADERS = [
    "kernel", "type", "full IPC", "err(rnd)", "err(sp)", "err(tbp)",
    "size(rnd)", "size(sp)", "size(tbp)",
]


def cmd_run(args: argparse.Namespace) -> None:
    _, row = _comparison_row(args.kernel, _experiment(args), _exec_config(args))
    print(render_table(_COMPARISON_HEADERS, [row]))


def cmd_headline(args: argparse.Namespace) -> None:
    experiment = _experiment(args)
    summary = run_fig9_fig10(
        _kernels(args), experiment, exec_config=_exec_config(args, journal=True)
    )
    comparisons, rows = [], []
    for c in summary.comparisons:
        _, row = _comparison_row(c.kernel, experiment, comparison=c)
        comparisons.append(c)
        rows.append(row)
        print(render_table(_COMPARISON_HEADERS, [row]))
    print()
    print(render_table(
        ["technique", "geomean error", "geomean sample"],
        [
            ("random",
             f"{geometric_mean(c.random_error for c in comparisons):.2%}",
             f"{geometric_mean(c.random_sample_size for c in comparisons):.2%}"),
            ("ideal-simpoint",
             f"{geometric_mean(c.simpoint_error for c in comparisons):.2%}",
             f"{geometric_mean(c.simpoint_sample_size for c in comparisons):.2%}"),
            ("tbpoint",
             f"{geometric_mean(c.tbpoint_error for c in comparisons):.2%}",
             f"{geometric_mean(c.tbpoint_sample_size for c in comparisons):.2%}"),
        ],
        title="Figs. 9-10 headline geometric means",
    ))


def cmd_breakdown(args: argparse.Namespace) -> None:
    experiment = _experiment(args)
    names = _kernels(args)
    results = run_breakdown(names, experiment, exec_config=_exec_config(args))
    rows = []
    for name, tbp in zip(names, results):
        inter, intra = tbp.skip_breakdown()
        rows.append((name, f"{inter:.0%}", f"{intra:.0%}",
                     f"{tbp.sample_size:.2%}"))
    print(render_table(
        ["kernel", "inter-launch", "intra-launch", "sample"],
        rows,
        title="Fig. 11 — skipped-instruction breakdown",
    ))


def cmd_sensitivity(args: argparse.Namespace) -> None:
    experiment = _experiment(args)
    points = run_sensitivity(
        _kernels(args),
        experiment=experiment,
        exec_config=_exec_config(args, journal=True),
    )
    configs = [f"W{w}S{s}" for w, s in SENSITIVITY_CONFIGS]
    by_kernel: dict[str, dict] = {}
    for p in points:
        by_kernel.setdefault(p.kernel, {})[p.label] = p
    print(render_table(
        ["kernel", *[f"err {c}" for c in configs],
         *[f"size {c}" for c in configs]],
        [
            (k,
             *[f"{cfgs[c].error:.2%}" for c in configs],
             *[f"{cfgs[c].sample_size:.2%}" for c in configs])
            for k, cfgs in by_kernel.items()
        ],
        title="Figs. 12-13 — hardware sensitivity",
    ))


def cmd_scaling(args: argparse.Namespace) -> None:
    from repro.analysis.scaling import run_scaling

    points = run_scaling(
        args.kernel,
        scales=tuple(args.scales),
        seed=args.seed,
        exec_config=_exec_config(args, journal=True),
    )
    print(render_table(
        ["scale", "blocks", "warp insts", "full IPC", "tbpoint IPC",
         "error", "sample"],
        [
            (f"{p.scale:g}", str(p.num_blocks), f"{p.total_warp_insts:,}",
             f"{p.full_ipc:.3f}", f"{p.tbpoint_ipc:.3f}",
             f"{p.error:.2%}", f"{p.sample_size:.2%}")
            for p in points
        ],
        title=f"Scale sensitivity — {args.kernel}",
    ))


def cmd_model(args: argparse.Namespace) -> None:
    results = run_fig5_model(seed=args.seed)
    print(render_table(
        ["config", "mean IPC", "within 10%", "p95 deviation"],
        [
            (v.label, f"{v.mean_ipc:.4f}", f"{v.fraction_within(0.10):.2%}",
             f"{np.percentile(v.relative_deviation, 95):.2%}")
            for v in results
        ],
        title="Fig. 5 — Monte-Carlo IPC variation",
    ))


def cmd_cache(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.exec import journals_info

    cache = ProfileCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached profile(s) from {cache.root}")
        return
    info = cache.info()
    journal_dir = Path(args.cache_dir) / "journals" if args.cache_dir else None
    journals = journals_info(journal_dir)
    print(render_table(
        ["field", "value"],
        [
            ("directory", info["dir"]),
            ("entries", str(info["entries"])),
            ("size", f"{info['bytes']:,} bytes"),
            ("cumulative hits", str(info["hits"])),
            ("cumulative misses", str(info["misses"])),
            ("profiler version", str(info["profiler_version"])),
            ("entry format version", str(info["format_version"])),
            ("journals directory", journals["dir"]),
            ("journals", str(journals["journals"])),
            ("journals size", f"{journals['bytes']:,} bytes"),
            ("newest sweep key", journals["newest_key"] or "none"),
        ],
        title="Profile cache",
    ))


def cmd_simulate(args: argparse.Namespace) -> None:
    from repro.config import GPUConfig
    from repro.sim import GPUSimulator, simulate_sm_groups
    from repro.workloads import get_workload

    kernel = get_workload(args.kernel, scale=args.scale, seed=args.seed)
    if not 0 <= args.launch < len(kernel.launches):
        raise SystemExit(
            f"launch {args.launch} out of range: {args.kernel} has "
            f"{len(kernel.launches)} launches at this scale"
        )
    launch = kernel.launches[args.launch]
    if args.block_memo is not None:
        try:
            launch.resize_block_memo(args.block_memo or launch.num_blocks)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    try:
        gpu = GPUConfig(l2_shards=args.l2_shards)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc

    if args.sm_groups > 1:
        _simulate_sm_groups_cmd(args, launch, gpu, simulate_sm_groups)
        return

    sim = GPUSimulator(
        gpu, engine=args.engine, mem_front_end=args.mem_front_end
    )
    result = sim.run_launch(launch)
    ipc = (
        result.issued_warp_insts / result.wall_cycles
        if result.wall_cycles else 0.0
    )
    rows = [
        ("kernel", args.kernel),
        ("launch", str(args.launch)),
        ("engine", args.engine),
        ("memory front end", args.mem_front_end),
        ("issued warp insts", f"{result.issued_warp_insts:,}"),
        ("wall cycles", f"{result.wall_cycles:,}"),
        ("warp IPC", f"{ipc:.3f}"),
    ]
    if result.counters is not None:
        rows.append(
            ("block regenerations (memo window "
             f"{launch.block_memo})",
             f"{result.counters.block_regenerations:,}")
        )
    if args.mem_stats:
        m = result.mem_stats
        rows.extend([
            ("L1 hit rate", f"{m['l1_hit_rate']:.2%}"),
            ("L2 hit rate", f"{m['l2_hit_rate']:.2%}"),
            ("DRAM requests", f"{m['dram_requests']:,}"),
            ("DRAM row-hit rate", f"{m['dram_row_hit_rate']:.2%}"),
            ("DRAM mean queue delay",
             f"{m['dram_mean_queue_delay']:.1f} cycles"),
        ])
        if "l2_shards" in m:
            rows.extend([
                ("L2 shards", str(m["l2_shards"])),
                ("L2 shard probes",
                 ", ".join(f"{p:,}" for p in m["l2_shard_probes"])),
                ("L2 shard imbalance", f"{m['l2_shard_imbalance']:.2%}"),
            ])
    print(render_table(
        ["field", "value"], rows,
        title=f"Timing simulation — {args.kernel} launch {args.launch}",
    ))


def _simulate_sm_groups_cmd(args, launch, gpu, simulate_sm_groups) -> None:
    """``repro simulate --sm-groups N``: bounded-skew SM-group mode with
    the measured IPC skew against the exact serial engine printed
    alongside the recomposed result (DESIGN.md §12)."""
    try:
        run = simulate_sm_groups(
            launch, gpu, sm_groups=args.sm_groups,
            engine=args.engine, mem_front_end=args.mem_front_end,
            exec_config=_exec_config(args),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    rows = [
        ("kernel", args.kernel),
        ("launch", str(args.launch)),
        ("engine", args.engine),
        ("memory front end", args.mem_front_end),
        ("SM groups", str(run.sm_groups)),
        ("group fan-out", f"{run.exec_meta.get('path', '?')} "
                          f"({run.exec_meta.get('reason') or 'pool'})"),
        ("issued warp insts", f"{run.issued_warp_insts:,}"),
        ("wall cycles (max over groups)", f"{run.wall_cycles:,}"),
        ("warp IPC (grouped)", f"{run.machine_ipc:.3f}"),
        ("warp IPC (exact serial)",
         f"{run.serial_ipc:.3f}" if run.serial_ipc is not None else "n/a"),
        ("IPC skew vs serial",
         f"{run.ipc_skew:.4%}" if run.ipc_skew is not None
         else "unmeasured"),
    ]
    for sm_ids, r in zip(run.group_sm_ids, run.group_results):
        label = f"group SMs {sm_ids[0]}-{sm_ids[-1]}"
        if r is None:
            rows.append((label, "no blocks"))
        else:
            rows.append(
                (label,
                 f"{r.issued_warp_insts:,} insts / {r.wall_cycles:,} cyc")
            )
    print(render_table(
        ["field", "value"], rows,
        title=f"SM-group simulation — {args.kernel} launch {args.launch}",
    ))


def cmd_serve(args: argparse.Namespace) -> None:
    """``repro serve``: run the warm-state simulation daemon until a
    ``shutdown`` request, SIGTERM or SIGINT drains it (DESIGN.md
    §13–14)."""
    import asyncio
    import json
    import os
    from pathlib import Path

    from repro.serve import ServeConfig, Server

    fault_plan = None
    if args.fault_plan:
        from repro.exec.faults import FaultPlan

        try:
            fault_plan = FaultPlan.from_dict(
                json.loads(Path(args.fault_plan).read_text())
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"cannot load --fault-plan: {exc}") from exc
    try:
        config = ServeConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            max_concurrency=args.max_concurrency,
            block_memo=args.block_memo,
            journal=args.journal,
            cache_dir=args.cache_dir,
            metrics_json=args.metrics_json,
            workers=args.workers,
            worker_retries=args.retries,
            hang_timeout=args.hang_timeout,
            max_backlog=args.max_backlog,
            degrade_after=args.degrade_after,
            fault_plan=fault_plan,
            mp_context=args.mp_context,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    server = Server(config)

    async def body() -> None:
        await server.start()
        if server.address is not None:
            host, port = server.address
            where = f"{host}:{port}"
        else:
            where = server.socket_path
        pool = (
            f"{config.workers} supervised worker(s)"
            if config.workers else "in-process threads"
        )
        print(f"serving on {where} (pid {os.getpid()}, {pool}); "
              "'shutdown' request, SIGTERM or SIGINT drains and exits",
              flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(body())
    except KeyboardInterrupt:
        pass  # fallback when signal handlers can't be installed
    except OSError as exc:
        raise SystemExit(f"cannot listen: {exc}") from exc


def cmd_request(args: argparse.Namespace) -> None:
    """``repro request``: one request against a running daemon; prints
    the JSON result payload (identical to what the server computed).

    Error payloads from the daemon exit with status 2 and print a
    structured JSON error object to stderr (``error`` plus
    ``error_kind``/``retry_after`` when the server classified it) —
    stdout carries result payloads only, so scripts can never mistake
    a refusal for a result."""
    import json

    from repro.serve import ServeClient, ServeError, default_socket_path

    if args.host is not None:
        target = {"host": args.host, "port": args.port}
        if args.port is None:
            raise SystemExit("--host needs an explicit --port")
    else:
        target = {
            "socket_path": args.socket or default_socket_path(args.cache_dir)
        }
    params: dict | None = None
    if args.kind in ("simulate", "tbpoint"):
        if not args.kernel:
            raise SystemExit(f"{args.kind} requests need a kernel")
        params = {
            "kernel": args.kernel,
            "scale": args.scale,
            "seed": args.seed,
            "engine": args.engine,
            "mem_front_end": args.mem_front_end,
            "l2_shards": args.l2_shards,
        }
        if args.kind == "simulate":
            params["launch"] = args.launch
        if args.timeout is not None:
            params["timeout"] = args.timeout
    elif args.kernel:
        raise SystemExit(f"'{args.kind}' requests take no kernel")
    try:
        with ServeClient(**target) as client:
            result = client.call(args.kind, params)
    except (ServeError, OSError) as exc:
        error = {"error": str(exc)}
        if isinstance(exc, ServeError):
            if exc.kind is not None:
                error["error_kind"] = exc.kind
            if exc.retry_after is not None:
                error["retry_after"] = exc.retry_after
        else:
            error["error"] = f"connection failed: {exc}"
        print(json.dumps(error, indent=2, sort_keys=True), file=sys.stderr)
        raise SystemExit(2) from exc
    print(json.dumps(result, indent=2, sort_keys=True))


def cmd_lint(args: argparse.Namespace) -> int:
    """Static determinism/process-safety/hot-loop/oracle-parity checks
    (DESIGN.md §10); flags are shared with ``python -m
    repro.devtools.lint`` via ``configure_parser``."""
    from repro.devtools.lint.cli import run as lint_run

    return lint_run(args)


def cmd_table1(args: argparse.Namespace) -> None:
    rows = run_table1()
    print(render_table(
        ["benchmark", "GPU (ms)", "projected simulation", "slowdown"],
        [
            (r.benchmark, f"{r.gpu_ms:,.0f}", r.human_sim_time,
             f"{r.slowdown:,.0f}x")
            for r in rows
        ],
        title="Table I — projected simulation times",
    ))


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (0 = all CPUs, 1 = serial)"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="TBPoint reproduction: regenerate the paper's experiments.",
    )
    parser.add_argument(
        "--scale", type=float, default=0.125,
        help="workload scale factor, 1.0 = paper scale (default 0.125)",
    )
    parser.add_argument("--seed", type=int, default=2014)
    parser.add_argument(
        "--jobs", "-j", type=_nonnegative_int, default=0,
        help="worker processes for batch execution; 0 (default) uses "
             "every CPU, 1 is fully serial",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent functional-profile cache",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task timeout for batch execution: a worker attempt "
             "running longer is declared hung, the pool is respawned "
             "and the task retried (default: no timeout)",
    )
    parser.add_argument(
        "--retries", type=_nonnegative_int, default=2, metavar="N",
        help="extra attempts a failed/hung/crashed task gets in the "
             "pool before one final in-process attempt (default 2)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume a killed sweep (headline/sensitivity/scaling) from "
             "its checkpoint journal, skipping already-completed kernels",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=f"profile cache directory (default: $TBPOINT_CACHE_DIR or "
             f"{default_cache_dir()})",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print the hottest "
             "functions (sorted by cumulative time) to stderr",
    )
    parser.add_argument(
        "--profile-limit", type=int, default=30, metavar="N",
        help="with --profile: how many stats rows to print (default 30)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="Table VI benchmark inventory")

    p = sub.add_parser("run", help="compare all techniques on one kernel")
    p.add_argument("kernel", choices=ALL_KERNELS)

    p = sub.add_parser("headline", help="Figs. 9-10 full sweep")
    p.add_argument("kernels", nargs="*", help="subset (default all 12)")

    p = sub.add_parser("breakdown", help="Fig. 11 inter/intra breakdown")
    p.add_argument("kernels", nargs="*")

    p = sub.add_parser("sensitivity", help="Figs. 12-13 hardware sweep")
    p.add_argument("kernels", nargs="*")

    p = sub.add_parser(
        "scaling", help="TBPoint error/sample size across workload scales"
    )
    p.add_argument("kernel", choices=ALL_KERNELS)
    p.add_argument(
        "--scales", type=float, nargs="+", metavar="S",
        default=[0.0625, 0.125, 0.25, 0.5],
        help="workload scales to sweep (default: 0.0625 0.125 0.25 0.5)",
    )

    sub.add_parser("model", help="Fig. 5 Markov/Monte-Carlo study")
    sub.add_parser("table1", help="Table I projected simulation times")

    p = sub.add_parser(
        "simulate", help="run the timing simulator on one kernel launch"
    )
    p.add_argument("kernel", choices=ALL_KERNELS)
    p.add_argument(
        "--launch", type=int, default=0, metavar="N",
        help="launch index within the kernel (default 0)",
    )
    p.add_argument(
        "--engine", choices=["compact", "reference"], default="compact",
        help="simulation engine (default compact)",
    )
    p.add_argument(
        "--mem-front-end", choices=list(MEMORY_FRONT_ENDS), default="fast",
        help="memory-hierarchy front end (default fast)",
    )
    p.add_argument(
        "--mem-stats", action="store_true",
        help="also print memory-hierarchy statistics (L1/L2 hit rates, "
             "DRAM row-hit rate, mean queue delay, shard balance)",
    )
    p.add_argument(
        "--l2-shards", type=int, default=1, metavar="N",
        help="organize the L2 as N address-sliced shards (power of two; "
             "bit-identical to the unified cache, default 1)",
    )
    p.add_argument(
        "--block-memo", type=int, default=None, metavar="N",
        help="block-memo window for the simulated launch (0 = the "
             "launch's full block count; default: keep the built-in "
             "window).  A pure perf knob: results are bit-identical "
             "for any window; the block-regenerations row shows the "
             "re-synthesis it saves",
    )
    p.add_argument(
        "--sm-groups", type=int, default=1, metavar="N",
        help="bounded-skew parallel mode: split the SMs into N "
             "independent groups with relaxed cross-group L2 ordering "
             "and report the IPC skew vs the exact serial engine "
             "(default 1 = exact serial)",
    )

    p = sub.add_parser("cache", help="persistent profile-cache maintenance")
    p.add_argument("action", choices=["info", "clear"])

    p = sub.add_parser(
        "serve",
        help="run the warm-state simulation daemon: engines, traces and "
             "profiles stay warm across requests (DESIGN.md §13)",
    )
    p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket to listen on (default: <cache root>/serve.sock)",
    )
    p.add_argument(
        "--host", default=None,
        help="listen on TCP instead of a unix socket",
    )
    p.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port with --host (0 = ephemeral, printed at startup)",
    )
    p.add_argument(
        "--max-concurrency", type=int, default=2, metavar="N",
        help="compute requests admitted simultaneously (default 2); "
             "the rest queue",
    )
    p.add_argument(
        "--block-memo", type=int, default=0, metavar="N",
        help="block-memo window for resident launch traces "
             "(default 0 = each launch's full block count, i.e. "
             "regeneration-free)",
    )
    p.add_argument(
        "--journal", action="store_true",
        help="record served payloads to the serve journal and replay "
             "them idempotently, including across restarts",
    )
    p.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="dump the final stats payload to this file on shutdown",
    )
    p.add_argument(
        "--workers", type=_nonnegative_int, default=0, metavar="N",
        help="supervised worker processes for compute (default 0 = "
             "in-process threads); crashed or hung workers are "
             "respawned and their requests retried (DESIGN.md §14)",
    )
    p.add_argument(
        "--retries", type=_nonnegative_int, default=2, metavar="N",
        help="extra worker attempts per request after a crash/hang "
             "before falling back to in-process compute (default 2)",
    )
    p.add_argument(
        "--hang-timeout", type=float, default=None, metavar="SECONDS",
        help="kill a busy worker that goes this long without a "
             "heartbeat and retry its request (default: disabled)",
    )
    p.add_argument(
        "--max-backlog", type=_nonnegative_int, default=32, metavar="N",
        help="bound on requests queued + in flight across the worker "
             "pool; past it requests are shed with an 'overloaded' "
             "error carrying a retry-after hint (default 32; "
             "0 = unbounded)",
    )
    p.add_argument(
        "--degrade-after", type=int, default=4, metavar="N",
        help="consecutive worker respawns that flip the daemon into "
             "degraded in-process mode (default 4)",
    )
    p.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON FaultPlan injected into workers (chaos tests/CI "
             "only; see repro.exec.faults)",
    )
    p.add_argument(
        "--mp-context", default=None, choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for workers "
             "(default: platform default)",
    )

    p = sub.add_parser(
        "request",
        help="send one request to a running simulation daemon and print "
             "the JSON result",
    )
    p.add_argument(
        "kind", choices=["simulate", "tbpoint", "stats", "ping", "shutdown"],
    )
    p.add_argument("kernel", nargs="?", choices=ALL_KERNELS)
    p.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket of the daemon (default: <cache root>/serve.sock)",
    )
    p.add_argument("--host", default=None, help="connect over TCP instead")
    p.add_argument("--port", type=int, default=None, metavar="N")
    p.add_argument(
        "--launch", type=int, default=0, metavar="N",
        help="launch index for simulate requests (default 0)",
    )
    p.add_argument(
        "--engine", choices=["compact", "reference"], default="compact",
    )
    p.add_argument(
        "--mem-front-end", choices=list(MEMORY_FRONT_ENDS), default="fast",
    )
    p.add_argument("--l2-shards", type=int, default=1, metavar="N")
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline while queued server-side (the "
             "simulation still completes and warms the server)",
    )

    from repro.devtools.lint.cli import configure_parser as _configure_lint

    p = sub.add_parser(
        "lint",
        help="static determinism/process-safety/hot-loop/oracle-parity "
             "checks (DESIGN.md §10)",
    )
    _configure_lint(p)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "headline": cmd_headline,
    "breakdown": cmd_breakdown,
    "sensitivity": cmd_sensitivity,
    "scaling": cmd_scaling,
    "model": cmd_model,
    "table1": cmd_table1,
    "simulate": cmd_simulate,
    "cache": cmd_cache,
    "serve": cmd_serve,
    "request": cmd_request,
    "lint": cmd_lint,
}


def _run_profiled(command, args: argparse.Namespace):
    """Run ``command`` under cProfile and dump the hottest functions to
    stderr (stdout stays clean for the command's own tables)."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return command(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.strip_dirs().sort_stats("cumulative")
        print(f"\n--- cProfile: top {args.profile_limit} by cumulative "
              "time ---", file=sys.stderr)
        stats.print_stats(args.profile_limit)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.profile:
            rc = _run_profiled(_COMMANDS[args.command], args)
        else:
            rc = _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0
    return rc or 0


if __name__ == "__main__":
    sys.exit(main())
