"""k-means with BIC model selection (the SimPoint tool, reimplemented).

The Ideal-SimPoint baseline (Section V-A) clusters per-sampling-unit
basic-block vectors exactly the way the original SimPoint tool does:
random-project the BBVs to a low dimension, run k-means for a range of
k, score each k with the Bayesian information criterion, and pick the
smallest k whose score covers most of the BIC range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: SimPoint's default random-projection dimensionality.
PROJECTION_DIMS = 15

#: SimPoint's default BIC coverage: the smallest k whose BIC reaches
#: this fraction of the best observed score range is selected.
BIC_COVERAGE = 0.90


@dataclass(frozen=True)
class KMeansResult:
    """One k-means run: labels, centroids, within-cluster SSE."""

    labels: np.ndarray
    centroids: np.ndarray
    sse: float

    @property
    def k(self) -> int:
        return len(self.centroids)


def _init_plusplus(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = len(points)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    d2 = np.sum((points - centroids[0]) ** 2, axis=1)
    for c in range(1, k):
        total = d2.sum()
        if total <= 0:
            centroids[c:] = points[rng.integers(n, size=k - c)]
            break
        probs = d2 / total
        centroids[c] = points[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, np.sum((points - centroids[c]) ** 2, axis=1))
    return centroids


def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid labels (vectorized, no (n, k, d) temporaries)."""
    cross = points @ centroids.T
    c2 = np.einsum("ij,ij->i", centroids, centroids)
    return np.argmin(c2[None, :] - 2.0 * cross, axis=1)


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator | None = None,
    max_iter: int = 100,
    restarts: int = 3,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding, best of ``restarts``."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (n, d)")
    n = len(points)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    rng = rng or np.random.default_rng(0)

    best: KMeansResult | None = None
    for _ in range(restarts):
        centroids = _init_plusplus(points, k, rng)
        labels = _assign(points, centroids)
        for _ in range(max_iter):
            new_centroids = centroids.copy()
            for c in range(k):
                members = labels == c
                if members.any():
                    new_centroids[c] = points[members].mean(axis=0)
                else:
                    # Re-seed empty clusters at the farthest point.
                    far = np.argmax(
                        np.sum((points - centroids[labels]) ** 2, axis=1)
                    )
                    new_centroids[c] = points[far]
            new_labels = _assign(points, new_centroids)
            centroids = new_centroids
            if np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
        sse = float(np.sum((points - centroids[labels]) ** 2))
        if best is None or sse < best.sse:
            best = KMeansResult(labels=labels, centroids=centroids, sse=sse)
    assert best is not None
    return best


def bic_score(points: np.ndarray, result: KMeansResult) -> float:
    """X-means-style BIC of a k-means clustering (spherical Gaussian
    likelihood), as used by the SimPoint tool to pick k."""
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    k = result.k
    sizes = np.bincount(result.labels, minlength=k).astype(np.float64)
    dof = max(n - k, 1)
    variance = max(result.sse / (d * dof), 1e-12)
    occupied = sizes > 0
    loglik = float(
        np.sum(sizes[occupied] * np.log(sizes[occupied]))
        - n * np.log(n)
        - n * d / 2.0 * np.log(2.0 * np.pi * variance)
        - d * (n - k) / 2.0
    )
    num_params = k * (d + 1)
    return loglik - num_params / 2.0 * np.log(n)


def random_projection(
    points: np.ndarray,
    dims: int = PROJECTION_DIMS,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """SimPoint's random projection: multiply by a dense random matrix to
    reduce high-dimensional BBVs to ``dims`` dimensions."""
    points = np.asarray(points, dtype=np.float64)
    if points.shape[1] <= dims:
        return points
    rng = rng or np.random.default_rng(0)
    proj = rng.uniform(-1.0, 1.0, size=(points.shape[1], dims))
    return points @ proj


def select_k_bic(
    points: np.ndarray,
    max_k: int,
    rng: np.random.Generator | None = None,
    coverage: float = BIC_COVERAGE,
) -> KMeansResult:
    """Run k-means for k = 1..max_k and return the run with the smallest
    k whose BIC reaches ``coverage`` of the observed score range (the
    SimPoint selection rule)."""
    points = np.asarray(points, dtype=np.float64)
    rng = rng or np.random.default_rng(0)
    n = len(points)
    max_k = max(1, min(max_k, n))

    runs: list[KMeansResult] = []
    scores: list[float] = []
    for k in range(1, max_k + 1):
        run = kmeans(points, k, rng=rng)
        runs.append(run)
        scores.append(bic_score(points, run))
    score_arr = np.asarray(scores)
    lo, hi = float(score_arr.min()), float(score_arr.max())
    if hi == lo:
        return runs[0]
    cutoff = lo + coverage * (hi - lo)
    chosen = int(np.argmax(score_arr >= cutoff))
    return runs[chosen]


__all__ = [
    "kmeans",
    "KMeansResult",
    "bic_score",
    "select_k_bic",
    "random_projection",
    "PROJECTION_DIMS",
]
