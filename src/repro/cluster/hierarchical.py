"""Agglomerative complete-linkage clustering with a distance threshold.

The paper (Section III) chooses hierarchical clustering over k-means
because the number of clusters "can be determined automatically by
setting the distance threshold sigma, which is the maximum distance
between any two points in a cluster".  Complete linkage makes that exact:
merging stops when the smallest complete-linkage distance between any
two clusters exceeds sigma, so within every final cluster all pairwise
point distances are <= sigma.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.distance import pairwise_euclidean


@dataclass(frozen=True)
class ClusterResult:
    """Result of a clustering run.

    Attributes
    ----------
    labels:
        Cluster ID per input point (``int64``), contiguous from 0,
        numbered by first appearance in input order.
    representatives:
        For each cluster, the index of the member point closest to the
        cluster mean — the paper's simulation-point selection ("the
        kernel launch with the inter-feature vector closest to the
        center of the cluster").
    sizes:
        Number of member points per cluster.
    """

    labels: np.ndarray
    representatives: np.ndarray
    sizes: np.ndarray

    @property
    def num_clusters(self) -> int:
        return len(self.sizes)

    def weight(self, cluster: int) -> float:
        """Eq. 1 phase weight: members / total points."""
        return float(self.sizes[cluster]) / float(self.labels.size)


def _relabel(labels: np.ndarray) -> np.ndarray:
    """Renumber labels contiguously by first appearance."""
    mapping: dict[int, int] = {}
    out = np.empty_like(labels)
    for i, lab in enumerate(labels):
        out[i] = mapping.setdefault(int(lab), len(mapping))
    return out


def _representatives(points: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Member closest (Euclidean) to each cluster's mean."""
    k = int(labels.max()) + 1
    reps = np.empty(k, dtype=np.int64)
    for c in range(k):
        members = np.flatnonzero(labels == c)
        center = points[members].mean(axis=0)
        d = np.linalg.norm(points[members] - center, axis=1)
        reps[c] = members[int(np.argmin(d))]
    return reps


def hierarchical_cluster(
    points: np.ndarray, threshold: float
) -> ClusterResult:
    """Complete-linkage agglomerative clustering cut at ``threshold``.

    Merging proceeds greedily on the smallest inter-cluster
    complete-linkage distance and stops once it exceeds ``threshold``;
    the guarantee is that the maximum pairwise distance inside each
    returned cluster is <= ``threshold`` (the paper's sigma).

    Cost is O(n^2) memory and roughly O(n^2 log n) time via
    Lance-Williams updates — ample for the launch and epoch counts of
    the evaluation (hundreds of points).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (n, d)")
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if n == 1:
        return ClusterResult(
            labels=np.zeros(1, dtype=np.int64),
            representatives=np.zeros(1, dtype=np.int64),
            sizes=np.ones(1, dtype=np.int64),
        )

    dist = pairwise_euclidean(points)
    # Active-cluster bookkeeping: ``alive`` masks live clusters, ``dist``
    # rows are complete-linkage distances between live clusters.
    INF = np.inf
    np.fill_diagonal(dist, INF)
    alive = np.ones(n, dtype=bool)
    labels = np.arange(n, dtype=np.int64)

    while True:
        flat = np.argmin(dist)
        i, j = divmod(int(flat), n)
        if dist[i, j] > threshold or not np.isfinite(dist[i, j]):
            break
        # Merge j into i (complete linkage: new distance is the max).
        np.maximum(dist[i], dist[j], out=dist[i])
        dist[:, i] = dist[i]
        dist[i, i] = INF
        dist[j, :] = INF
        dist[:, j] = INF
        alive[j] = False
        labels[labels == j] = i
        if alive.sum() == 1:
            break

    labels = _relabel(labels)
    sizes = np.bincount(labels).astype(np.int64)
    reps = _representatives(points, labels)
    return ClusterResult(labels=labels, representatives=reps, sizes=sizes)


__all__ = ["hierarchical_cluster", "ClusterResult"]
