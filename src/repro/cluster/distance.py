"""Distance and normalization helpers shared by the clustering code."""

from __future__ import annotations

import numpy as np


def pairwise_euclidean(points: np.ndarray) -> np.ndarray:
    """Dense symmetric Euclidean distance matrix for an (n, d) array.

    Uses the expanded form ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b so only
    one (n, n) temporary is materialized; negative round-off is clamped
    before the square root.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (n, d)")
    sq = np.einsum("ij,ij->i", points, points)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (points @ points.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(d2, out=d2)


def normalize_columns(points: np.ndarray) -> np.ndarray:
    """Divide each column by its mean (the paper's Eq. 2 normalization:
    "each of which is normalized with its average value across all kernel
    launches so that they have the same order of magnitude").

    All-zero columns are left untouched.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D (n, d)")
    means = points.mean(axis=0)
    safe = np.where(means == 0.0, 1.0, means)
    return points / safe


__all__ = ["pairwise_euclidean", "normalize_columns"]
