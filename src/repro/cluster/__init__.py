"""Clustering algorithms used by TBPoint and its baselines.

* :func:`hierarchical_cluster` — agglomerative complete-linkage
  clustering cut by a *distance threshold* sigma, "the maximum distance
  between any two points in a cluster" (Section III).  Used for both
  inter-launch feature vectors and intra-launch epoch vectors.
* :func:`kmeans` / :func:`select_k_bic` — k-means++ with BIC model
  selection, reimplementing the SimPoint tool for the Ideal-SimPoint
  baseline (Section V-A).
"""

from repro.cluster.distance import normalize_columns, pairwise_euclidean
from repro.cluster.hierarchical import ClusterResult, hierarchical_cluster
from repro.cluster.kmeans import (
    KMeansResult,
    bic_score,
    kmeans,
    random_projection,
    select_k_bic,
)

__all__ = [
    "pairwise_euclidean",
    "normalize_columns",
    "hierarchical_cluster",
    "ClusterResult",
    "kmeans",
    "KMeansResult",
    "bic_score",
    "select_k_bic",
    "random_projection",
]
