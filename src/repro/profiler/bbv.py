"""Basic-block vectors from functional profiling.

Two uses:

* the Ideal-SimPoint baseline consumes *per-sampling-unit* BBVs gathered
  during the full timing run (see
  :class:`repro.sim.gpu.FixedUnitRecorder`) — those cannot be produced
  functionally, which is exactly why that baseline is "ideal";
* the paper's footnote-2 extension — adding the BBV as another
  inter-launch feature — only needs *per-launch* BBVs, which functional
  profiling can produce.  :func:`launch_bbvs` computes them.
"""

from __future__ import annotations

import numpy as np

from repro.trace import KernelTrace, LaunchTrace


def launch_bbv(launch: LaunchTrace) -> np.ndarray:
    """Normalized basic-block vector of one launch: executed
    warp-instruction counts per basic block over all thread blocks,
    divided by the launch's total (Eq. 1's normalization)."""
    total = np.zeros(launch.num_bbs, dtype=np.int64)
    for block in launch.iter_blocks():
        total += block.bb_counts(launch.num_bbs)
    s = total.sum()
    return total / s if s else total.astype(np.float64)


def launch_bbvs(kernel: KernelTrace, weight: float = 1.0) -> np.ndarray:
    """(num_launches, num_bbs) matrix of normalized per-launch BBVs,
    scaled by ``weight`` so the extra dimensions are comparable to the
    Eq. 2 features when appended (footnote 2 of the paper)."""
    width = max(l.num_bbs for l in kernel.launches)
    rows = np.zeros((kernel.num_launches, width), dtype=np.float64)
    for i, launch in enumerate(kernel.launches):
        bbv = launch_bbv(launch)
        rows[i, : len(bbv)] = bbv
    return rows * weight


__all__ = ["launch_bbv", "launch_bbvs"]
