"""Functional profiling (the GPUOcelot substitute).

The paper profiles each kernel once with GPUOcelot, collecting
architecture-independent per-thread-block counters: thread instructions,
warp instructions, and global/local memory requests.  Our profiler walks
the synthetic traces and extracts exactly those counters.  Profiling is
one-time per kernel/input (hardware independent); only the epoch-level
clustering must be redone when the simulated occupancy changes
(Section V-C).
"""

from repro.profiler.functional import (
    KernelProfile,
    LaunchProfile,
    profile_kernel,
    profile_launch,
)
from repro.profiler.bbv import launch_bbv, launch_bbvs

__all__ = [
    "LaunchProfile",
    "KernelProfile",
    "profile_launch",
    "profile_kernel",
    "launch_bbv",
    "launch_bbvs",
]
