"""Per-thread-block functional profiling.

:func:`profile_launch` walks every thread block of a launch once and
records the three counters TBPoint needs (Sections III and IV-B1):

* warp instructions  — Eq. 2 feature 2, Eq. 5's ``y``;
* thread instructions — Eq. 2 feature 1, and the "thread block size"
  used for the thread-block-variation feature and Fig. 8;
* memory requests (global/local) — Eq. 2 feature 3, Eq. 5's ``x``.

The result is column-wise numpy arrays over thread-block ID, so epoch
construction (Eq. 4/5) is pure vectorized slicing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace import KernelTrace, LaunchTrace

#: Version of the functional-profiling algorithm.  Part of the on-disk
#: profile-cache key: bump it whenever the counters or their definitions
#: change so stale cached profiles are invalidated.
PROFILER_VERSION = 1


@dataclass
class LaunchProfile:
    """Profile of one kernel launch: per-thread-block counters.

    All arrays are indexed by thread-block ID (dispatch order).
    """

    kernel_name: str
    launch_id: int
    warps_per_block: int
    warp_insts: np.ndarray  # int64[num_blocks]
    thread_insts: np.ndarray  # int64[num_blocks]
    mem_requests: np.ndarray  # int64[num_blocks]

    def __post_init__(self) -> None:
        n = len(self.warp_insts)
        if not (len(self.thread_insts) == len(self.mem_requests) == n):
            raise ValueError("profile column length mismatch")
        if n == 0:
            raise ValueError("empty launch profile")

    @property
    def num_blocks(self) -> int:
        return len(self.warp_insts)

    @property
    def total_warp_insts(self) -> int:
        return int(self.warp_insts.sum())

    @property
    def total_thread_insts(self) -> int:
        return int(self.thread_insts.sum())

    @property
    def total_mem_requests(self) -> int:
        return int(self.mem_requests.sum())

    @property
    def stall_probability(self) -> np.ndarray:
        """Eq. 5 per-block stall probability ``x / y`` (memory requests
        per warp instruction)."""
        return self.mem_requests / self.warp_insts

    @property
    def block_size_cov(self) -> float:
        """Coefficient of variation of thread-block sizes (Eq. 2's
        thread-block-variation feature; size = thread instructions)."""
        mean = self.thread_insts.mean()
        if mean == 0:
            return 0.0
        return float(self.thread_insts.std() / mean)

    @property
    def block_size_ratio(self) -> np.ndarray:
        """Thread-block size normalized by the launch average — the
        quantity plotted in Fig. 8."""
        return self.thread_insts / self.thread_insts.mean()


def profile_launch(launch: LaunchTrace) -> LaunchProfile:
    """Functionally profile one launch (walks every thread block once)."""
    n = launch.num_blocks
    warp_insts = np.empty(n, dtype=np.int64)
    thread_insts = np.empty(n, dtype=np.int64)
    mem_requests = np.empty(n, dtype=np.int64)
    for tb_id in range(n):
        stats = launch.block(tb_id).stats
        warp_insts[tb_id] = stats.warp_insts
        thread_insts[tb_id] = stats.thread_insts
        mem_requests[tb_id] = stats.mem_requests
    return LaunchProfile(
        kernel_name=launch.kernel_name,
        launch_id=launch.launch_id,
        warps_per_block=launch.warps_per_block,
        warp_insts=warp_insts,
        thread_insts=thread_insts,
        mem_requests=mem_requests,
    )


@dataclass
class KernelProfile:
    """Profile of a whole kernel: one :class:`LaunchProfile` per launch.

    This is the one-time profiling artifact: everything TBPoint computes
    afterwards (inter-launch feature vectors, epochs, homogeneous
    regions) derives from it without touching the traces again.
    """

    kernel_name: str
    launches: list[LaunchProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.launches:
            raise ValueError("kernel profile with no launches")

    @property
    def num_launches(self) -> int:
        return len(self.launches)

    @property
    def total_warp_insts(self) -> int:
        return sum(p.total_warp_insts for p in self.launches)

    @property
    def total_thread_insts(self) -> int:
        return sum(p.total_thread_insts for p in self.launches)


def profile_kernel(kernel: KernelTrace) -> KernelProfile:
    """Functionally profile every launch of a kernel (the paper's
    one-time GPUOcelot pass)."""
    return KernelProfile(
        kernel_name=kernel.name,
        launches=[profile_launch(launch) for launch in kernel.launches],
    )


__all__ = [
    "LaunchProfile",
    "KernelProfile",
    "profile_launch",
    "profile_kernel",
    "PROFILER_VERSION",
]
