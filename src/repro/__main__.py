"""Entry point for ``python -m repro``."""

import sys

from repro._cli import main

sys.exit(main())
