"""Rodinia-style kernels: cfd, kmeans, hotspot, stream(cluster).

All four are regular (Table VI type II): uniform thread blocks and
homogeneous launch schedules.  They differ in where their sampling
savings come from — cfd/kmeans/stream have many homogeneous launches
(inter-launch sampling wins), hotspot has a single launch (intra-launch
only, as Fig. 11 notes).
"""

from __future__ import annotations

from repro.trace import KernelTrace
from repro.workloads.base import LaunchSpec, Segment, build_kernel, scaled


def build_cfd(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """CFD Euler solver: 100 identical time-step launches."""
    n_launches = 100
    total = scaled(50600, scale, floor=n_launches * 60)
    per_launch = total // n_launches

    spec = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=40,
                size_cov=0.0,
                mem_ratio=0.15,
                locality=0.4,
                coalesce_mean=2.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 25,
                locality_jitter=0.07,
                coalesce_jitter=0.20,
                fp_ratio=0.20,
            ),
        ),
        warps_per_block=8,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    return build_kernel("cfd", "rodinia", "regular", [spec] * n_launches, seed)


def build_kmeans(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """K-means: 30 launches alternating between the point-assignment
    pass (memory-lean distance computation) and the centroid-update pass
    (gather-heavy) — two clean inter-launch clusters."""
    n_launches = 30
    total = scaled(58080, scale, floor=n_launches * 90)
    per_launch = total // n_launches

    assign = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=56,
                size_cov=0.0,
                mem_ratio=0.08,
                locality=0.6,
                coalesce_mean=1.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 24,
                locality_jitter=0.07,
                coalesce_jitter=0.20,
                fp_ratio=0.25,
            ),
        ),
        warps_per_block=6,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    update = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=40,
                size_cov=0.0,
                mem_ratio=0.18,
                locality=0.3,
                coalesce_mean=3.0,
                active_mean=32.0,
                pattern="gather",
                working_set=1 << 25,
                locality_jitter=0.07,
                coalesce_jitter=0.20,
                fp_ratio=0.10,
            ),
        ),
        warps_per_block=6,
        bb_offset=12,  # different code path -> different basic blocks
        data_key=1,
        perturb=0.06,
    )
    specs = [assign if i % 2 == 0 else update for i in range(n_launches)]
    return build_kernel("kmeans", "rodinia", "regular", specs, seed)


def build_hotspot(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Hotspot thermal stencil: one launch of uniform, cache-friendly
    stencil thread blocks (the intra-launch-only case of Fig. 11)."""
    total = scaled(1849, scale, floor=1849)
    spec = LaunchSpec(
        segments=(
            Segment(
                count=total,
                insts_per_warp=52,
                size_cov=0.0,
                mem_ratio=0.12,
                locality=0.8,
                coalesce_mean=1.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 23,
                locality_jitter=0.07,
                coalesce_jitter=0.20,
                fp_ratio=0.15,
            ),
        ),
        warps_per_block=16,
        bb_offset=0,
    )
    return build_kernel("hotspot", "rodinia", "regular", [spec], seed)


def build_stream(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """StreamCluster: hundreds of tiny homogeneous launches (the pgain
    kernel is re-launched per candidate center); nearly all savings come
    from inter-launch sampling (Fig. 11)."""
    n_launches = 150
    total = max(scaled(2688, scale, floor=n_launches * 16), n_launches * 16)
    per_launch = max(16, total // n_launches)

    spec = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=80,
                size_cov=0.0,
                mem_ratio=0.18,
                locality=0.3,
                coalesce_mean=2.0,
                active_mean=32.0,
                pattern="gather",
                working_set=1 << 23,
                locality_jitter=0.07,
                coalesce_jitter=0.20,
                fp_ratio=0.15,
            ),
        ),
        warps_per_block=4,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    return build_kernel(
        "stream", "rodinia", "regular", [spec] * n_launches, seed
    )


__all__ = ["build_cfd", "build_kmeans", "build_hotspot", "build_stream"]
