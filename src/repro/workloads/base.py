"""Synthetic GPGPU workload framework.

The paper evaluates 12 CUDA benchmarks (Table VI) executed on real GPUs
and traced with GPUOcelot.  We have neither the GPUs nor the suites, so
each benchmark is replaced by a *parameterized synthetic kernel* that
reproduces the statistical structure the sampling techniques respond to:

* the launch schedule (how many launches, how similar they are —
  inter-launch sampling's signal);
* the per-thread-block instruction counts, memory intensity, control
  divergence and coalescing, laid out in contiguous *segments* of
  thread-block IDs (intra-launch sampling's signal: Fig. 6's
  piecewise-constant stall probability);
* outlier thread blocks (mst's story: Section V-B);
* address streams with controllable locality, so cache warm-up and DRAM
  contention behave qualitatively like the real memory hierarchy.

Everything is synthesized deterministically from counter-based RNG keyed
by (kernel seed, launch, thread block), so regeneration is cheap and
reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.trace import (
    OP_ALU,
    OP_BRANCH,
    OP_FP,
    OP_MEM_GLOBAL,
    OP_SFU,
    BlockTrace,
    KernelTrace,
    LaunchTrace,
    WarpTrace,
)
from repro.trace.blocktrace import BlockStats

#: Cache-line granularity of generated addresses (Table V: 128 B lines).
LINE = 128

#: Version of the synthetic-trace generator.  Part of the profile-cache
#: key: bump it whenever block synthesis changes so stale cached
#: profiles are never reused for regenerated traces.
GENERATOR_VERSION = 1

#: Bytes reserved per launch in the synthetic address space, so distinct
#: launches never alias in the caches.
_LAUNCH_SPAN = 1 << 34


def kernel_seed(name: str, master_seed: int) -> int:
    """Stable 63-bit seed for a kernel derived from its name and the
    experiment master seed (never Python's salted ``hash``)."""
    digest = hashlib.blake2b(
        f"{name}:{master_seed}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") >> 1


def scaled(count: int, scale: float, floor: int = 1) -> int:
    """Scale a Table VI thread-block count, never dropping below
    ``floor`` (small kernels stay at a size where epochs still exist)."""
    return max(floor, min(count, int(round(count * scale))))


@dataclass(frozen=True)
class Segment:
    """A contiguous run of thread blocks sharing execution behaviour.

    Attributes
    ----------
    count:
        Number of thread blocks in the segment.
    insts_per_warp:
        Nominal warp instructions per warp for blocks in this segment.
    size_cov:
        Coefficient of variation of a per-block lognormal size multiplier
        (0 for regular kernels; >0 models irregular per-block work).
    mem_ratio:
        Fraction of warp instructions that are global-memory accesses —
        the realized stall probability ``p`` of Eq. 5.
    locality:
        Fraction of memory instructions that hit a small per-segment
        reuse window (L1-resident after warm-up).  Low locality means
        streaming/gather traffic that goes to L2/DRAM.
    coalesce_mean:
        Mean memory transactions per memory instruction (1 = perfectly
        coalesced, up to 32 = fully divergent).
    active_mean:
        Mean active threads per warp instruction (32 = no control
        divergence).
    pattern:
        Address pattern for non-local accesses: ``"stream"`` walks the
        working set sequentially, ``"gather"`` addresses it at random.
    working_set:
        Bytes of the streaming/gather window.
    reuse_window:
        Size in bytes of the shared reuse window that ``locality``
        accesses hit; the default fits in the 16 KiB L1, so locality
        traffic becomes L1-resident once warm.
    outlier_rate / outlier_scale:
        Fraction of blocks that are outliers and their size multiplier
        (mst-style straggler thread blocks).
    fp_ratio / sfu_ratio:
        Fraction of instructions that are long-latency FP / SFU ops.
    """

    count: int
    insts_per_warp: int = 64
    size_cov: float = 0.0
    mem_ratio: float = 0.10
    locality: float = 0.5
    coalesce_mean: float = 1.0
    active_mean: float = 32.0
    pattern: str = "stream"
    working_set: int = 1 << 24
    reuse_window: int = 8 << 10
    outlier_rate: float = 0.0
    outlier_scale: float = 1.0
    fp_ratio: float = 0.05
    sfu_ratio: float = 0.0
    #: Per-block jitter of ``locality`` (absolute std, clipped to [0, 1])
    #: and ``coalesce_mean`` (relative std).  This is performance
    #: variation *invisible to basic-block vectors* — the same code
    #: touching data with slightly different locality/coalescing — which
    #: is exactly the paper's argument for why BBVs under-describe GPGPU
    #: performance (Section III).
    locality_jitter: float = 0.0
    coalesce_jitter: float = 0.0
    #: Amplitude of a slow sinusoidal drift of ``locality`` across the
    #: segment (two periods per segment).  Models spatially correlated
    #: data locality across the grid: neighbouring blocks behave alike,
    #: distant blocks differ — again invisible to BBVs, and too gentle
    #: for the Eq. 5 stall probability to see.
    locality_drift: float = 0.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("segment with no thread blocks")
        if not 0 <= self.mem_ratio < 1:
            raise ValueError("mem_ratio must be in [0, 1)")
        if self.pattern not in ("stream", "gather"):
            raise ValueError(f"unknown address pattern {self.pattern!r}")
        if self.insts_per_warp < 8:
            raise ValueError("insts_per_warp must be >= 8")
        if self.reuse_window < LINE:
            raise ValueError("reuse_window must hold at least one line")


@dataclass(frozen=True)
class LaunchSpec:
    """Specification of one kernel launch: its segments plus code shape."""

    segments: tuple[Segment, ...]
    warps_per_block: int = 8
    #: first basic-block ID used by this launch's code variant; launches
    #: that run different code paths use different offsets so BBVs can
    #: tell them apart (as they would for real kernels).
    bb_offset: int = 0
    #: number of distinct basic blocks in this launch's loop body.
    bb_body: int = 6
    #: None: each launch processes fresh data (frontier kernels), so
    #: block synthesis is keyed per launch.  An integer: every launch
    #: with this key processes the *same* data (iterative kernels like
    #: spmv/cfd/lbm re-reading one matrix/mesh), so block i is identical
    #: across those launches — which is exactly why such launches have
    #: homogeneous performance and cluster together.
    data_key: int | None = None
    #: For data-keyed launches: the fraction of blocks whose data is
    #: nevertheless launch-specific (boundary values updated between
    #: iterations), restoring the small launch-to-launch timing jitter a
    #: real iterative kernel has.
    perturb: float = 0.0

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("launch with no segments")
        if self.warps_per_block <= 0:
            raise ValueError("warps_per_block must be positive")

    @property
    def num_blocks(self) -> int:
        return sum(s.count for s in self.segments)


@lru_cache(maxsize=512)
def _skeleton(seg: Segment, spec: LaunchSpec, n: int):
    """Shared static instruction skeleton for blocks of one segment at
    size ``n``: op classes, basic-block labels, memory positions, and
    (for divergence-free segments) a shared active-thread column.

    The arrays are marked read-only and shared across every warp and
    block with the same (segment, spec, n) — the dynamic per-warp
    columns (addresses, transaction counts) are generated per block.
    """
    op = np.full(n, OP_ALU, dtype=np.uint8)
    if seg.fp_ratio > 0:
        step = max(2, int(round(1.0 / seg.fp_ratio)))
        op[0::step] = OP_FP
    if seg.sfu_ratio > 0:
        step = max(2, int(round(1.0 / seg.sfu_ratio)))
        op[1::step] = OP_SFU
    # Loop back-edges: one branch per basic-block traversal.
    bstep = max(4, n // max(1, spec.bb_body))
    op[bstep - 1::bstep] = OP_BRANCH

    # Memory instructions evenly spaced (spacing >= 1 keeps them unique)
    # so the realized stall probability is steady across execution.
    m = int(round(n * seg.mem_ratio))
    if m > 0:
        pos = np.minimum(
            ((np.arange(m) + 0.5) * (n / m)).astype(np.int64), n - 1
        )
        op[pos] = OP_MEM_GLOBAL
    else:
        pos = np.empty(0, dtype=np.int64)

    # Basic-block labels: prologue, cyclic loop body, epilogue.
    bb = np.empty(n, dtype=np.uint16)
    bb[:] = spec.bb_offset + 2 + (np.arange(n) % max(1, spec.bb_body))
    bb[: min(4, n)] = spec.bb_offset  # prologue
    bb[-min(4, n):] = spec.bb_offset + 1  # epilogue

    active_const = None
    if seg.active_mean >= 31.5:
        active_const = np.full(n, 32, dtype=np.uint8)
        active_const.setflags(write=False)
    op.setflags(write=False)
    bb.setflags(write=False)
    pos.setflags(write=False)
    return op, bb, pos, active_const


def _synthesize_block(
    tb_id: int,
    seg: Segment,
    spec: LaunchSpec,
    seed: int,
    data_id: int,
    seg_pos: int,
    addr_base: int,
    num_bbs: int,
) -> BlockTrace:
    """Synthesize one thread block's trace from its segment parameters."""
    rng = np.random.Generator(
        np.random.Philox(key=[seed, (data_id << 32) | tb_id])
    )

    # Per-block size multiplier: lognormal jitter plus rare outliers.
    size_mult = 1.0
    if seg.size_cov > 0:
        sigma = float(np.sqrt(np.log1p(seg.size_cov**2)))
        size_mult = float(rng.lognormal(-0.5 * sigma * sigma, sigma))
    if seg.outlier_rate > 0 and rng.random() < seg.outlier_rate:
        size_mult *= seg.outlier_scale
    n = max(8, int(round(seg.insts_per_warp * size_mult)))

    # All warps of a block execute the same code, so the instruction
    # skeleton (op classes, memory positions, basic blocks) is shared and
    # only the data-dependent columns (addresses, coalescing, divergence)
    # vary per warp.  Everything is generated as (warps, n) matrices in
    # one pass — the per-warp Python loop only slices views out.
    W = spec.warps_per_block
    op, bb, pos, active_const = _skeleton(seg, spec, n)
    m = len(pos)

    # Per-block behavioral jitter (same code, slightly different data
    # locality/coalescing — invisible to BBVs).
    locality = seg.locality
    if seg.locality_drift > 0:
        phase = 4.0 * np.pi * seg_pos / max(1, seg.count)
        locality += seg.locality_drift * float(np.sin(phase))
    if seg.locality_jitter > 0:
        locality += float(rng.normal(0.0, seg.locality_jitter))
    locality = float(np.clip(locality, 0.0, 1.0))
    coalesce = seg.coalesce_mean
    if seg.coalesce_jitter > 0:
        coalesce = max(
            1.0, coalesce * (1.0 + float(rng.normal(0.0, seg.coalesce_jitter)))
        )

    mem_req = np.zeros((W, n), dtype=np.uint8)
    addr = np.zeros((W, n), dtype=np.int64)
    spread = np.zeros((W, n), dtype=np.int64)
    if m > 0:
        reqs = np.clip(
            1 + rng.poisson(max(0.0, coalesce - 1.0), (W, m)), 1, 32
        ).astype(np.uint8)
        mem_req[:, pos] = reqs

        seg_window = seg.reuse_window
        local = rng.random((W, m)) < locality
        # Reused window: small per-segment region, L1-resident once warm.
        a = addr_base + rng.integers(0, seg_window // LINE, (W, m)) * LINE
        far_base = addr_base + seg_window
        if seg.pattern == "stream":
            # Each warp walks the working set sequentially from its own
            # hash-scattered start line.  A naive `warp_index * m` start
            # would put every warp's walk at the same position modulo
            # the DRAM bank count, hammering a few banks in lockstep —
            # real streaming kernels spread their tiles across banks.
            ws_lines = max(1, seg.working_set // LINE)
            gid = (tb_id * W + np.arange(W, dtype=np.int64))[:, None]
            starts = (gid * np.int64(2654435761)) % ws_lines
            far = far_base + ((starts + np.arange(m)[None, :]) % ws_lines) * LINE
        else:  # gather
            far = far_base + (
                rng.integers(0, max(1, seg.working_set // LINE), (W, m)) * LINE
            )
        addr[:, pos] = np.where(local, a, far)
        # Divergent instructions scatter their transactions widely;
        # coalesced ones touch adjacent lines.
        sp = np.where(
            reqs > 2, LINE * rng.integers(4, 64, (W, m)), np.int64(LINE)
        )
        spread[:, pos] = sp

    # Control divergence: per-instruction active thread counts.
    if active_const is not None:
        active_rows = [active_const] * W
        thread_insts = 32 * W * n
    else:
        active = np.clip(
            np.rint(rng.normal(seg.active_mean, seg.active_mean * 0.25, (W, n))),
            1,
            32,
        ).astype(np.uint8)
        active_rows = list(active)
        thread_insts = int(active.sum(dtype=np.int64))

    warps = [
        WarpTrace.from_columns(
            op, active_rows[w], mem_req[w], addr[w], spread[w], bb, validate=False
        )
        for w in range(W)
    ]
    block = BlockTrace(tb_id, warps)
    # Stats fall out of the batched matrices for free; pre-setting them
    # spares the profiler 6 x warps tiny reductions per block.
    block._stats = BlockStats(
        tb_id=tb_id,
        warp_insts=W * n,
        thread_insts=thread_insts,
        mem_requests=int(mem_req.sum(dtype=np.int64)),
    )
    return block


@lru_cache(maxsize=512)
def _segment_bounds(spec: LaunchSpec) -> np.ndarray:
    """Cumulative segment end thread-block IDs of a launch spec."""
    bounds = np.cumsum([s.count for s in spec.segments])
    bounds.setflags(write=False)
    return bounds


@dataclass(frozen=True)
class SpecBlockFactory:
    """Picklable block factory for spec-synthesized launches.

    Equivalent to the closure it replaces, but a plain dataclass of
    immutable fields so :class:`LaunchTrace` objects built from specs can
    cross process boundaries (the batch execution engine ships launches
    to worker processes).
    """

    spec: LaunchSpec
    seed: int
    launch_id: int
    data_id: int
    num_bbs: int

    def __call__(self, tb_id: int) -> BlockTrace:
        spec = self.spec
        bounds = _segment_bounds(spec)
        seg_index = int(np.searchsorted(bounds, tb_id, side="right"))
        seg = spec.segments[seg_index]
        seg_start = 0 if seg_index == 0 else int(bounds[seg_index - 1])
        addr_base = self.data_id * _LAUNCH_SPAN
        seg_base = addr_base + seg_index * (
            _LAUNCH_SPAN // max(1, len(spec.segments))
        )
        key_id = self.data_id
        perturb_cut = int(spec.perturb * 10_000)
        if perturb_cut and ((tb_id * 2654435761) % 10_000) < perturb_cut:
            key_id = 1_000_000 + self.launch_id  # launch-specific data
        return _synthesize_block(
            tb_id,
            seg,
            spec,
            self.seed,
            key_id,
            tb_id - seg_start,
            int(seg_base),
            self.num_bbs,
        )


def make_launch(
    kernel_name: str,
    launch_id: int,
    spec: LaunchSpec,
    seed: int,
    num_bbs: int,
) -> LaunchTrace:
    """Build a lazily synthesized :class:`LaunchTrace` from a spec."""
    # Launches over fresh data get their own RNG stream and address
    # range; launches sharing a data_key are bit-identical re-executions.
    data_id = spec.data_key if spec.data_key is not None else launch_id
    factory = SpecBlockFactory(
        spec=spec,
        seed=seed,
        launch_id=launch_id,
        data_id=data_id,
        num_bbs=num_bbs,
    )

    return LaunchTrace(
        kernel_name=kernel_name,
        launch_id=launch_id,
        num_blocks=spec.num_blocks,
        warps_per_block=spec.warps_per_block,
        factory=factory,
        num_bbs=num_bbs,
    )


def build_kernel(
    name: str,
    suite: str,
    kind: str,
    specs: list[LaunchSpec],
    master_seed: int,
) -> KernelTrace:
    """Assemble a :class:`KernelTrace` from per-launch specs."""
    seed = kernel_seed(name, master_seed)
    num_bbs = max(s.bb_offset + s.bb_body + 2 for s in specs)
    launches = [
        make_launch(name, i, spec, seed, num_bbs) for i, spec in enumerate(specs)
    ]
    return KernelTrace(name=name, suite=suite, kind=kind, launches=launches)


__all__ = [
    "LINE",
    "GENERATOR_VERSION",
    "Segment",
    "LaunchSpec",
    "SpecBlockFactory",
    "build_kernel",
    "make_launch",
    "kernel_seed",
    "scaled",
]
