"""LonestarGPU-style irregular graph kernels: bfs, sssp, mst.

These are the paper's flagship *irregular* kernels (Table VI, type I):
frontier-driven graph algorithms whose launches differ in size (each
launch processes one frontier) and whose thread blocks differ in work
(vertex degrees), including mst's outlier thread blocks that defeat
BBV-based sampling (Section V-B).

Frontier sizes are *quantized*: BFS-like traversals of small-diameter
graphs spend several levels at comparable frontier sizes, so launches
fall into a handful of size classes — which is what lets inter-launch
clustering fold some of them together while the rest of the savings come
from intra-launch sampling (the bfs bar of Fig. 11)."""

from __future__ import annotations

import numpy as np

from repro.trace import KernelTrace
from repro.workloads.base import LaunchSpec, Segment, build_kernel, scaled


def _quantized_counts(
    total: int, weights: np.ndarray, levels: int, min_per: int
) -> list[int]:
    """Distribute ``total`` blocks over launches proportionally to
    ``weights`` snapped to ``levels`` discrete size classes."""
    weights = np.asarray(weights, dtype=float)
    lo, hi = weights.min(), weights.max()
    if hi > lo:
        grid = np.linspace(lo, hi, levels)
        snapped = grid[
            np.argmin(np.abs(weights[:, None] - grid[None, :]), axis=1)
        ]
    else:
        snapped = weights
    counts = np.maximum(min_per, np.rint(total * snapped / snapped.sum()))
    counts = counts.astype(np.int64)
    # Flooring inflates the total; take the excess back from the largest
    # launches so the kernel stays calibrated to its Table VI count.
    excess = int(counts.sum()) - total
    order = np.argsort(-counts)
    i = 0
    while excess > 0:
        idx = order[i % len(order)]
        take = min(excess, max(0, int(counts[idx]) - min_per))
        counts[idx] -= take
        excess -= take
        i += 1
        if i > 10 * len(order):
            break
    return [int(c) for c in counts]


def build_bfs(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Breadth-first search: 13 frontier launches whose sizes follow a
    bell profile quantized to three classes; hub-vertex blocks are
    memory-divergent."""
    n_launches = 13
    total = scaled(10619, scale, floor=n_launches * 380)
    levels = np.arange(n_launches)
    weights = np.exp(-(((levels - 6.0) / 2.8) ** 2)) + 0.06
    counts = _quantized_counts(total, weights, levels=3, min_per=120)
    level_of = {c: i for i, c in enumerate(sorted(set(counts)))}

    specs = []
    for count in counts:
        hub = max(1, int(count * 0.3))
        tail = count - hub
        segments = [
            # Hub region: high-degree vertices, divergent gathers.
            Segment(
                count=hub,
                insts_per_warp=48,
                size_cov=0.22,
                mem_ratio=0.22,
                locality=0.15,
                coalesce_mean=7.0,
                active_mean=22.0,
                pattern="gather",
                working_set=1 << 25,
                locality_jitter=0.05,
                coalesce_jitter=0.10,
            ),
        ]
        if tail > 0:
            segments.append(
                # Low-degree tail: lighter, better-behaved accesses.
                Segment(
                    count=tail,
                    insts_per_warp=36,
                    size_cov=0.18,
                    mem_ratio=0.13,
                    locality=0.35,
                    coalesce_mean=3.0,
                    active_mean=26.0,
                    pattern="gather",
                    working_set=1 << 24,
                    locality_jitter=0.05,
                    coalesce_jitter=0.10,
                )
            )
        specs.append(
            LaunchSpec(
                segments=tuple(segments),
                warps_per_block=16,
                bb_offset=0,
                data_key=level_of[count],
                perturb=0.10,
            )
        )
    return build_kernel("bfs", "lonestar", "irregular", specs, seed)


def build_sssp(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Single-source shortest paths: 49 relaxation launches — a
    rise / plateau / fall frontier profile quantized to four size
    classes, so the long plateau folds into few inter-launch clusters."""
    n_launches = 49
    total = scaled(12691, scale, floor=n_launches * 90)
    i = np.arange(n_launches, dtype=float)
    rise = np.minimum(i / 8.0, 1.0)
    fall = np.minimum((n_launches - 1 - i) / 12.0, 1.0)
    weights = np.minimum(rise, fall) + 0.05
    counts = _quantized_counts(total, weights, levels=4, min_per=48)

    # Launches at the same frontier level relax statistically
    # exchangeable frontiers: share the synthesized block population per
    # level (with a perturbed fraction) so the level structure — not the
    # CoV estimator's sampling noise — drives inter-launch clustering.
    level_of = {c: i for i, c in enumerate(sorted(set(counts)))}

    specs = []
    for count in counts:
        specs.append(
            LaunchSpec(
                segments=(
                    Segment(
                        count=count,
                        insts_per_warp=40,
                        size_cov=0.25,
                        mem_ratio=0.18,
                        locality=0.2,
                        coalesce_mean=5.0,
                        active_mean=24.0,
                        pattern="gather",
                        working_set=1 << 25,
                        locality_jitter=0.05,
                        coalesce_jitter=0.10,
                    ),
                ),
                warps_per_block=16,
                bb_offset=0,
                data_key=level_of[count],
                perturb=0.08,
            )
        )
    return build_kernel("sssp", "lonestar", "irregular", specs, seed)


def build_mst(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Minimum spanning tree (Boruvka): launches shrink geometrically as
    components merge, and a few *outlier* thread blocks carry an order of
    magnitude more instructions than their peers — the case where BBVs
    miss TLP changes (Ideal-SimPoint's 8.5% error, Section V-B), and
    where TBPoint must simulate the outlier epochs (55% sample size)."""
    n_launches = 10
    total = scaled(2331, scale, floor=n_launches * 110)
    weights = 0.62 ** np.arange(n_launches, dtype=float)
    counts = _quantized_counts(total, weights, levels=5, min_per=64)

    specs = []
    for count in counts:
        specs.append(
            LaunchSpec(
                segments=(
                    Segment(
                        count=count,
                        insts_per_warp=44,
                        size_cov=0.18,
                        mem_ratio=0.20,
                        locality=0.2,
                        coalesce_mean=6.0,
                        active_mean=23.0,
                        pattern="gather",
                        working_set=1 << 24,
                        # Straggler blocks: same code, several times the work.
                        outlier_rate=0.015,
                        outlier_scale=4.0,
                    ),
                ),
                warps_per_block=16,
                bb_offset=0,
            )
        )
    return build_kernel("mst", "lonestar", "irregular", specs, seed)


__all__ = ["build_bfs", "build_sssp", "build_mst"]
