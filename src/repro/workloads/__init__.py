"""Synthetic GPGPU workloads calibrated to the paper's Table VI."""

from repro.workloads.base import LaunchSpec, Segment, build_kernel, scaled
from repro.workloads.registry import (
    ALL_KERNELS,
    IRREGULAR_KERNELS,
    REGULAR_KERNELS,
    TABLE_VI,
    BenchmarkInfo,
    benchmark_info,
    get_workload,
)

__all__ = [
    "Segment",
    "LaunchSpec",
    "build_kernel",
    "scaled",
    "ALL_KERNELS",
    "IRREGULAR_KERNELS",
    "REGULAR_KERNELS",
    "TABLE_VI",
    "BenchmarkInfo",
    "benchmark_info",
    "get_workload",
]
