"""Workload registry and Table VI metadata.

``get_workload(name, scale, seed)`` builds any of the 12 evaluated
kernels; :data:`TABLE_VI` records the paper's per-benchmark metadata
(suite, type, launch count, thread-block count) that the generators are
calibrated against.

Where Table VI of the paper scan is unreadable (some launch counts), the
values below are chosen from the surrounding text: hotspot has a single
launch ("binomial and hotspot ... only have one kernel launch",
Section V-B), streamcluster has "hundreds of homogeneous kernel
launches", cfd has 100, kmeans 30, sssp 49, spmv 50.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.trace import KernelTrace
from repro.workloads.base import GENERATOR_VERSION
from repro.workloads.lonestar import build_bfs, build_mst, build_sssp
from repro.workloads.parboil import build_lbm, build_mri, build_spmv
from repro.workloads.rodinia import (
    build_cfd,
    build_hotspot,
    build_kmeans,
    build_stream,
)
from repro.workloads.sdk import build_black, build_conv


@dataclass(frozen=True)
class BenchmarkInfo:
    """One Table VI row."""

    name: str
    full_name: str
    suite: str
    kind: str  # "regular" (type II) or "irregular" (type I)
    launches: int
    blocks: int  # paper-scale total thread blocks


#: Table VI of the paper, in evaluation order.
TABLE_VI: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("bfs", "BFS", "lonestar", "irregular", 13, 10619),
    BenchmarkInfo("sssp", "SSSP", "lonestar", "irregular", 49, 12691),
    BenchmarkInfo("mst", "MST", "lonestar", "irregular", 10, 2331),
    BenchmarkInfo("mri", "MRI-Gridding", "parboil", "irregular", 4, 18158),
    BenchmarkInfo("spmv", "SPMV", "parboil", "irregular", 50, 38250),
    BenchmarkInfo("lbm", "LBM", "parboil", "regular", 8, 108000),
    BenchmarkInfo("cfd", "CFD", "rodinia", "regular", 100, 50600),
    BenchmarkInfo("kmeans", "Kmeans", "rodinia", "regular", 30, 58080),
    BenchmarkInfo("hotspot", "Hotspot", "rodinia", "regular", 1, 1849),
    BenchmarkInfo("stream", "StreamCluster", "rodinia", "regular", 150, 2688),
    BenchmarkInfo("black", "BlackScholes", "sdk", "regular", 8, 41760),
    BenchmarkInfo("conv", "convolutionSeparable", "sdk", "regular", 16, 202752),
)

_BUILDERS: dict[str, Callable[[float, int], KernelTrace]] = {
    "bfs": build_bfs,
    "sssp": build_sssp,
    "mst": build_mst,
    "mri": build_mri,
    "spmv": build_spmv,
    "lbm": build_lbm,
    "cfd": build_cfd,
    "kmeans": build_kmeans,
    "hotspot": build_hotspot,
    "stream": build_stream,
    "black": build_black,
    "conv": build_conv,
}

#: All benchmark names in Table VI order.
ALL_KERNELS: tuple[str, ...] = tuple(info.name for info in TABLE_VI)

#: The irregular (type I) subset.
IRREGULAR_KERNELS: tuple[str, ...] = tuple(
    info.name for info in TABLE_VI if info.kind == "irregular"
)

#: The regular (type II) subset.
REGULAR_KERNELS: tuple[str, ...] = tuple(
    info.name for info in TABLE_VI if info.kind == "regular"
)


def benchmark_info(name: str) -> BenchmarkInfo:
    """Table VI metadata for one benchmark."""
    for info in TABLE_VI:
        if info.name == name:
            return info
    raise KeyError(f"unknown benchmark {name!r}; known: {ALL_KERNELS}")


def get_workload(name: str, scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Build the named benchmark's synthetic kernel trace.

    Parameters
    ----------
    name:
        One of :data:`ALL_KERNELS`.
    scale:
        Thread-block count scale factor in (0, 1]; 1.0 is paper scale.
        Small kernels have floors so epochs still exist at low scales.
    seed:
        Master seed; traces are fully deterministic given (name, scale,
        seed).
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {ALL_KERNELS}") from None
    kernel = builder(scale, seed)
    kernel.provenance = ("workload", name, float(scale), int(seed), GENERATOR_VERSION)
    return kernel


__all__ = [
    "BenchmarkInfo",
    "TABLE_VI",
    "ALL_KERNELS",
    "IRREGULAR_KERNELS",
    "REGULAR_KERNELS",
    "benchmark_info",
    "get_workload",
]
