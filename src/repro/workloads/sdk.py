"""CUDA-SDK-style kernels: black(Scholes), conv(olutionSeparable).

Both regular: uniform thread blocks, homogeneous launch schedules.
convolutionSeparable alternates row/column passes, giving exactly two
inter-launch clusters.
"""

from __future__ import annotations

from repro.trace import KernelTrace
from repro.workloads.base import LaunchSpec, Segment, build_kernel, scaled


def build_black(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """BlackScholes option pricing: 8 identical compute-bound launches
    with perfectly coalesced streaming loads."""
    n_launches = 8
    total = scaled(41760, scale, floor=n_launches * 1400)
    per_launch = total // n_launches

    spec = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=64,
                size_cov=0.0,
                mem_ratio=0.06,
                locality=0.2,
                coalesce_mean=1.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 26,
                locality_jitter=0.06,
                coalesce_jitter=0.20,
                fp_ratio=0.30,
                sfu_ratio=0.10,
            ),
        ),
        warps_per_block=6,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    return build_kernel("black", "sdk", "regular", [spec] * n_launches, seed)


def build_conv(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """convolutionSeparable: 16 launches alternating row pass (coalesced
    streaming) and column pass (strided, partially coalesced) — two
    inter-launch clusters, uniform thread blocks within each."""
    n_launches = 16
    total = scaled(202752, scale, floor=n_launches * 500)
    per_launch = total // n_launches

    rows = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=32,
                size_cov=0.0,
                mem_ratio=0.18,
                locality=0.35,
                coalesce_mean=1.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 26,
                locality_jitter=0.06,
                coalesce_jitter=0.20,
                fp_ratio=0.15,
            ),
        ),
        warps_per_block=6,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    cols = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=32,
                size_cov=0.0,
                mem_ratio=0.18,
                locality=0.35,
                coalesce_mean=4.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 26,
                locality_jitter=0.06,
                coalesce_jitter=0.20,
                fp_ratio=0.15,
            ),
        ),
        warps_per_block=6,
        bb_offset=10,  # column-pass code variant
        data_key=1,
        perturb=0.06,
    )
    specs = [rows if i % 2 == 0 else cols for i in range(n_launches)]
    return build_kernel("conv", "sdk", "regular", specs, seed)


__all__ = ["build_black", "build_conv"]
