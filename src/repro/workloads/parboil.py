"""Parboil-style kernels: mri (gridding), spmv, lbm.

mri and spmv are irregular (per-block work follows data density / row
lengths); lbm is a textbook regular streaming kernel.
"""

from __future__ import annotations

from repro.trace import KernelTrace
from repro.workloads.base import LaunchSpec, Segment, build_kernel, scaled


def build_mri(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """MRI gridding: 4 launches; sample bins are roughly sorted by
    density, so thread-block work decays across the launch in two broad
    plateaus — long homogeneous regions separated by a density step."""
    n_launches = 4
    total = scaled(18158, scale, floor=n_launches * 2000)
    per_launch = total // n_launches

    specs = []
    for _ in range(n_launches):
        dense = max(1, int(per_launch * 0.35))
        sparse = per_launch - dense
        segments = [
            Segment(
                count=dense,
                insts_per_warp=88,
                size_cov=0.18,
                mem_ratio=0.12,
                locality=0.35,
                coalesce_mean=4.0,
                active_mean=28.0,
                pattern="gather",
                working_set=1 << 25,
                locality_jitter=0.06,
                coalesce_jitter=0.15,
            ),
            Segment(
                count=sparse,
                insts_per_warp=36,
                size_cov=0.12,
                mem_ratio=0.09,
                locality=0.45,
                coalesce_mean=2.0,
                active_mean=30.0,
                pattern="gather",
                working_set=1 << 23,
                locality_jitter=0.06,
                coalesce_jitter=0.15,
            ),
        ]
        specs.append(
            LaunchSpec(segments=tuple(segments), warps_per_block=8, bb_offset=0)
        )
    return build_kernel("mri", "parboil", "irregular", specs, seed)


def build_spmv(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Sparse matrix-vector multiply: 50 identical launches (iterative
    solver) — a single inter-launch cluster — but row-length bands make
    the interior of each launch heterogeneous."""
    n_launches = 50
    total = scaled(38250, scale, floor=n_launches * 90)
    per_launch = total // n_launches

    dense = max(1, int(per_launch * 0.2))
    medium = max(1, int(per_launch * 0.5))
    sparse = per_launch - dense - medium
    segments = [
        Segment(
            count=dense,
            insts_per_warp=72,
            size_cov=0.18,
            mem_ratio=0.22,
            locality=0.25,
            coalesce_mean=5.0,
            active_mean=27.0,
            pattern="gather",
            working_set=1 << 25,
            locality_jitter=0.06,
            coalesce_jitter=0.15,
        ),
        Segment(
            count=medium,
            insts_per_warp=44,
            size_cov=0.12,
            mem_ratio=0.16,
            locality=0.3,
            coalesce_mean=3.0,
            active_mean=29.0,
            pattern="gather",
            working_set=1 << 24,
            locality_jitter=0.06,
            coalesce_jitter=0.15,
        ),
    ]
    if sparse > 0:
        segments.append(
            Segment(
                count=sparse,
                insts_per_warp=24,
                size_cov=0.10,
                mem_ratio=0.12,
                locality=0.35,
                coalesce_mean=2.0,
                active_mean=30.0,
                pattern="gather",
                working_set=1 << 23,
                locality_jitter=0.06,
                coalesce_jitter=0.15,
            )
        )
    spec = LaunchSpec(
        segments=tuple(segments),
        warps_per_block=8,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    return build_kernel(
        "spmv", "parboil", "irregular", [spec] * n_launches, seed
    )


def build_lbm(scale: float = 1.0, seed: int = 2014) -> KernelTrace:
    """Lattice-Boltzmann: 8 identical launches of uniform, perfectly
    coalesced streaming thread blocks — the canonical regular kernel."""
    n_launches = 8
    total = scaled(108000, scale, floor=n_launches * 450)
    per_launch = total // n_launches

    spec = LaunchSpec(
        segments=(
            Segment(
                count=per_launch,
                insts_per_warp=48,
                size_cov=0.0,
                mem_ratio=0.25,
                locality=0.1,
                coalesce_mean=1.0,
                active_mean=32.0,
                pattern="stream",
                working_set=1 << 26,
                locality_jitter=0.05,
                coalesce_jitter=0.20,
                fp_ratio=0.15,
            ),
        ),
        warps_per_block=6,
        bb_offset=0,
        data_key=0,
        perturb=0.06,
    )
    return build_kernel("lbm", "parboil", "regular", [spec] * n_launches, seed)


__all__ = ["build_mri", "build_spmv", "build_lbm"]
