"""Table I — GPU execution time vs projected simulation time.

The paper motivates sampling with Table I: native GPU runtimes of a few
seconds become days-to-weeks of cycle-level simulation (an ~80,000x
slowdown for Macsim on Ivy Bridge).  We measure *this* simulator's
throughput on a calibration kernel and project the same table: the
paper's GPU timings (constants from Burtscher et al.) divided by the
measured slowdown.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    GPU_WARP_INSTS_PER_SEC,
    measure_simulator_throughput,
    run_table1,
)
from repro.analysis.report import render_table

from conftest import emit


def test_table1_projected_simulation_time(benchmark):
    sim_rate = benchmark.pedantic(
        measure_simulator_throughput,
        kwargs={"scale": 0.25},
        rounds=1,
        iterations=1,
    )
    rows = run_table1(sim_insts_per_sec=sim_rate)

    emit(render_table(
        ["benchmark", "GPU (ms)", "projected simulation", "slowdown"],
        [
            (r.benchmark, f"{r.gpu_ms:,.0f}", r.human_sim_time,
             f"{r.slowdown:,.0f}x")
            for r in rows
        ],
        title=(
            f"Table I — measured simulator rate {sim_rate:,.0f} warp-inst/s "
            f"vs assumed GPU rate {GPU_WARP_INSTS_PER_SEC:,.0f}/s"
        ),
    ))

    # Qualitative claim: cycle-level simulation of second-scale GPU runs
    # takes at least a day at this slowdown.
    nb = rows[0]
    assert nb.projected_sim_seconds > 86_400
    # And the slowdown is four orders of magnitude or worse (the paper's
    # C++ simulator is ~8e4x; pure Python lands in the same regime).
    assert nb.slowdown > 3_000
