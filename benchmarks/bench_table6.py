"""Table VI — the evaluated benchmarks.

Regenerates the benchmark inventory (suite, type, launch count,
thread-block count) from the synthetic generators and checks the
paper-scale block counts stay calibrated to Table VI.  Also measures
trace-generation and functional-profiling throughput (the one-time
GPUOcelot-role cost the paper amortizes).
"""

from __future__ import annotations

from repro.analysis.report import render_table
from repro.profiler import profile_kernel
from repro.workloads import TABLE_VI, get_workload

from conftest import emit


def test_table6_inventory(benchmark, experiment):
    def build_all():
        rows = []
        for info in TABLE_VI:
            kernel = get_workload(info.name, experiment.scale, experiment.seed)
            profile = profile_kernel(kernel)
            rows.append(
                (
                    info.name,
                    info.suite,
                    info.kind,
                    info.launches,
                    info.blocks,
                    kernel.num_blocks,
                    f"{profile.total_warp_insts:,}",
                )
            )
        return rows

    rows = benchmark.pedantic(build_all, rounds=1, iterations=1)
    emit(render_table(
        ["kernel", "suite", "type", "launches", "TBs (paper)",
         f"TBs (scale={experiment.scale})", "warp insts"],
        rows,
        title="Table VI — evaluated benchmarks",
    ))
    assert len(rows) == 12


def test_profiling_throughput(benchmark):
    """Blocks profiled per second (the one-time functional pass)."""
    kernel = get_workload("lbm", scale=0.0625)

    result = benchmark(lambda: profile_kernel(kernel))
    assert result.total_warp_insts > 0
