"""Batch-execution engine: serial vs parallel, cold vs warm cache.

Measures the two speedups the execution layer exists for and records
them to ``BENCH_exec.json`` at the repo root:

* fanning representative-launch simulations across worker processes
  (``jobs=N`` vs ``jobs=1``) — must be bit-identical, and ≥2x faster on
  a machine with ≥4 CPUs;
* reusing the persistent profile cache (warm vs cold) — the second run
  of any experiment performs zero ``profile_kernel`` calls.

Environment knobs: ``REPRO_BENCH_JOBS`` (default 4) and
``REPRO_BENCH_EXEC_KERNEL`` (default ``mst`` — many launches, several
clusters, so the launch fan-out has real work to spread).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.report import render_table
from repro.core.pipeline import run_tbpoint
from repro.exec import ExecutionConfig, ProfileCache
from repro.workloads import get_workload

from conftest import emit

KERNEL = os.environ.get("REPRO_BENCH_EXEC_KERNEL", "mst")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.125"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_exec.json"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_parallel_speedup_and_cache_reuse(tmp_path):
    kernel = get_workload(KERNEL, scale=SCALE, seed=2014)
    cache_dir = str(tmp_path / "cache")

    # --- profile cache: cold (computes + stores) vs warm (loads) -------
    cache = ProfileCache(cache_dir)
    profile, cold_s = _timed(lambda: cache.profile(kernel))
    _, warm_s = _timed(lambda: cache.profile(kernel))
    assert cache.session_misses == 1 and cache.session_hits == 1

    # --- launch fan-out: serial vs parallel, bit-identical -------------
    serial, serial_s = _timed(lambda: run_tbpoint(
        kernel, profile=profile,
        exec_config=ExecutionConfig(jobs=1, use_cache=False),
    ))
    par, par_s = _timed(lambda: run_tbpoint(
        kernel, profile=profile,
        exec_config=ExecutionConfig(jobs=JOBS, use_cache=False),
    ))
    assert par.overall_ipc == serial.overall_ipc
    assert par.sample_size == serial.sample_size
    assert sorted(par.rep_results) == sorted(serial.rep_results)

    speedup = serial_s / par_s if par_s else float("inf")
    cache_speedup = cold_s / warm_s if warm_s else float("inf")
    record = {
        "kernel": KERNEL,
        "scale": SCALE,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "representative_launches": len(serial.rep_results),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(par_s, 4),
        "parallel_speedup": round(speedup, 3),
        # parallel_map's degrade decision: on small hosts (or tiny
        # fan-outs) the "parallel" run legitimately takes the serial
        # path, and the speedup above measures exactly that.
        "exec_path": par.exec_meta.get("path"),
        "exec_workers": par.exec_meta.get("workers"),
        "exec_reason": par.exec_meta.get("reason"),
        "profile_cold_seconds": round(cold_s, 4),
        "profile_warm_seconds": round(warm_s, 4),
        "cache_speedup": round(cache_speedup, 3),
        "identical_estimates": True,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    emit(render_table(
        ["metric", "value"],
        [(k, str(v)) for k, v in record.items()],
        title=f"Batch execution scaling ({KERNEL}, jobs={JOBS})",
    ))

    # A warm cache must beat re-profiling outright.
    assert warm_s < cold_s
    # On a single-CPU host parallel_map must degrade to serial (the old
    # behaviour spawned a useless pool and ran 0.67x).
    if (os.cpu_count() or 1) == 1:
        assert par.exec_meta["path"] == "serial"
    # The headline parallel claim only holds where the hardware can: on
    # a single-CPU box the pool adds overhead and proves nothing.
    if (os.cpu_count() or 1) >= 4 and len(serial.rep_results) >= JOBS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {JOBS} jobs, got {speedup:.2f}x"
        )
