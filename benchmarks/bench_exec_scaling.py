"""Batch-execution engine: serial vs parallel, cold vs warm cache.

Measures the two speedups the execution layer exists for and records
them to ``BENCH_exec.json`` at the repo root:

* fanning representative-launch simulations across worker processes
  (``jobs=N`` vs ``jobs=1``) — must be bit-identical, and ≥2x faster on
  a machine with ≥4 CPUs;
* reusing the persistent profile cache (warm vs cold) — the second run
  of any experiment performs zero ``profile_kernel`` calls.

It also measures the bounded-skew SM-group mode (DESIGN.md §12) on one
launch: grouped-vs-serial IPC skew at 2 and 4 groups — the accuracy
side of the parallelization ledger, recorded honestly (the default
``mst`` kernel is memory-contended, the worst case for relaxed
cross-group ordering).

Environment knobs: ``REPRO_BENCH_JOBS`` (default 4) and
``REPRO_BENCH_EXEC_KERNEL`` (default ``mst`` — many launches, several
clusters, so the launch fan-out has real work to spread).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.report import render_table
from repro.config import GPUConfig
from repro.core.pipeline import run_tbpoint
from repro.exec import ExecutionConfig, ProfileCache
from repro.sim.gpu import GPUSimulator
from repro.workloads import get_workload

from conftest import emit

KERNEL = os.environ.get("REPRO_BENCH_EXEC_KERNEL", "mst")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.125"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_exec.json"


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_parallel_speedup_and_cache_reuse(tmp_path):
    kernel = get_workload(KERNEL, scale=SCALE, seed=2014)
    cache_dir = str(tmp_path / "cache")

    # --- profile cache: cold (computes + stores) vs warm (loads) -------
    cache = ProfileCache(cache_dir)
    profile, cold_s = _timed(lambda: cache.profile(kernel))
    _, warm_s = _timed(lambda: cache.profile(kernel))
    assert cache.session_misses == 1 and cache.session_hits == 1

    # --- launch fan-out: serial vs parallel, bit-identical -------------
    serial, serial_s = _timed(lambda: run_tbpoint(
        kernel, profile=profile,
        exec_config=ExecutionConfig(jobs=1, use_cache=False),
    ))
    par, par_s = _timed(lambda: run_tbpoint(
        kernel, profile=profile,
        exec_config=ExecutionConfig(jobs=JOBS, use_cache=False),
    ))
    assert par.overall_ipc == serial.overall_ipc
    assert par.sample_size == serial.sample_size
    assert sorted(par.rep_results) == sorted(serial.rep_results)

    # --- SM-group mode: measured IPC skew on one launch ----------------
    from repro.sim.parallel import simulate_sm_groups

    launch = kernel.launches[0]
    serial_launch = GPUSimulator(GPUConfig()).run_launch(launch)
    sm_group_records = []
    for groups in (2, 4):
        run, grouped_s = _timed(lambda g=groups: simulate_sm_groups(
            launch, sm_groups=g, serial_baseline=serial_launch,
            exec_config=ExecutionConfig(jobs=JOBS, use_cache=False),
        ))
        assert run.ipc_skew is not None
        sm_group_records.append({
            "sm_groups": groups,
            "grouped_seconds": round(grouped_s, 4),
            "ipc_grouped": round(run.machine_ipc, 4),
            "ipc_serial": round(run.serial_ipc, 4),
            "ipc_skew": round(run.ipc_skew, 5),
            "exec_path": run.exec_meta.get("path"),
        })

    speedup = serial_s / par_s if par_s else float("inf")
    cache_speedup = cold_s / warm_s if warm_s else float("inf")
    record = {
        "kernel": KERNEL,
        "scale": SCALE,
        "jobs": JOBS,
        "cpus": os.cpu_count(),
        "representative_launches": len(serial.rep_results),
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(par_s, 4),
        "parallel_speedup": round(speedup, 3),
        # With explicit --jobs honored, the fan-out engages even where
        # os.cpu_count() under-reports (containers); the speedup above
        # then honestly measures what the host can actually deliver.
        "exec_path": par.exec_meta.get("path"),
        "exec_workers": par.exec_meta.get("workers"),
        "exec_reason": par.exec_meta.get("reason"),
        "profile_cold_seconds": round(cold_s, 4),
        "profile_warm_seconds": round(warm_s, 4),
        "cache_speedup": round(cache_speedup, 3),
        "sm_groups": sm_group_records,
        "identical_estimates": True,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    emit(render_table(
        ["metric", "value"],
        [(k, str(v)) for k, v in record.items()],
        title=f"Batch execution scaling ({KERNEL}, jobs={JOBS})",
    ))

    # A warm cache must beat re-profiling outright.
    assert warm_s < cold_s
    # An explicit jobs=N request over several launches must engage the
    # pool — cpu_count is advisory only (the old gating clamped jobs to
    # a container-under-reported cpu_count and silently ran serial).
    if len(serial.rep_results) > 1:
        assert par.exec_meta["path"] == "parallel" or (
            par.exec_meta["reason"] == "process pool unavailable"
        ), par.exec_meta
    # SM-group skew is workload-dependent: relaxing cross-group L2/DRAM
    # ordering removes memory contention, so the error scales with how
    # contended the kernel is — measured ~2% on spmv, ~22-28% on mst
    # (DESIGN.md §12 records the band and when the mode is usable).
    # This asserts the *measurement discipline* and a loose backstop;
    # the per-run accuracy gate is the caller's ``skew_tolerance``.
    for rec in sm_group_records:
        assert rec["ipc_skew"] < 0.35, rec
    # The headline parallel claim only holds where the hardware can: on
    # a single-CPU box the pool adds overhead and proves nothing.
    if (os.cpu_count() or 1) >= 4 and len(serial.rep_results) >= JOBS:
        assert speedup >= 2.0, (
            f"expected >=2x speedup with {JOBS} jobs, got {speedup:.2f}x"
        )
