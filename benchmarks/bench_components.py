"""Component micro-benchmarks (classic pytest-benchmark timing).

Not a paper figure — these track the throughput of the substrates so
performance regressions in the simulator, generator, profiler or
clustering show up in CI.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import hierarchical_cluster, kmeans
from repro.config import GPUConfig
from repro.profiler import profile_launch
from repro.sim import GPUSimulator
from repro.workloads import get_workload


def test_simulator_throughput(benchmark):
    """Warp instructions simulated per second on one lbm launch."""
    kernel = get_workload("lbm", scale=0.03125)
    launch = kernel.launches[0]
    sim = GPUSimulator(GPUConfig())
    launch.block(0)  # prime the generator caches

    result = benchmark.pedantic(
        lambda: sim.run_launch(launch), rounds=3, iterations=1
    )
    insts = result.issued_warp_insts
    benchmark.extra_info["warp_insts"] = insts
    benchmark.extra_info["insts_per_sec"] = insts / benchmark.stats["mean"]
    assert result.machine_ipc > 0


def test_trace_generation_throughput(benchmark):
    """Thread blocks synthesized per second."""
    kernel = get_workload("conv", scale=0.0625)
    launch = kernel.launches[0]

    def generate_100():
        launch._cache.clear()
        for tb in range(100):
            launch.block(tb)

    benchmark(generate_100)


def test_functional_profiling_throughput(benchmark):
    kernel = get_workload("kmeans", scale=0.0625)
    launch = kernel.launches[0]
    profile = benchmark(lambda: profile_launch(launch))
    assert profile.total_warp_insts > 0


def test_hierarchical_clustering_speed(benchmark):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(400, 4))
    result = benchmark(lambda: hierarchical_cluster(points, 0.5))
    assert result.num_clusters >= 1


def test_kmeans_speed(benchmark):
    rng = np.random.default_rng(1)
    points = rng.normal(size=(300, 15))
    result = benchmark(
        lambda: kmeans(points, 10, rng=np.random.default_rng(2))
    )
    assert result.k == 10
