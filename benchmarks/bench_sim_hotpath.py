"""Timing-simulator hot path: compact engine vs per-instruction reference.

Measures single-process simulator throughput (warp-insts/sec) of the
compact engine (trace interning + round pool + segment batching) against
the pre-overhaul reference engine, asserts the two produce bit-identical
``LaunchResult``\\ s, and records everything to ``BENCH_sim.json`` at the
repo root.

Methodology — every choice here exists to make the ratio mean
"simulator speed" and nothing else:

* **Pre-materialized blocks.**  ``LaunchTrace.block`` synthesizes block
  traces through a bounded LRU, so repeated runs of a >256-block launch
  would re-synthesize numpy arrays every rep — identical cost for both
  engines, pure dilution of the ratio.  The harness materializes every
  block once up front; both engines then measure pure simulation.
* **Interleaved reps, best-of-N.**  One-CPU hosts drift thermally by
  10-20%; timing all reference reps then all compact reps would bake
  the drift into the ratio.  Reps alternate reference/compact back to
  back and each side reports its best rep.
* **Warm engines.**  Both engines run once untimed first.  This also
  lets the compact engine's simulator-lifetime trace interning engage,
  exactly as it does across launches/relaunches in real experiment
  drivers (one conversion per unique trace skeleton per simulator).
* **Equivalence gate.**  Every rep's results are compared field by
  field; a throughput number for a wrong simulation is meaningless.

Environment knobs: ``REPRO_BENCH_SIM_KERNELS`` (default
``hotspot,black,kmeans``), ``REPRO_BENCH_SIM_SCALE`` (default 0.125),
``REPRO_BENCH_SIM_REPS`` (default 4).

The smoke test compares the compact engine's *relative* throughput
(speedup vs the in-process reference engine, which is machine- and
load-independent) against the checked-in baseline
``benchmarks/sim_smoke_baseline.json`` and fails on a >30% drop — the
CI guard against hot-path regressions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis.report import render_table
from repro.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.workloads import get_workload

from conftest import emit

KERNELS = [
    n.strip()
    for n in os.environ.get(
        "REPRO_BENCH_SIM_KERNELS", "hotspot,black,kmeans"
    ).split(",")
    if n.strip()
]
SCALE = float(os.environ.get("REPRO_BENCH_SIM_SCALE", "0.125"))
REPS = int(os.environ.get("REPRO_BENCH_SIM_REPS", "4"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
SMOKE_BASELINE = Path(__file__).resolve().parent / "sim_smoke_baseline.json"

#: A >30% throughput drop against the checked-in baseline fails CI.
SMOKE_TOLERANCE = 0.30


def _materialize(launch):
    """Replace the launch's LRU-backed factory with prebuilt blocks so
    reps measure the simulator, not repeated trace synthesis."""
    blocks = [launch._factory(i) for i in range(launch.num_blocks)]
    launch._factory = blocks.__getitem__
    return launch


def _fingerprint(result):
    return (
        result.issued_warp_insts,
        result.wall_cycles,
        tuple(result.per_sm_issued),
        tuple(result.per_sm_busy_cycles),
        result.skipped_warp_insts,
        result.extra_cycles,
    )


def bench_launch(launch, reps: int = REPS, gpu: GPUConfig | None = None):
    """Interleaved best-of-``reps`` comparison of both engines on one
    launch; returns the per-launch record (asserts bit-identical)."""
    gpu = gpu or GPUConfig()
    ref_sim = GPUSimulator(gpu, engine="reference")
    compact_sim = GPUSimulator(gpu, engine="compact")
    ref_res = ref_sim.run_launch(launch)  # warm-up (untimed)
    compact_res = compact_sim.run_launch(launch)
    assert _fingerprint(ref_res) == _fingerprint(compact_res)

    best_ref = best_compact = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        ref_res = ref_sim.run_launch(launch)
        t1 = time.perf_counter()
        compact_res = compact_sim.run_launch(launch)
        t2 = time.perf_counter()
        assert _fingerprint(ref_res) == _fingerprint(compact_res)
        best_ref = min(best_ref, t1 - t0)
        best_compact = min(best_compact, t2 - t1)

    insts = ref_res.issued_warp_insts
    counters = compact_res.counters
    return {
        "warp_insts": insts,
        "reference_seconds": round(best_ref, 4),
        "compact_seconds": round(best_compact, 4),
        "reference_ips": round(insts / best_ref),
        "compact_ips": round(insts / best_compact),
        "speedup": round(best_ref / best_compact, 3),
        "identical_results": True,
        "segment_insts_pct": round(
            100.0 * counters.segment_insts / max(1, insts), 2
        ),
        "interning_hit_rate": round(
            counters.interning_hits
            / max(1, counters.interning_hits + counters.interning_misses),
            4,
        ),
        "events_per_inst": round(counters.events_popped / max(1, insts), 3),
    }


def test_sim_hotpath_throughput():
    rows = []
    records = []
    for name in KERNELS:
        kernel = get_workload(name, scale=SCALE)
        launch = _materialize(kernel.launches[0])
        rec = {"kernel": name, "scale": SCALE, "launch_id": 0}
        rec.update(bench_launch(launch))
        records.append(rec)
        rows.append((
            name,
            f"{rec['warp_insts']:,}",
            f"{rec['reference_ips']:,}",
            f"{rec['compact_ips']:,}",
            f"{rec['speedup']:.2f}x",
            f"{rec['segment_insts_pct']:.1f}%",
        ))

    payload = {
        "method": (
            "pre-materialized blocks, warm engines, interleaved reps, "
            f"best of {REPS}; throughput = issued warp insts / best rep "
            "seconds; results asserted bit-identical every rep"
        ),
        "reps": REPS,
        "cpus": os.cpu_count(),
        "kernels": records,
        "best_speedup": max(r["speedup"] for r in records),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    emit(render_table(
        ["kernel", "warp insts", "ref insts/s", "compact insts/s",
         "speedup", "segment insts"],
        rows,
        title=f"Simulator hot-path throughput (scale={SCALE}, "
              f"best of {REPS})",
    ))
    for rec in records:
        assert rec["identical_results"]
        assert rec["speedup"] > 1.0, (
            f"{rec['kernel']}: compact engine slower than reference "
            f"({rec['speedup']:.2f}x)"
        )


def test_sim_hotpath_smoke():
    """CI perf smoke: one tiny kernel, compared against the checked-in
    baseline *relative* throughput (compact vs in-process reference, so
    the check holds on any machine); >30% drop fails."""
    baseline = json.loads(SMOKE_BASELINE.read_text())
    kernel = get_workload(baseline["kernel"], scale=baseline["scale"])
    launch = _materialize(kernel.launches[0])
    rec = bench_launch(launch, reps=max(REPS, 6))
    emit(render_table(
        ["metric", "value"],
        [("kernel", baseline["kernel"]),
         ("speedup now", f"{rec['speedup']:.3f}x"),
         ("speedup baseline", f"{baseline['speedup']:.3f}x"),
         ("floor", f"{baseline['speedup'] * (1 - SMOKE_TOLERANCE):.3f}x")],
        title="Simulator hot-path smoke vs baseline",
    ))
    assert rec["identical_results"]
    floor = baseline["speedup"] * (1 - SMOKE_TOLERANCE)
    assert rec["speedup"] >= floor, (
        f"hot-path regression: compact/reference speedup {rec['speedup']:.3f}x "
        f"fell below {floor:.3f}x (baseline {baseline['speedup']:.3f}x "
        f"- {SMOKE_TOLERANCE:.0%})"
    )
