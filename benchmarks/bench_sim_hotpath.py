"""Timing-simulator hot path: fast and vector systems vs reference.

Measures single-process simulator throughput (warp-insts/sec) of the
fast system — compact engine (trace interning + heap pool + segment
batching) on the batched memory front end — and of the vector system
(compact engine on the array-backed ``vector`` front end) against the
pre-overhaul reference system (per-instruction reference engine on the
per-transaction reference memory front end), plus the fast system with
the L2 organized as address-sliced shards (``sharded_vs_fast`` — the
single-process cost of the partitioned organization, DESIGN.md §12),
asserts all four produce bit-identical ``LaunchResult``\\ s (memory
statistics included), and records everything to ``BENCH_sim.json`` at
the repo root.

Methodology — every choice here exists to make the ratio mean
"simulator speed" and nothing else:

* **Pre-materialized blocks.**  ``LaunchTrace.block`` synthesizes block
  traces through a bounded LRU, so repeated runs of a >256-block launch
  would re-synthesize numpy arrays every rep — identical cost for both
  systems, pure dilution of the ratio.  The harness materializes every
  block once up front; both systems then measure pure simulation.
* **Paired reps, median of ratios.**  Shared hosts drift by 10-20% on
  scales of seconds, which no best-of-N scheme cancels.  Each rep times
  reference and compact back to back (order alternating) and yields one
  ratio; slow drift hits both sides of a pair equally, so the median of
  per-pair ratios is the robust speedup estimate.  Best-of times are
  still recorded for the absolute throughput columns.
* **Warm engines.**  Both systems run once untimed first.  This also
  lets the compact engine's simulator-lifetime trace interning engage,
  exactly as it does across launches/relaunches in real experiment
  drivers (one conversion per unique trace skeleton per simulator).
* **Equivalence gate.**  Every rep's results are compared field by
  field — memory-hierarchy statistics included, so the fast front end
  cannot drift silently; a throughput number for a wrong simulation is
  meaningless.

Each record carries the memory-hierarchy statistics (L1/L2 hit rates,
DRAM row-hit rate, mean queue delay) and the fast-path engagement
counters (batched instructions, transactions per memory instruction,
in-batch level hits, dedup savings), so a regression that silently
disables a fast path shows up as a counter going to zero even when the
timing noise hides it.

Environment knobs: ``REPRO_BENCH_SIM_KERNELS`` (default
``hotspot,black,kmeans,stream,spmv,lbm,mri`` — compute-saturated and
memory-bound), ``REPRO_BENCH_SIM_SCALE`` (default 0.125),
``REPRO_BENCH_SIM_REPS`` (default 5).

The smoke test compares *relative* throughput (fast-system speedup vs
the in-process reference, which is machine- and load-independent)
against the checked-in per-kernel baselines
``benchmarks/sim_smoke_baseline.json`` and fails on a >30% drop — the
CI guard against hot-path regressions, now covering one compute-bound
and one memory-bound kernel.
"""

from __future__ import annotations

import json
import os
import time
from statistics import median
from pathlib import Path

from repro.analysis.report import render_table
from repro.config import GPUConfig
from repro.sim.gpu import GPUSimulator
from repro.workloads import get_workload

from conftest import emit

KERNELS = [
    n.strip()
    for n in os.environ.get(
        "REPRO_BENCH_SIM_KERNELS",
        "hotspot,black,kmeans,stream,spmv,lbm,mri",
    ).split(",")
    if n.strip()
]
SCALE = float(os.environ.get("REPRO_BENCH_SIM_SCALE", "0.125"))
REPS = int(os.environ.get("REPRO_BENCH_SIM_REPS", "5"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
SMOKE_BASELINE = Path(__file__).resolve().parent / "sim_smoke_baseline.json"

#: A >30% relative-throughput drop against the checked-in baseline
#: fails CI.
SMOKE_TOLERANCE = 0.30


def _materialize(launch):
    """Replace the launch's LRU-backed factory with prebuilt blocks so
    reps measure the simulator, not repeated trace synthesis."""
    blocks = [launch._factory(i) for i in range(launch.num_blocks)]
    launch._factory = blocks.__getitem__
    return launch


#: Shard count for the sharded-L2 system row (power of two).
SHARDS = int(os.environ.get("REPRO_BENCH_SIM_SHARDS", "4"))


def _fingerprint(result):
    # Shard-local bookkeeping (probe balance) exists only under the
    # sharded organization; everything the machine observes must match.
    return (
        result.issued_warp_insts,
        result.wall_cycles,
        tuple(result.per_sm_issued),
        tuple(result.per_sm_busy_cycles),
        result.skipped_warp_insts,
        result.extra_cycles,
        tuple(sorted(
            (k, v) for k, v in result.mem_stats.items()
            if not k.startswith("l2_shard")
        )),
    )


def bench_launch(launch, reps: int = REPS, gpu: GPUConfig | None = None):
    """Paired-rep comparison of the fast, vector and sharded-L2 systems
    against the pre-overhaul reference on one launch; returns the
    per-launch record (asserts bit-identical results, memory statistics
    included)."""
    gpu = gpu or GPUConfig()
    ref_sim = GPUSimulator(gpu, engine="reference", mem_front_end="reference")
    compact_sim = GPUSimulator(gpu, engine="compact", mem_front_end="fast")
    vector_sim = GPUSimulator(gpu, engine="compact", mem_front_end="vector")
    shard_sim = GPUSimulator(
        gpu.with_(l2_shards=SHARDS), engine="compact", mem_front_end="fast"
    )
    ref_res = ref_sim.run_launch(launch)  # warm-up (untimed)
    compact_res = compact_sim.run_launch(launch)
    vector_res = vector_sim.run_launch(launch)
    shard_res = shard_sim.run_launch(launch)
    assert _fingerprint(ref_res) == _fingerprint(compact_res)
    assert _fingerprint(ref_res) == _fingerprint(vector_res)
    assert _fingerprint(ref_res) == _fingerprint(shard_res)

    ratios = []
    vec_ratios = []
    vec_vs_fast = []
    shard_vs_fast = []
    best_ref = best_compact = best_vector = best_shard = float("inf")
    # Each rep times all four systems back to back, with the order
    # rotated so slow host drift never consistently favours one side.
    orders = (
        ("ref", "fast", "vec", "shard"),
        ("shard", "vec", "ref", "fast"),
        ("fast", "shard", "vec", "ref"),
        ("vec", "ref", "shard", "fast"),
    )
    sims = {
        "ref": ref_sim, "fast": compact_sim, "vec": vector_sim,
        "shard": shard_sim,
    }
    for rep in range(reps):
        seconds = {}
        results = {}
        for system in orders[rep % len(orders)]:
            t0 = time.perf_counter()
            results[system] = sims[system].run_launch(launch)
            seconds[system] = time.perf_counter() - t0
        ref_res = results["ref"]
        compact_res = results["fast"]
        vector_res = results["vec"]
        shard_res = results["shard"]
        assert _fingerprint(ref_res) == _fingerprint(compact_res)
        assert _fingerprint(ref_res) == _fingerprint(vector_res)
        assert _fingerprint(ref_res) == _fingerprint(shard_res)
        ratios.append(seconds["ref"] / seconds["fast"])
        vec_ratios.append(seconds["ref"] / seconds["vec"])
        vec_vs_fast.append(seconds["fast"] / seconds["vec"])
        shard_vs_fast.append(seconds["fast"] / seconds["shard"])
        best_ref = min(best_ref, seconds["ref"])
        best_compact = min(best_compact, seconds["fast"])
        best_vector = min(best_vector, seconds["vec"])
        best_shard = min(best_shard, seconds["shard"])

    insts = ref_res.issued_warp_insts
    counters = compact_res.counters
    vec_counters = vector_res.counters
    mem_stats = compact_res.mem_stats
    shard_stats = shard_res.mem_stats
    mem_insts = max(1, counters.mem_insts)
    return {
        "warp_insts": insts,
        "reference_seconds": round(best_ref, 4),
        "compact_seconds": round(best_compact, 4),
        "vector_seconds": round(best_vector, 4),
        "sharded_seconds": round(best_shard, 4),
        "reference_ips": round(insts / best_ref),
        "compact_ips": round(insts / best_compact),
        "vector_ips": round(insts / best_vector),
        "sharded_ips": round(insts / best_shard),
        "speedup": round(median(ratios), 3),
        "vector_speedup": round(median(vec_ratios), 3),
        "vector_vs_fast": round(median(vec_vs_fast), 3),
        "shards": SHARDS,
        # Single-process cost of the sharded organization relative to
        # the unified fast path (shard dispatch is pure bookkeeping
        # here; the organization exists for the per-shard state the
        # parallel modes partition).
        "sharded_vs_fast": round(median(shard_vs_fast), 3),
        "l2_shard_imbalance": round(shard_stats["l2_shard_imbalance"], 4),
        "identical_results": True,
        "segment_insts_pct": round(
            100.0 * counters.segment_insts / max(1, insts), 2
        ),
        "interning_hit_rate": round(
            counters.interning_hits
            / max(1, counters.interning_hits + counters.interning_misses),
            4,
        ),
        "events_per_inst": round(counters.events_popped / max(1, insts), 3),
        "mem": {
            "l1_hit_rate": round(mem_stats["l1_hit_rate"], 4),
            "l2_hit_rate": round(mem_stats["l2_hit_rate"], 4),
            "dram_requests": mem_stats["dram_requests"],
            "dram_row_hit_rate": round(mem_stats["dram_row_hit_rate"], 4),
            "dram_mean_queue_delay": round(
                mem_stats["dram_mean_queue_delay"], 2
            ),
            "mem_insts": counters.mem_insts,
            "txns_per_mem_inst": round(counters.mem_txns / mem_insts, 3),
            "batched_insts": counters.mem_batches,
            "batched_insts_pct": round(
                100.0 * counters.mem_batches / mem_insts, 2
            ),
            "batch_l1_hits": counters.mem_batch_l1_hits,
            "batch_l2_hits": counters.mem_batch_l2_hits,
            "dedup_txns": counters.mem_dedup_txns,
            "vector_drains": vec_counters.mem_vector_drains,
        },
    }


def test_sim_hotpath_throughput():
    rows = []
    records = []
    for name in KERNELS:
        kernel = get_workload(name, scale=SCALE)
        launch = _materialize(kernel.launches[0])
        rec = {"kernel": name, "scale": SCALE, "launch_id": 0}
        rec.update(bench_launch(launch))
        records.append(rec)
        rows.append((
            name,
            f"{rec['warp_insts']:,}",
            f"{rec['compact_ips']:,}",
            f"{rec['speedup']:.2f}x",
            f"{rec['vector_speedup']:.2f}x",
            f"{rec['sharded_vs_fast']:.2f}x",
            f"{rec['mem']['l1_hit_rate']:.0%}",
            f"{rec['mem']['dram_row_hit_rate']:.0%}",
            f"{rec['mem']['batched_insts_pct']:.0f}%",
        ))

    payload = {
        "method": (
            "pre-materialized blocks, warm engines; reference = "
            "per-instruction engine + per-transaction memory front end "
            "(the pre-overhaul system); speedup / vector_speedup = "
            "median of per-rep ratios against the fast (compact+fast) "
            f"and vector (compact+vector) systems over {REPS} "
            "order-rotating paired reps (robust to clock drift); "
            "sharded_vs_fast = the fast system with the L2 organized "
            f"as {SHARDS} address-sliced shards, same discipline; "
            "throughput = issued warp insts / best rep seconds; "
            "results asserted bit-identical (memory statistics "
            "included) every rep"
        ),
        "reps": REPS,
        "cpus": os.cpu_count(),
        "shards": SHARDS,
        "kernels": records,
        "best_speedup": max(r["speedup"] for r in records),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    emit(render_table(
        ["kernel", "warp insts", "compact insts/s", "fast spd",
         "vector spd", "shard ovh", "L1 hit", "DRAM row hit",
         "batched mem"],
        rows,
        title=f"Simulator hot-path throughput (scale={SCALE}, "
              f"median of {REPS} paired reps)",
    ))
    for rec in records:
        assert rec["identical_results"]
        assert rec["speedup"] > 1.0, (
            f"{rec['kernel']}: fast system slower than reference "
            f"({rec['speedup']:.2f}x)"
        )
        # The vector front end trades a bounded constant factor against
        # the fast path on warp-sized traffic (ring bookkeeping costs
        # interpreted bytecode that OrderedDict does in C; the NumPy
        # crossover sits above warp size — measured, DESIGN.md §11), so
        # the honest gate is "never materially slower than the
        # reference system", not a speedup floor.
        assert rec["vector_speedup"] > 0.8, (
            f"{rec['kernel']}: vector system fell below the reference "
            f"system ({rec['vector_speedup']:.2f}x)"
        )
        # The sharded organization routes every L2 probe through the
        # shard dispatch instead of the inlined unified path — a
        # bounded single-process cost (it exists for the partitioned
        # state, not for speed); the gate catches it becoming
        # catastrophic, not non-zero.
        assert rec["sharded_vs_fast"] > 0.5, (
            f"{rec['kernel']}: sharded L2 more than doubled the fast "
            f"system's runtime ({rec['sharded_vs_fast']:.2f}x)"
        )


def test_sim_hotpath_smoke():
    """CI perf smoke: one compute-bound and one memory-bound kernel,
    compared against checked-in baseline *relative* throughputs (fast
    system vs in-process reference, so the check holds on any machine);
    >30% drop on either kernel fails."""
    baseline = json.loads(SMOKE_BASELINE.read_text())
    rows = []
    failures = []
    for entry in baseline["kernels"]:
        kernel = get_workload(entry["kernel"], scale=entry["scale"])
        launch = _materialize(kernel.launches[0])
        rec = bench_launch(launch, reps=max(REPS, 7))
        floor = entry["speedup"] * (1 - SMOKE_TOLERANCE)
        rows.extend([
            (f"{entry['kernel']}: speedup now", f"{rec['speedup']:.3f}x"),
            (f"{entry['kernel']}: baseline", f"{entry['speedup']:.3f}x"),
            (f"{entry['kernel']}: floor", f"{floor:.3f}x"),
        ])
        assert rec["identical_results"]
        if rec["speedup"] < floor:
            failures.append(
                f"{entry['kernel']}: fast/reference speedup "
                f"{rec['speedup']:.3f}x fell below {floor:.3f}x "
                f"(baseline {entry['speedup']:.3f}x - {SMOKE_TOLERANCE:.0%})"
            )
    emit(render_table(
        ["metric", "value"], rows,
        title="Simulator hot-path smoke vs baseline",
    ))
    assert not failures, "hot-path regression: " + "; ".join(failures)
