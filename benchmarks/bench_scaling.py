"""Scale sensitivity (beyond the paper; supports EXPERIMENTS.md §Figs. 9-10).

Shows that TBPoint's sample size shrinks as workloads approach paper
scale (warming and region-tail overheads amortize over more occupancy
waves per launch), while the error stays flat or improves.
"""

from __future__ import annotations

import os

from repro.analysis.report import render_table
from repro.analysis.scaling import run_scaling
from repro.exec import ExecutionConfig

from conftest import emit

KERNEL = os.environ.get("REPRO_BENCH_SCALING_KERNEL", "conv")
SCALES = (0.03125, 0.0625, 0.125, 0.25)
#: Fan the per-scale runs across this many workers (results identical).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def test_sample_size_amortizes_with_scale(benchmark):
    exec_config = ExecutionConfig(jobs=JOBS, use_cache=False)
    points = benchmark.pedantic(
        run_scaling,
        args=(KERNEL, SCALES),
        kwargs={"exec_config": exec_config},
        rounds=1,
        iterations=1,
    )
    emit(render_table(
        ["scale", "blocks", "warp insts", "full IPC", "error", "sample"],
        [
            (f"{p.scale:g}", p.num_blocks, f"{p.total_warp_insts:,}",
             f"{p.full_ipc:.3f}", f"{p.error:.2%}", f"{p.sample_size:.2%}")
            for p in points
        ],
        title=f"TBPoint vs workload scale ({KERNEL})",
    ))
    # The central claim: sample size decreases (or at worst stays flat)
    # as the workload grows toward paper scale.
    sizes = [p.sample_size for p in points]
    assert sizes[-1] <= sizes[0] * 1.1
    # Accuracy never collapses at any scale.
    assert max(p.error for p in points) < 0.08
