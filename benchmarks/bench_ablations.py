"""Ablation studies called out in DESIGN.md (beyond the paper's figures).

* Feature ablation: drop each Eq. 2 dimension and measure how the
  inter-launch clustering degrades.
* Threshold sweeps: sigma_inter / sigma_intra trade sample size against
  error, the knob behaviour Section III describes.
* Sampling-level ablation: inter-only vs intra-only vs both (they are
  orthogonal, per Table IV's note).
* BBV-augmented features: the paper's footnote-2 future-work extension.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.baselines import run_full
from repro.config import SamplingConfig
from repro.core.estimates import sampling_error
from repro.core.features import FEATURE_NAMES
from repro.core.pipeline import run_tbpoint
from repro.profiler import launch_bbvs, profile_kernel
from repro.workloads import get_workload

from conftest import emit

ABLATION_KERNEL = "sssp"  # many launches: inter-launch structure matters


@pytest.fixture(scope="module")
def setup(experiment):
    kernel = get_workload(ABLATION_KERNEL, experiment.scale, experiment.seed)
    profile = profile_kernel(kernel)
    full = run_full(kernel)
    return kernel, profile, full


def test_feature_ablation(benchmark, setup):
    kernel, profile, full = setup

    def sweep():
        rows = []
        tbp = run_tbpoint(kernel, profile=profile)
        rows.append(
            ("all four", tbp.plan.num_clusters,
             f"{sampling_error(tbp.overall_ipc, full.overall_ipc):.2%}",
             f"{tbp.sample_size:.2%}")
        )
        for drop in range(4):
            mask = tuple(i != drop for i in range(4))
            tbp = run_tbpoint(kernel, profile=profile, feature_mask=mask)
            rows.append(
                (f"minus {FEATURE_NAMES[drop]}", tbp.plan.num_clusters,
                 f"{sampling_error(tbp.overall_ipc, full.overall_ipc):.2%}",
                 f"{tbp.sample_size:.2%}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["features", "clusters", "error", "sample"],
        rows,
        title=f"Eq. 2 feature ablation ({ABLATION_KERNEL})",
    ))


def test_threshold_sweep(benchmark, setup):
    kernel, profile, full = setup

    def sweep():
        rows = []
        for sigma in (0.02, 0.05, 0.1, 0.2, 0.4):
            cfg = SamplingConfig(inter_threshold=sigma)
            tbp = run_tbpoint(kernel, sampling=cfg, profile=profile)
            rows.append(
                (f"{sigma:g}", tbp.plan.num_clusters,
                 f"{sampling_error(tbp.overall_ipc, full.overall_ipc):.2%}",
                 f"{tbp.sample_size:.2%}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["sigma_inter", "clusters", "error", "sample"],
        rows,
        title=f"Distance-threshold sweep ({ABLATION_KERNEL}): higher sigma"
              " -> fewer clusters -> smaller sample, larger error risk",
    ))
    # The paper's monotonic knob: clusters never increase with sigma.
    clusters = [r[1] for r in rows]
    assert all(a >= b for a, b in zip(clusters, clusters[1:]))


def test_sampling_level_ablation(benchmark, setup):
    kernel, profile, full = setup

    def sweep():
        rows = []
        for label, kw in (
            ("inter + intra", {}),
            ("inter only", {"use_intra": False}),
            ("intra only", {"use_inter": False}),
        ):
            tbp = run_tbpoint(kernel, profile=profile, **kw)
            rows.append(
                (label,
                 f"{sampling_error(tbp.overall_ipc, full.overall_ipc):.2%}",
                 f"{tbp.sample_size:.2%}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["levels", "error", "sample"],
        rows,
        title=f"Orthogonal sampling levels ({ABLATION_KERNEL})",
    ))


def test_clustering_algorithm_ablation(benchmark, setup):
    """Section III's design choice: hierarchical-with-threshold vs
    k-means-with-BIC for inter-launch clustering."""
    import numpy as np

    from repro.core.estimates import compose_kernel_estimate
    from repro.core.interlaunch import plan_inter_launch, plan_inter_launch_kmeans
    from repro.sim import GPUSimulator

    kernel, profile, full = setup

    def sweep():
        rows = []
        sim = GPUSimulator()
        for label, plan in (
            ("hierarchical (sigma)", plan_inter_launch(profile)),
            ("k-means + BIC",
             plan_inter_launch_kmeans(profile, rng=np.random.default_rng(0))),
        ):
            reps = {
                lid: sim.run_launch(kernel.launches[lid])
                for lid in plan.simulated_launches
            }
            est = compose_kernel_estimate(profile, plan, reps)
            rows.append(
                (label, plan.num_clusters,
                 f"{sampling_error(est.overall_ipc, full.overall_ipc):.2%}",
                 f"{est.sample_size:.2%}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["clustering", "clusters", "error", "sample"],
        rows,
        title=f"Inter-launch clustering algorithm ({ABLATION_KERNEL})",
    ))


def test_systematic_baseline(benchmark, setup):
    """Related-work comparison: systematic (periodic) sampling."""
    import numpy as np

    from repro.baselines import estimate_random, estimate_systematic, run_full

    kernel, profile, full_plain = setup

    def sweep():
        unit = max(2_000, profile.total_warp_insts // 100)
        full = run_full(kernel, unit_insts=unit, record_bbv=False)
        rng = np.random.default_rng(0)
        sys_est = estimate_systematic(full, period=10, rng=rng)
        rnd_est = estimate_random(full, 0.10, rng)
        return [
            ("systematic (1-in-10)",
             f"{sampling_error(sys_est.overall_ipc, full.overall_ipc):.2%}",
             f"{sys_est.sample_size:.2%}"),
            ("random (10%)",
             f"{sampling_error(rnd_est.overall_ipc, full.overall_ipc):.2%}",
             f"{rnd_est.sample_size:.2%}"),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["technique", "error", "sample"],
        rows,
        title=f"Systematic vs random sampling ({ABLATION_KERNEL})",
    ))


def test_bbv_feature_extension(benchmark, setup):
    """Footnote 2: append per-launch BBVs to the Eq. 2 features."""
    kernel, profile, full = setup

    def sweep():
        base = run_tbpoint(kernel, profile=profile)
        extra = launch_bbvs(kernel, weight=1.0)
        augmented = run_tbpoint(kernel, profile=profile, extra_features=extra)
        return [
            ("Eq. 2 features", base.plan.num_clusters,
             f"{sampling_error(base.overall_ipc, full.overall_ipc):.2%}",
             f"{base.sample_size:.2%}"),
            ("Eq. 2 + BBV", augmented.plan.num_clusters,
             f"{sampling_error(augmented.overall_ipc, full.overall_ipc):.2%}",
             f"{augmented.sample_size:.2%}"),
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["feature set", "clusters", "error", "sample"],
        rows,
        title=f"Footnote-2 extension: BBV as an extra feature "
              f"({ABLATION_KERNEL})",
    ))
