"""Figs. 9 & 10 — the headline evaluation.

Regenerates, for every Table VI kernel, the overall IPC of Full /
Random / Ideal-SimPoint / TBPoint (Fig. 9) and the total sample size of
the three sampling techniques (Fig. 10), then prints the per-kernel rows
and the geometric means the abstract quotes (paper: errors 7.95% /
1.74% / 0.47% and sizes 10% / 5.4% / 2.6%).

This is the expensive bench: each kernel needs one full simulation.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_kernel_comparison
from repro.analysis.report import render_table
from repro.core.estimates import geometric_mean

from conftest import bench_kernels, emit


@pytest.fixture(scope="module")
def comparisons(experiment):
    return {
        name: run_kernel_comparison(name, experiment)
        for name in bench_kernels()
    }


def test_fig9_fig10_headline(benchmark, comparisons, experiment):
    """Print Fig. 9 (IPC/error) and Fig. 10 (sample size) rows."""

    def summarize():
        rows9, rows10 = [], []
        for name, c in comparisons.items():
            rows9.append(
                (
                    name,
                    c.kind,
                    f"{c.full_ipc:.3f}",
                    f"{c.random.overall_ipc:.3f}",
                    f"{c.simpoint.overall_ipc:.3f}",
                    f"{c.tbpoint.overall_ipc:.3f}",
                    f"{c.random_error:.2%}",
                    f"{c.simpoint_error:.2%}",
                    f"{c.tbpoint_error:.2%}",
                )
            )
            rows10.append(
                (
                    name,
                    f"{c.random_sample_size:.2%}",
                    f"{c.simpoint_sample_size:.2%}",
                    f"{c.tbpoint_sample_size:.2%}",
                )
            )
        return rows9, rows10

    rows9, rows10 = benchmark.pedantic(summarize, rounds=1, iterations=1)
    emit(render_table(
        ["kernel", "type", "full", "random", "simpoint", "tbpoint",
         "err(rnd)", "err(sp)", "err(tbp)"],
        rows9,
        title=f"Fig. 9 — overall IPC (scale={experiment.scale})",
    ))
    emit(render_table(
        ["kernel", "random", "ideal-simpoint", "tbpoint"],
        rows10,
        title="Fig. 10 — total sample size",
    ))

    cs = list(comparisons.values())
    errs = {
        "random": geometric_mean(c.random_error for c in cs),
        "ideal-simpoint": geometric_mean(c.simpoint_error for c in cs),
        "tbpoint": geometric_mean(c.tbpoint_error for c in cs),
    }
    sizes = {
        "random": geometric_mean(c.random_sample_size for c in cs),
        "ideal-simpoint": geometric_mean(c.simpoint_sample_size for c in cs),
        "tbpoint": geometric_mean(c.tbpoint_sample_size for c in cs),
    }
    emit(render_table(
        ["technique", "geomean error", "paper error",
         "geomean sample", "paper sample"],
        [
            ("random", f"{errs['random']:.2%}", "7.95%",
             f"{sizes['random']:.2%}", "10%"),
            ("ideal-simpoint", f"{errs['ideal-simpoint']:.2%}", "1.74%",
             f"{sizes['ideal-simpoint']:.2%}", "5.4%"),
            ("tbpoint", f"{errs['tbpoint']:.2%}", "0.47%",
             f"{sizes['tbpoint']:.2%}", "2.6%"),
        ],
        title="Headline geometric means (measured vs paper)",
    ))

    # The paper's qualitative claims must hold.
    assert errs["tbpoint"] < errs["random"]
    assert errs["ideal-simpoint"] < errs["random"]
    assert sizes["tbpoint"] < sizes["random"]
