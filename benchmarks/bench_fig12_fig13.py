"""Figs. 12 & 13 — sensitivity to hardware configuration.

TBPoint's one-time profile is reused across machines with different warp
counts (W) and SM counts (S); only epoch clustering and the timing runs
are redone.  Prints per-kernel sampling error (Fig. 12) and sample size
(Fig. 13) for each configuration.  Paper claims to reproduce: the
maximum error stays under ~14%, and lower occupancy tends to give
smaller samples for regular kernels but longer warming (larger samples)
for cache-sensitive irregular ones.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import SENSITIVITY_CONFIGS, run_sensitivity
from repro.analysis.report import render_table
from repro.config import ExperimentConfig

from conftest import bench_kernels, emit

#: Sensitivity multiplies every kernel by four configurations, so it
#: defaults to a representative subset; set REPRO_BENCH_KERNELS to
#: override (or REPRO_BENCH_SENSITIVITY_ALL=1 for all 12).
_DEFAULT_SUBSET = ("bfs", "sssp", "lbm", "hotspot", "kmeans", "conv")


def _kernels() -> tuple[str, ...]:
    if os.environ.get("REPRO_BENCH_SENSITIVITY_ALL"):
        return bench_kernels()
    if os.environ.get("REPRO_BENCH_KERNELS"):
        return bench_kernels()
    return _DEFAULT_SUBSET


def test_fig12_fig13_sensitivity(benchmark):
    experiment = ExperimentConfig(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.0625"))
    )

    points = benchmark.pedantic(
        run_sensitivity,
        args=(_kernels(),),
        kwargs={"experiment": experiment},
        rounds=1,
        iterations=1,
    )

    configs = [f"W{w}S{s}" for w, s in SENSITIVITY_CONFIGS]
    by_kernel: dict[str, dict[str, object]] = {}
    for p in points:
        by_kernel.setdefault(p.kernel, {})[p.label] = p

    err_rows, size_rows = [], []
    for kernel, cfgs in by_kernel.items():
        err_rows.append(
            (kernel, *[f"{cfgs[c].error:.2%}" for c in configs])
        )
        size_rows.append(
            (kernel, *[f"{cfgs[c].sample_size:.2%}" for c in configs])
        )
    emit(render_table(
        ["kernel", *configs], err_rows,
        title=f"Fig. 12 — TBPoint error per hardware config "
              f"(scale={experiment.scale})",
    ))
    emit(render_table(
        ["kernel", *configs], size_rows,
        title="Fig. 13 — TBPoint sample size per hardware config",
    ))

    # Paper: "the maximum error rate is less than 14%".
    assert max(p.error for p in points) < 0.14
