"""Warm-state simulation service: cold process vs warm daemon.

Measures what ``repro serve`` exists for and records it to
``BENCH_serve.json`` at the repo root (DESIGN.md §13):

* **cold per-process invocation** — ``python -m repro simulate`` in a
  fresh subprocess: interpreter start, imports, workload synthesis and
  a cold-cache simulation, paid on *every* call;
* **warm first request** — the same simulation on the daemon's warm
  engine and resident (full-window) trace: the process overhead and
  block synthesis are gone, only the simulation remains;
* **warm repeated request** — the same content key again on a
  journal-enabled daemon: replayed idempotently from the serve journal
  (the PR 4 keying), which is where repeated-request latency collapses.
  The acceptance gate (≥5x vs cold process) is on this path;
  re-simulation latency is reported alongside, honestly — for
  paper-scale launches the simulation itself dominates, so warm
  re-simulation alone buys the process+synthesis overhead, not 5x;
* **sustained throughput** — ≥4 concurrent client threads driving
  distinct warm requests; requests/sec plus the sims-run counter so
  coalescing can't inflate the number.
* **worker-pool throughput** — the same concurrent drive against
  supervised pools of 1, 2 and 4 worker processes (``--workers``,
  DESIGN.md §14), reported next to the thread path. No speedup is
  gated: on a single-core host the honest numbers show no scaling,
  and the pool's value there is crash isolation, not parallelism.

Every served payload in this bench is asserted bit-identical to a
fresh direct run (:func:`repro.serve.direct_payload`) before any
latency number is reported.

Environment knobs: ``REPRO_BENCH_SERVE_KERNELS`` (default
``hotspot,lbm`` — both >256-block launches at the default scale),
``REPRO_BENCH_SCALE`` (default 0.125), ``REPRO_BENCH_SERVE_REPEATS``
(default 5), ``REPRO_BENCH_SERVE_CLIENTS`` (default 4).
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.analysis.report import render_table
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServerThread,
    direct_payload,
    normalize_request,
    payloads_equal,
    wait_for_server,
)
from repro.workloads import get_workload

from conftest import emit

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

KERNELS = tuple(
    k.strip()
    for k in os.environ.get("REPRO_BENCH_SERVE_KERNELS", "hotspot,lbm").split(",")
    if k.strip()
)
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.125"))
REPEATS = int(os.environ.get("REPRO_BENCH_SERVE_REPEATS", "5"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
THROUGHPUT_KERNEL = os.environ.get("REPRO_BENCH_SERVE_TP_KERNEL", "stream")


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _cold_process_seconds(kernel: str, scale: float, tmp_path: Path) -> float:
    """One full ``python -m repro simulate`` subprocess: the per-call
    price a scripted sweep pays without the daemon."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env["TBPOINT_CACHE_DIR"] = str(tmp_path / "cold-cache")
    t0 = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", "--scale", str(scale),
         "simulate", kernel],
        check=True, capture_output=True, cwd=REPO_ROOT, env=env,
    )
    return time.perf_counter() - t0


def _start(tmp_path: Path, name: str, **overrides) -> ServerThread:
    config = ServeConfig(
        socket_path=str(tmp_path / f"{name}.sock"),
        cache_dir=str(tmp_path / f"{name}-cache"),
        **overrides,
    )
    handle = ServerThread.start(config)
    wait_for_server(handle.socket_path)
    return handle


def _bench_kernel(kernel: str, scale: float, tmp_path: Path) -> dict:
    params = {"kernel": kernel, "scale": scale}
    norm = normalize_request("simulate", params)
    trace = get_workload(kernel, scale=scale, seed=2014)
    blocks = trace.launches[0].num_blocks

    cold_s = _cold_process_seconds(kernel, scale, tmp_path)

    # Journal-enabled daemon: first request simulates (warm engine,
    # resident trace), repeats replay from the journal.
    with _start(tmp_path, f"{kernel}-journal", journal=True) as handle:
        with ServeClient(handle.socket_path) as client:
            first, first_s = _timed(lambda: client.call("simulate", params))
            repeat_samples = []
            for _ in range(REPEATS):
                payload, s = _timed(lambda: client.call("simulate", params))
                assert payload == first
                repeat_samples.append(s)
            stats = client.stats()
    assert stats["counters"]["sims_run"] == 1
    assert stats["counters"]["journal_hits"] == REPEATS

    # No-journal daemon: repeats genuinely re-simulate on warm state.
    with _start(tmp_path, f"{kernel}-resim") as handle:
        with ServeClient(handle.socket_path) as client:
            warm0 = client.call("simulate", params)
            resim_samples = []
            for _ in range(max(2, REPEATS // 2)):
                payload, s = _timed(lambda: client.call("simulate", params))
                assert payload == warm0
                resim_samples.append(s)
            resim_stats = client.stats()
    assert resim_stats["counters"]["journal_hits"] == 0
    assert resim_stats["counters"]["block_regenerations"] == 0

    # The oracle: a fresh direct run must match every served payload.
    direct, direct_s = _timed(lambda: direct_payload(norm))
    assert payloads_equal(first, direct)
    assert payloads_equal(warm0, direct)

    repeat_s = statistics.median(repeat_samples)
    resim_s = statistics.median(resim_samples)
    return {
        "kernel": kernel,
        "scale": scale,
        "launch_blocks": blocks,
        "cold_process_seconds": round(cold_s, 4),
        "warm_first_seconds": round(first_s, 4),
        "warm_resim_seconds": round(resim_s, 4),
        "warm_repeat_seconds": round(repeat_s, 6),
        "repeat_speedup_vs_cold": round(cold_s / repeat_s, 1),
        "resim_speedup_vs_cold": round(cold_s / resim_s, 2),
        "direct_oracle_seconds": round(direct_s, 4),
        "bit_identical_to_direct": True,
    }


def _drive_concurrent(handle: ServerThread) -> tuple[float, dict]:
    """CLIENTS concurrent threads, each driving its own seed stream of
    warm re-simulations (distinct content keys across clients, so
    coalescing and the journal cannot answer for the simulator).
    Returns (elapsed seconds, final stats payload)."""
    per_client = max(3, REPEATS)
    errors: list[Exception] = []
    # Pre-warm: one request per client seed builds trace + engine.
    with ServeClient(handle.socket_path) as client:
        for i in range(CLIENTS):
            client.call("simulate", {
                "kernel": THROUGHPUT_KERNEL, "scale": SCALE,
                "seed": 100 + i,
            })

    def drive(idx: int) -> None:
        try:
            with ServeClient(handle.socket_path) as client:
                for _ in range(per_client):
                    client.call("simulate", {
                        "kernel": THROUGHPUT_KERNEL, "scale": SCALE,
                        "seed": 100 + idx,
                    })
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(i,)) for i in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    with ServeClient(handle.socket_path) as client:
        stats = client.stats()
    assert not errors, errors
    return elapsed, stats


def _bench_throughput(tmp_path: Path) -> dict:
    per_client = max(3, REPEATS)
    total = CLIENTS * per_client
    with _start(tmp_path, "throughput", max_concurrency=CLIENTS) as handle:
        elapsed, stats = _drive_concurrent(handle)
    c = stats["counters"]
    # Distinct keys per client: every request really simulated.
    assert c["sims_run"] >= total
    return {
        "kernel": THROUGHPUT_KERNEL,
        "scale": SCALE,
        "clients": CLIENTS,
        "requests": total,
        "elapsed_seconds": round(elapsed, 4),
        "requests_per_second": round(total / elapsed, 2),
        "sims_run": c["sims_run"],
        "coalesced_hits": c["coalesced_hits"],
        "max_queue_depth": c["max_queue_depth"],
        "queue_p90_ms": round(stats["queue"].get("p90_ms", 0.0), 2),
    }


def _bench_worker_throughput(tmp_path: Path) -> list[dict]:
    """The same concurrent drive against supervised worker pools of 1,
    2 and 4 processes (PR 9): where the thread path serializes the hot
    loop under the GIL, workers scale with cores — reported honestly,
    including on hosts where there are no extra cores to scale onto."""
    per_client = max(3, REPEATS)
    total = CLIENTS * per_client
    rows = []
    for workers in (1, 2, 4):
        with _start(
            tmp_path,
            f"workers{workers}",
            workers=workers,
            max_concurrency=CLIENTS,
            max_backlog=4 * CLIENTS,
        ) as handle:
            elapsed, stats = _drive_concurrent(handle)
        c = stats["counters"]
        w = stats["workers"]
        assert c["sims_run"] >= total
        assert not w["degraded"]
        assert w["crashes"] == 0 and w["hangs"] == 0
        rows.append({
            "workers": workers,
            "clients": CLIENTS,
            "requests": total,
            "elapsed_seconds": round(elapsed, 4),
            "requests_per_second": round(total / elapsed, 2),
            "sims_run": c["sims_run"],
            "shed_requests": c["shed_requests"],
            "worker_queue_p90_ms": w.get("queue_wait_p90_ms", 0.0),
            "avg_job_ms": w.get("avg_job_ms", 0.0),
        })
    return rows


def test_serve_warm_vs_cold(tmp_path):
    kernels = [_bench_kernel(k, SCALE, tmp_path) for k in KERNELS]
    throughput = _bench_throughput(tmp_path)
    workers_throughput = _bench_worker_throughput(tmp_path)
    record = {
        "scale": SCALE,
        "repeats": REPEATS,
        "cpus": os.cpu_count(),
        "kernels": kernels,
        "throughput": throughput,
        "workers_throughput": workers_throughput,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    emit(render_table(
        ["kernel", "blocks", "cold proc (s)", "warm 1st (s)",
         "warm resim (s)", "warm repeat (s)", "repeat speedup"],
        [
            (r["kernel"], str(r["launch_blocks"]),
             f"{r['cold_process_seconds']:.2f}",
             f"{r['warm_first_seconds']:.2f}",
             f"{r['warm_resim_seconds']:.2f}",
             f"{r['warm_repeat_seconds']:.4f}",
             f"{r['repeat_speedup_vs_cold']:.0f}x")
            for r in kernels
        ],
        title=f"repro serve: warm vs cold (scale {SCALE:g})",
    ))
    emit(render_table(
        ["metric", "value"],
        [(k, str(v)) for k, v in throughput.items()],
        title=f"Sustained throughput ({CLIENTS} concurrent clients)",
    ))
    emit(render_table(
        ["path", "req/s", "elapsed (s)", "shed", "queue p90 (ms)"],
        [("threads", f"{throughput['requests_per_second']:.2f}",
          f"{throughput['elapsed_seconds']:.2f}", "0",
          f"{throughput['queue_p90_ms']:.1f}")] + [
            (f"workers={r['workers']}",
             f"{r['requests_per_second']:.2f}",
             f"{r['elapsed_seconds']:.2f}",
             str(r["shed_requests"]),
             f"{r['worker_queue_p90_ms']:.1f}")
            for r in workers_throughput
        ],
        title=f"Thread path vs worker pool ({CLIENTS} concurrent clients)",
    ))

    # Acceptance gates -------------------------------------------------
    assert len(kernels) >= 2
    assert any(r["launch_blocks"] > 256 for r in kernels)
    for r in kernels:
        assert r["bit_identical_to_direct"]
        assert r["repeat_speedup_vs_cold"] >= 5.0, r
        # Warm re-simulation must at least beat the cold process —
        # the overhead it removes is real even when the sim dominates.
        assert r["warm_resim_seconds"] < r["cold_process_seconds"], r
    assert throughput["requests_per_second"] > 0
    assert throughput["sims_run"] >= throughput["requests"]
    # Worker pools must answer everything correctly; no speedup gate —
    # on a single-core host the honest numbers show no scaling.
    for r in workers_throughput:
        assert r["requests_per_second"] > 0
        assert r["sims_run"] >= r["requests"]


def test_serve_smoke(tmp_path):
    """CI-sized serve check: one cheap kernel, daemon vs direct process,
    bit-identity plus a tolerant warm-vs-cold gate (the full bench
    enforces the 5x headline on paper-scale kernels)."""
    kernel, scale = "stream", 0.02
    params = {"kernel": kernel, "scale": scale}
    cold_s = _cold_process_seconds(kernel, scale, tmp_path)
    with _start(tmp_path, "smoke", journal=True) as handle:
        with ServeClient(handle.socket_path) as client:
            first = client.call("simulate", params)
            repeat, repeat_s = _timed(lambda: client.call("simulate", params))
    assert repeat == first
    direct = direct_payload(normalize_request("simulate", params))
    assert payloads_equal(first, direct)
    assert cold_s / repeat_s >= 2.0, (cold_s, repeat_s)
