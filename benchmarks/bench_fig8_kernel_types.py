"""Fig. 8 — regular vs irregular kernel classification.

Fig. 8 plots thread-block size ratios against thread-block ID for a
regular and an irregular kernel.  This bench regenerates the underlying
series for every benchmark, prints their summary statistics, and checks
the empirical classifier agrees with the Table VI types.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.kernel_types import block_size_ratios, classify_kernel
from repro.analysis.report import render_series, render_table
from repro.profiler import profile_kernel
from repro.workloads import benchmark_info, get_workload

from conftest import bench_kernels, emit


def test_fig8_classification(benchmark, experiment):
    def classify_all():
        rows = []
        series = {}
        for name in bench_kernels():
            kernel = get_workload(name, experiment.scale, experiment.seed)
            profile = profile_kernel(kernel)
            ratios = block_size_ratios(profile)
            predicted = classify_kernel(profile)
            rows.append(
                (
                    name,
                    benchmark_info(name).kind,
                    predicted,
                    f"{ratios.mean():.2f}",
                    f"{ratios.std():.2f}",
                    f"{ratios.max():.2f}",
                )
            )
            series[name] = ratios
        return rows, series

    rows, series = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    emit(render_table(
        ["kernel", "table VI", "classified", "mean ratio", "std", "max"],
        rows,
        title="Fig. 8 — thread-block size-ratio statistics and class",
    ))
    # The two panels of Fig. 8: a regular and an irregular example.
    for example in ("conv", "bfs"):
        if example in series:
            ratios = series[example]
            emit(render_series(
                f"Fig. 8 series ({example})",
                list(range(len(ratios))),
                list(ratios),
            ))

    mismatches = [r[0] for r in rows if r[1] != r[2]]
    assert not mismatches, f"classifier disagrees with Table VI: {mismatches}"
