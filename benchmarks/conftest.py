"""Shared configuration for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
its rows (run with ``-s`` or check the captured output).  Environment
knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 0.125; 1.0 is
  paper scale and takes correspondingly longer);
* ``REPRO_BENCH_KERNELS`` — comma-separated subset of benchmarks for the
  per-kernel sweeps (default: all 12).
"""

from __future__ import annotations

import os

import pytest

from repro.config import ExperimentConfig
from repro.workloads import ALL_KERNELS


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.125"))


def bench_kernels() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_KERNELS", "")
    if not raw:
        return ALL_KERNELS
    names = tuple(n.strip() for n in raw.split(",") if n.strip())
    unknown = set(names) - set(ALL_KERNELS)
    if unknown:
        raise ValueError(f"unknown kernels in REPRO_BENCH_KERNELS: {unknown}")
    return names


@pytest.fixture(scope="session")
def experiment() -> ExperimentConfig:
    return ExperimentConfig(scale=bench_scale())


def emit(text: str) -> None:
    """Print a bench's regenerated table/series (visible with -s and in
    pytest's captured-output section)."""
    print()
    print(text)
