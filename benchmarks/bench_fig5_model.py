"""Fig. 5 — IPC variation of the Markov/Monte-Carlo model.

Runs the Section IV-A study for the paper's (p, M, N) configurations:
10,000 Monte-Carlo samples each, per-warp stall latencies drawn from
N(mu, (0.1 mu / 1.96)^2).  Prints the deviation CDF summary per curve
and asserts Lemma 4.1: >95% of samples within 10% of the mean IPC.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import FIG5_CONFIGS, run_fig5_model
from repro.analysis.report import render_table

from conftest import emit


def test_fig5_ipc_variation(benchmark):
    results = benchmark.pedantic(
        run_fig5_model, kwargs={"num_samples": 10_000}, rounds=1, iterations=1
    )

    rows = []
    for var in results:
        rows.append(
            (
                var.label,
                f"{var.mean_ipc:.4f}",
                f"{var.fraction_within(0.05):.2%}",
                f"{var.fraction_within(0.10):.2%}",
                f"{np.percentile(var.relative_deviation, 95):.2%}",
            )
        )
    emit(render_table(
        ["config", "mean IPC", "within 5%", "within 10%", "p95 dev"],
        rows,
        title="Fig. 5 — Monte-Carlo IPC variation (10,000 samples/curve)",
    ))

    # Lemma 4.1 for every configuration in the figure.
    for var in results:
        assert var.fraction_within(0.10) > 0.95, var.label
    assert len(results) == len(FIG5_CONFIGS)


def test_markov_chain_throughput(benchmark):
    """Micro-benchmark: building and solving one Eq. 3 chain (N = 8)."""
    from repro.model import ipc_from_steady_state, steady_state, transition_matrix

    def solve():
        T = transition_matrix(0.1, 400.0, 8)
        return ipc_from_steady_state(steady_state(T))

    ipc = benchmark(solve)
    assert 0 < ipc <= 1
