"""Fig. 11 — breakdown of skipped instructions: inter vs intra.

For every kernel, runs TBPoint (no full reference needed) and prints the
relative share of skipped instructions contributed by inter-launch vs
intra-launch sampling.  The paper's observations to reproduce: regular
kernels skip mostly via inter-launch sampling, hotspot (one launch)
skips via intra only, and stream's hundreds of homogeneous launches make
inter dominant.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.core.pipeline import run_tbpoint
from repro.profiler import profile_kernel
from repro.workloads import benchmark_info, get_workload

from conftest import bench_kernels, emit


def test_fig11_skip_breakdown(benchmark, experiment):
    def run():
        rows = []
        for name in bench_kernels():
            kernel = get_workload(name, experiment.scale, experiment.seed)
            tbp = run_tbpoint(kernel, profile=profile_kernel(kernel))
            inter, intra = tbp.skip_breakdown()
            rows.append(
                (
                    name,
                    benchmark_info(name).kind,
                    f"{inter:.0%}",
                    f"{intra:.0%}",
                    f"{tbp.sample_size:.2%}",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(render_table(
        ["kernel", "type", "inter-launch", "intra-launch", "sample size"],
        rows,
        title="Fig. 11 — relative share of skipped instructions",
    ))

    by_name = {r[0]: r for r in rows}
    # hotspot has a single launch: all savings are intra-launch.
    if "hotspot" in by_name:
        assert by_name["hotspot"][2] == "0%"
    # stream's homogeneous launches are folded by inter-launch sampling.
    if "stream" in by_name:
        assert by_name["stream"][2] == "100%"
