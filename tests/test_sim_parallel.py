"""Bounded-skew SM-group simulation: correctness discipline tests.

SM-group mode is the one deliberately *approximate* path in the
simulator, so its tests pin the discipline rather than bit-identity:
the degenerate case (``sm_groups=1``) IS bit-identical to the serial
engine, block assignment and recomposition are deterministic, the
process-pool fan-out changes nothing, and the IPC skew against the
exact serial engine is always either measured or visibly ``None`` —
never a silent zero — with ``skew_tolerance`` as a hard gate.
"""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.exec.engine import ExecutionConfig
from repro.sim import GPUSimulator
from repro.sim.parallel import (
    SMGroupRun,
    group_config,
    plan_sm_groups,
    simulate_sm_groups,
)
from tests.conftest import make_manual_launch, make_uniform_kernel

GPU = GPUConfig(num_sms=4, warps_per_sm=8)
SERIAL = ExecutionConfig(jobs=1)


def _launch(blocks: int = 24):
    return make_uniform_kernel(
        num_launches=1, blocks_per_launch=blocks, warps_per_block=2,
        insts_per_warp=24,
    ).launches[0]


class TestPlanSMGroups:
    def test_even_split(self):
        assert plan_sm_groups(4, 2) == [[0, 1], [2, 3]]

    def test_remainder_goes_to_leading_groups(self):
        assert plan_sm_groups(14, 4) == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10], [11, 12, 13]
        ]

    def test_one_group_owns_everything(self):
        assert plan_sm_groups(3, 1) == [[0, 1, 2]]

    def test_groups_bounded_by_sms(self):
        with pytest.raises(ValueError, match="exceeds num_sms"):
            plan_sm_groups(2, 3)
        with pytest.raises(ValueError, match=">= 1"):
            plan_sm_groups(4, 0)

    def test_group_config_shares_l2_proportionally(self):
        cfg = GPUConfig(num_sms=4, l2_kib=512, l2_shards=2)
        half = group_config(cfg, [0, 1])
        assert half.num_sms == 2
        assert half.l2_kib == 256
        assert half.l2_shards == 2  # inherited, still exercised
        # The share never collapses below a single KiB.
        tiny = group_config(GPUConfig(num_sms=64, l2_kib=16), [0])
        assert tiny.l2_kib == 1


class TestDegeneracy:
    def test_one_group_is_the_serial_engine(self):
        launch = _launch()
        run = simulate_sm_groups(launch, GPU, sm_groups=1, exec_config=SERIAL)
        serial = GPUSimulator(GPU).run_launch(launch)
        assert run.issued_warp_insts == serial.issued_warp_insts
        assert run.wall_cycles == serial.wall_cycles
        assert run.per_sm_issued == list(serial.per_sm_issued)
        assert run.machine_ipc == serial.machine_ipc
        assert run.ipc_skew == 0.0

    def test_more_groups_than_blocks_leaves_empty_groups(self):
        launch = make_manual_launch([16, 16])  # 2 blocks on 4 SMs
        run = simulate_sm_groups(
            launch, GPU, sm_groups=4, exec_config=SERIAL
        )
        assert sum(r is None for r in run.group_results) == 2
        # Empty groups contribute zero-padded per-SM slots, keeping the
        # recomposed machine shape intact.
        assert len(run.per_sm_issued) == GPU.num_sms
        serial = GPUSimulator(GPU).run_launch(launch)
        assert run.issued_warp_insts == serial.issued_warp_insts


class TestDeterminism:
    def test_repeat_runs_identical(self):
        launch = _launch()
        runs = [
            simulate_sm_groups(launch, GPU, sm_groups=2, exec_config=SERIAL)
            for _ in range(2)
        ]
        assert runs[0].issued_warp_insts == runs[1].issued_warp_insts
        assert runs[0].wall_cycles == runs[1].wall_cycles
        assert runs[0].per_sm_issued == runs[1].per_sm_issued
        assert runs[0].ipc_skew == runs[1].ipc_skew

    @pytest.mark.slow
    def test_parallel_fanout_matches_serial_fanout(self):
        launch = _launch(32)
        a = simulate_sm_groups(launch, GPU, sm_groups=2, exec_config=SERIAL)
        b = simulate_sm_groups(
            launch, GPU, sm_groups=2,
            exec_config=ExecutionConfig(jobs=2),
        )
        if b.exec_meta.get("path") != "parallel":
            pytest.skip(f"pool unavailable: {b.exec_meta.get('reason')}")
        assert a.issued_warp_insts == b.issued_warp_insts
        assert a.wall_cycles == b.wall_cycles
        assert a.per_sm_issued == b.per_sm_issued


class TestSkewDiscipline:
    def test_skew_measured_by_default(self):
        run = simulate_sm_groups(
            _launch(), GPU, sm_groups=2, exec_config=SERIAL
        )
        assert run.serial_ipc is not None
        assert run.ipc_skew is not None
        assert run.ipc_skew >= 0.0

    def test_unmeasured_skew_is_none_not_zero(self):
        run = simulate_sm_groups(
            _launch(), GPU, sm_groups=2, exec_config=SERIAL,
            measure_skew=False,
        )
        assert run.serial_ipc is None
        assert run.ipc_skew is None

    def test_serial_baseline_reused_instead_of_resimulating(self):
        launch = _launch()
        baseline = GPUSimulator(GPU).run_launch(launch)
        run = simulate_sm_groups(
            launch, GPU, sm_groups=2, exec_config=SERIAL,
            measure_skew=False, serial_baseline=baseline,
        )
        assert run.serial_ipc == baseline.machine_ipc
        assert run.ipc_skew is not None

    def test_tolerance_gate_fires(self):
        with pytest.raises(ValueError, match="exceeds tolerance"):
            simulate_sm_groups(
                _launch(), GPU, sm_groups=4, exec_config=SERIAL,
                skew_tolerance=0.0,
            )

    def test_tolerance_without_measurement_rejected(self):
        with pytest.raises(ValueError, match="not measured"):
            simulate_sm_groups(
                _launch(), GPU, sm_groups=2, exec_config=SERIAL,
                measure_skew=False, skew_tolerance=0.1,
            )

    def test_generous_tolerance_passes(self):
        run = simulate_sm_groups(
            _launch(), GPU, sm_groups=2, exec_config=SERIAL,
            skew_tolerance=1.0,
        )
        assert run.ipc_skew is not None
        assert run.ipc_skew <= 1.0

    def test_skew_property_edge_cases(self):
        run = SMGroupRun(
            launch_id=0, sm_groups=2, group_sm_ids=[[0], [1]],
            group_results=[None, None],
        )
        assert run.ipc_skew is None          # unmeasured
        run.serial_ipc = 0.0
        assert run.ipc_skew == 0.0           # 0/0: both machines idle
        assert run.machine_ipc == 0.0
        assert run.wall_cycles == 0
