"""End-to-end integration checks for every Table VI kernel.

Each kernel runs at a tiny scale through the full TBPoint pipeline
against a full-simulation reference, verifying the invariants that must
hold regardless of calibration: instruction conservation, bounded
sample size, and sane accuracy.
"""

import pytest

from repro.analysis.launch_accuracy import launch_accuracy
from repro.baselines import run_full
from repro.config import GPUConfig
from repro.core.pipeline import run_tbpoint
from repro.profiler import profile_kernel
from repro.sim import GPUSimulator
from repro.workloads import ALL_KERNELS, get_workload

pytestmark = pytest.mark.slow

SCALE = 0.02
GPU = GPUConfig(num_sms=4, warps_per_sm=16)


@pytest.fixture(scope="module", params=ALL_KERNELS)
def kernel_run(request):
    name = request.param
    kernel = get_workload(name, scale=SCALE, seed=99)
    profile = profile_kernel(kernel)
    simulator = GPUSimulator(GPU)
    full = run_full(kernel, GPU, simulator)
    tbp = run_tbpoint(kernel, GPU, profile=profile, simulator=simulator)
    return name, kernel, profile, full, tbp


class TestEveryKernel:
    def test_instruction_conservation(self, kernel_run):
        name, kernel, profile, full, tbp = kernel_run
        assert full.total_warp_insts == profile.total_warp_insts
        assert tbp.estimate.total_warp_insts == profile.total_warp_insts
        for launch_id, result in tbp.rep_results.items():
            assert (
                result.total_warp_insts
                == profile.launches[launch_id].total_warp_insts
            ), f"{name} launch {launch_id}"

    def test_sample_size_bounds(self, kernel_run):
        name, _, _, _, tbp = kernel_run
        assert 0 < tbp.sample_size <= 1.0, name

    def test_estimate_in_reasonable_range(self, kernel_run):
        name, _, _, full, tbp = kernel_run
        err = abs(tbp.overall_ipc - full.overall_ipc) / full.overall_ipc
        # Generous bound at tiny scale; the calibrated bench scale does
        # far better (see EXPERIMENTS.md).
        assert err < 0.20, f"{name}: {err:.2%}"

    def test_every_cluster_has_a_result(self, kernel_run):
        name, _, _, _, tbp = kernel_run
        assert set(tbp.plan.simulated_launches) == set(tbp.rep_results)

    def test_per_launch_predictions_positive(self, kernel_run):
        name, _, _, full, tbp = kernel_run
        acc = launch_accuracy(tbp.estimate, full)
        assert (acc.errors >= 0).all()
        assert acc.max_error < 0.6, name
        assert len(acc.errors) == len(full.launch_results)

    def test_skip_breakdown_consistent(self, kernel_run):
        name, _, profile, _, tbp = kernel_run
        inter = tbp.inter_skipped_insts
        intra = tbp.intra_skipped_insts
        simulated = tbp.estimate.simulated_insts
        assert inter + intra + simulated == profile.total_warp_insts, name
