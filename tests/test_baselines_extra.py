"""Tests for the systematic baseline and the k-means inter-launch plan."""

import numpy as np
import pytest

from repro.baselines import estimate_systematic, run_full
from repro.config import GPUConfig
from repro.core.interlaunch import plan_inter_launch_kmeans
from repro.profiler import profile_kernel

from tests.conftest import make_uniform_kernel


@pytest.fixture(scope="module")
def full_run():
    kernel = make_uniform_kernel(num_launches=3, blocks_per_launch=120)
    return run_full(
        kernel, GPUConfig(num_sms=4, warps_per_sm=16), unit_insts=2000
    )


class TestSystematic:
    def test_period_controls_sample_size(self, full_run):
        est = estimate_systematic(full_run, period=10)
        assert est.sample_size == pytest.approx(0.1, abs=0.05)
        dense = estimate_systematic(full_run, period=2)
        assert dense.sample_size > est.sample_size

    def test_period_one_is_exact(self, full_run):
        est = estimate_systematic(full_run, period=1)
        assert est.sample_size == 1.0
        assert est.overall_ipc == pytest.approx(full_run.overall_ipc, rel=0.02)

    def test_accuracy_on_homogeneous_kernel(self, full_run):
        est = estimate_systematic(
            full_run, period=10, rng=np.random.default_rng(3)
        )
        err = abs(est.overall_ipc - full_run.overall_ipc) / full_run.overall_ipc
        assert err < 0.15

    def test_deterministic_given_rng(self, full_run):
        a = estimate_systematic(full_run, 10, np.random.default_rng(5))
        b = estimate_systematic(full_run, 10, np.random.default_rng(5))
        assert a.overall_ipc == b.overall_ipc

    def test_rejects_bad_period(self, full_run):
        with pytest.raises(ValueError):
            estimate_systematic(full_run, period=0)

    def test_rejects_unitless_run(self):
        kernel = make_uniform_kernel(num_launches=1)
        bare = run_full(kernel, GPUConfig(num_sms=2, warps_per_sm=8))
        with pytest.raises(ValueError):
            estimate_systematic(bare)


class TestKMeansInterLaunchPlan:
    def test_plan_is_well_formed(self):
        kernel = make_uniform_kernel(num_launches=6, blocks_per_launch=48)
        profile = profile_kernel(kernel)
        plan = plan_inter_launch_kmeans(
            profile, rng=np.random.default_rng(1)
        )
        assert plan.num_launches == 6
        assert 1 <= plan.num_clusters <= 6
        for launch_id in range(6):
            rep = plan.representative_of(launch_id)
            assert plan.cluster_of(rep) == plan.cluster_of(launch_id)
        assert plan.cluster_sizes().sum() == 6

    def test_usable_by_pipeline(self):
        """A k-means plan plugs into the estimate composition."""
        from repro.core.estimates import compose_kernel_estimate
        from repro.sim import GPUSimulator

        kernel = make_uniform_kernel(num_launches=4, blocks_per_launch=64)
        profile = profile_kernel(kernel)
        plan = plan_inter_launch_kmeans(profile, rng=np.random.default_rng(2))
        sim = GPUSimulator(GPUConfig(num_sms=2, warps_per_sm=8))
        reps = {
            lid: sim.run_launch(kernel.launches[lid])
            for lid in plan.simulated_launches
        }
        est = compose_kernel_estimate(profile, plan, reps)
        assert est.overall_ipc > 0
        assert est.total_warp_insts == profile.total_warp_insts
