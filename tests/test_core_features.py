"""Tests for Eq. 2 inter-launch feature vectors."""

import numpy as np
import pytest

from repro.core.features import (
    FEATURE_NAMES,
    inter_feature_matrix,
    raw_inter_features,
)
from repro.profiler.functional import KernelProfile, LaunchProfile


def launch_profile(launch_id, warp, thread, mem):
    n = len(warp)
    return LaunchProfile(
        kernel_name="k",
        launch_id=launch_id,
        warps_per_block=4,
        warp_insts=np.asarray(warp, dtype=np.int64),
        thread_insts=np.asarray(thread, dtype=np.int64),
        mem_requests=np.asarray(mem, dtype=np.int64),
    )


def two_launch_profile():
    a = launch_profile(0, [100, 100], [3200, 3200], [10, 10])
    b = launch_profile(1, [300, 100], [9600, 3200], [60, 20])
    return KernelProfile(kernel_name="k", launches=[a, b])


class TestRawFeatures:
    def test_columns_are_the_four_eq2_features(self):
        prof = two_launch_profile()
        raw = raw_inter_features(prof)
        assert raw.shape == (2, 4)
        assert raw[0, 0] == 6400  # thread insts
        assert raw[0, 1] == 200  # warp insts
        assert raw[0, 2] == 20  # memory requests
        assert raw[0, 3] == pytest.approx(0.0)  # uniform blocks -> CoV 0
        assert raw[1, 3] > 0  # mixed block sizes

    def test_feature_names_length(self):
        assert len(FEATURE_NAMES) == 4


class TestFeatureMatrix:
    def test_columns_normalized_by_mean(self):
        feats = inter_feature_matrix(two_launch_profile())
        means = feats.mean(axis=0)
        # Columns with nonzero raw values average to exactly 1.
        np.testing.assert_allclose(means[:3], 1.0)

    def test_identical_launches_identical_vectors(self):
        a = launch_profile(0, [100, 100], [3200, 3200], [10, 10])
        b = launch_profile(1, [100, 100], [3200, 3200], [10, 10])
        feats = inter_feature_matrix(KernelProfile("k", [a, b]))
        np.testing.assert_allclose(feats[0], feats[1])

    def test_control_divergence_separates_equal_thread_insts(self):
        """Two launches with equal thread instructions but different warp
        instructions (the paper's 1-warp vs 32-warp example) differ in
        feature 2 only."""
        a = launch_profile(0, [100], [3200], [10])
        b = launch_profile(1, [3200], [3200], [10])
        feats = inter_feature_matrix(KernelProfile("k", [a, b]))
        assert feats[0, 0] == pytest.approx(feats[1, 0])  # same size
        assert feats[0, 1] != pytest.approx(feats[1, 1])  # divergence

    def test_ablation_mask(self):
        feats = inter_feature_matrix(
            two_launch_profile(), include=(True, False, True, False)
        )
        assert feats.shape == (2, 2)

    def test_mask_must_keep_something(self):
        with pytest.raises(ValueError):
            inter_feature_matrix(
                two_launch_profile(), include=(False, False, False, False)
            )

    def test_mask_must_have_four_entries(self):
        with pytest.raises(ValueError):
            inter_feature_matrix(two_launch_profile(), include=(True, True))
