"""Integration tests for the end-to-end TBPoint pipeline."""

import numpy as np
import pytest

from repro.baselines import run_full
from repro.config import GPUConfig, SamplingConfig
from repro.core.pipeline import run_tbpoint
from repro.profiler import profile_kernel

from tests.conftest import make_two_phase_kernel, make_uniform_kernel


@pytest.fixture(scope="module")
def gpu():
    return GPUConfig(num_sms=4, warps_per_sm=16)


@pytest.fixture(scope="module")
def homogeneous():
    # 4 identical launches of uniform blocks: the best case for both
    # sampling levels.
    return make_uniform_kernel(
        num_launches=4, blocks_per_launch=160, warps_per_block=4
    )


class TestRunTBPoint:
    def test_estimate_close_to_full(self, gpu, homogeneous):
        full = run_full(homogeneous, gpu)
        tbp = run_tbpoint(homogeneous, gpu)
        err = abs(tbp.overall_ipc - full.overall_ipc) / full.overall_ipc
        assert err < 0.08

    def test_sample_smaller_than_full(self, gpu, homogeneous):
        tbp = run_tbpoint(homogeneous, gpu)
        assert 0 < tbp.sample_size < 0.8

    def test_instruction_conservation(self, gpu, homogeneous):
        """Simulated + skipped instructions of a representative launch
        equal its functional profile count exactly."""
        profile = profile_kernel(homogeneous)
        tbp = run_tbpoint(homogeneous, gpu, profile=profile)
        for launch_id, result in tbp.rep_results.items():
            assert (
                result.total_warp_insts
                == profile.launches[launch_id].total_warp_insts
            )

    def test_estimate_totals_cover_whole_kernel(self, gpu, homogeneous):
        profile = profile_kernel(homogeneous)
        tbp = run_tbpoint(homogeneous, gpu, profile=profile)
        assert tbp.estimate.total_warp_insts == sum(
            p.total_warp_insts for p in profile.launches
        )

    def test_inter_only(self, gpu, homogeneous):
        tbp = run_tbpoint(homogeneous, gpu, use_intra=False)
        assert tbp.intra_skipped_insts == 0
        assert not tbp.region_tables
        # One cluster -> one simulated launch out of four.
        assert tbp.sample_size == pytest.approx(0.25, rel=0.05)

    def test_intra_only(self, gpu, homogeneous):
        tbp = run_tbpoint(homogeneous, gpu, use_inter=False)
        assert tbp.inter_skipped_insts == 0
        # Every launch simulated, each intra-sampled.
        assert len(tbp.rep_results) == 4

    def test_orthogonality(self, gpu, homogeneous):
        """The paper: inter- and intra-launch sampling are orthogonal —
        both enabled skips at least as much as either alone."""
        both = run_tbpoint(homogeneous, gpu)
        inter = run_tbpoint(homogeneous, gpu, use_intra=False)
        assert both.sample_size <= inter.sample_size + 1e-9

    def test_two_phase_kernel_regions(self, gpu):
        kernel = make_two_phase_kernel(blocks_per_segment=120)
        tbp = run_tbpoint(kernel, gpu)
        table = tbp.region_tables[0]
        assert table.num_regions >= 2

    def test_skip_breakdown_sums_to_one(self, gpu, homogeneous):
        tbp = run_tbpoint(homogeneous, gpu)
        inter, intra = tbp.skip_breakdown()
        if tbp.inter_skipped_insts + tbp.intra_skipped_insts:
            assert inter + intra == pytest.approx(1.0)

    def test_deterministic(self, gpu, homogeneous):
        a = run_tbpoint(homogeneous, gpu)
        b = run_tbpoint(homogeneous, gpu)
        assert a.overall_ipc == b.overall_ipc
        assert a.sample_size == b.sample_size

    def test_profile_reuse_gives_same_answer(self, gpu, homogeneous):
        profile = profile_kernel(homogeneous)
        a = run_tbpoint(homogeneous, gpu, profile=profile)
        b = run_tbpoint(homogeneous, gpu)
        assert a.overall_ipc == pytest.approx(b.overall_ipc)

    def test_hardware_independence_of_profile(self, homogeneous):
        """Section V-C: the same functional profile serves different
        hardware configurations; only clustering/simulation change."""
        profile = profile_kernel(homogeneous)
        for warps, sms in ((8, 2), (16, 4), (32, 4)):
            gpu = GPUConfig(num_sms=sms, warps_per_sm=warps)
            tbp = run_tbpoint(homogeneous, gpu, profile=profile)
            assert tbp.overall_ipc > 0

    def test_feature_mask_forwarded(self, gpu, homogeneous):
        tbp = run_tbpoint(
            homogeneous, gpu, feature_mask=(True, True, False, False)
        )
        assert tbp.plan.features.shape[1] == 2


class TestNoSamplingCorner:
    """use_inter=False + use_intra=False degenerates to full simulation:
    every launch is its own representative and nothing is skipped."""

    def test_matches_full_simulation_exactly(self, gpu, homogeneous):
        full = run_full(homogeneous, gpu)
        tbp = run_tbpoint(
            homogeneous, gpu, use_inter=False, use_intra=False
        )
        assert tbp.overall_ipc == full.overall_ipc
        assert tbp.sample_size == 1.0
        assert len(tbp.rep_results) == homogeneous.num_launches

    def test_nothing_skipped(self, gpu, homogeneous):
        tbp = run_tbpoint(
            homogeneous, gpu, use_inter=False, use_intra=False
        )
        assert tbp.inter_skipped_insts == 0
        assert tbp.intra_skipped_insts == 0
        assert tbp.skip_breakdown() == (0.0, 0.0)
        assert not tbp.region_tables
