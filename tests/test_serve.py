"""The warm-state simulation service (``repro.serve``, DESIGN.md §13).

The contract under test, in order of importance:

1. **Bit-identity** — every served payload equals a fresh direct run
   of the same request (:func:`repro.serve.direct_payload`), however
   warm the server is.
2. **Exactly-once per content key** — duplicate in-flight requests
   coalesce onto one simulation; with the journal enabled, repeats
   across time (and across restarts) replay instead of recomputing.
3. **Lifecycle honesty** — graceful drain answers everything accepted
   before shutdown; deadlines reject the *wait*, never the work.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.serve import (
    RequestError,
    ServeClient,
    ServeConfig,
    ServeError,
    Server,
    ServerThread,
    direct_payload,
    normalize_request,
    payloads_equal,
    request_key,
    wait_for_server,
)
from repro.serve.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_payload,
    encode_message,
)

#: Cheap request used throughout: ~100 blocks, well under a second.
KERNEL = "stream"
SCALE = 0.02


@pytest.fixture
def serve_dir(tmp_path):
    """Isolated cache root + socket path for one server."""
    return tmp_path


def start_server(tmp_path, **overrides) -> ServerThread:
    config = ServeConfig(
        socket_path=str(tmp_path / "serve.sock"),
        cache_dir=str(tmp_path / "cache"),
        **overrides,
    )
    handle = ServerThread.start(config)
    wait_for_server(handle.socket_path)
    return handle


def sim_params(**extra) -> dict:
    return {"kernel": KERNEL, "scale": SCALE, **extra}


class TestProtocol:
    def test_round_trip(self):
        msg = {"id": 3, "kind": "ping", "params": {"x": [1, 2.5, "s"]}}
        framed = encode_message(msg)
        assert decode_payload(framed[4:]) == msg

    def test_rejects_non_object_payload(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2]")
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe")

    def test_rejects_oversize_message(self):
        big = {"blob": "x" * (MAX_MESSAGE_BYTES + 1)}
        with pytest.raises(ProtocolError):
            encode_message(big)

    def test_zero_length_frame_rejected(self):
        from repro.serve.protocol import recv_message

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 0))
            with pytest.raises(ProtocolError, match="zero-length"):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestProtocolLimitsAgainstServer:
    """Framing abuse on the wire hurts only the abusing connection:
    the server answers it with a hang-up and the accept loop keeps
    serving everyone else."""

    def _raw_connection(self, path: str) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(path)
        return sock

    def _assert_server_still_serves(self, handle) -> None:
        with ServeClient(handle.socket_path) as client:
            assert client.ping()["protocol"] >= 1

    def test_oversized_frame_closes_only_that_connection(self, serve_dir):
        with start_server(serve_dir) as handle:
            raw = self._raw_connection(handle.socket_path)
            try:
                raw.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
                assert raw.recv(1) == b""  # per-connection hang-up
            finally:
                raw.close()
            self._assert_server_still_serves(handle)

    def test_zero_length_frame_closes_only_that_connection(self, serve_dir):
        with start_server(serve_dir) as handle:
            raw = self._raw_connection(handle.socket_path)
            try:
                raw.sendall(struct.pack(">I", 0))
                assert raw.recv(1) == b""
            finally:
                raw.close()
            self._assert_server_still_serves(handle)

    def test_partial_frame_disconnect_mid_payload(self, serve_dir):
        with start_server(serve_dir) as handle:
            raw = self._raw_connection(handle.socket_path)
            # Claim 100 payload bytes, deliver a torn prefix, vanish.
            raw.sendall(struct.pack(">I", 100) + b'{"id": 1, "ki')
            raw.close()
            self._assert_server_still_serves(handle)


class TestNormalization:
    def test_defaults_filled(self):
        norm = normalize_request("simulate", {"kernel": KERNEL})
        assert norm["scale"] == 0.125
        assert norm["seed"] == 2014
        assert norm["launch"] == 0
        assert norm["engine"] == "compact"
        assert norm["mem_front_end"] == "fast"
        assert norm["l2_shards"] == 1

    def test_equivalent_requests_share_a_key(self):
        a = normalize_request("simulate", {"kernel": KERNEL, "scale": 0.125})
        b = normalize_request("simulate", {"kernel": KERNEL, "seed": 2014})
        assert request_key(a) == request_key(b)

    def test_every_parameter_shapes_the_key(self):
        base = {"kernel": KERNEL}
        variants = [
            {},
            {"scale": 0.25},
            {"seed": 7},
            {"launch": 1},
            {"engine": "reference"},
            {"mem_front_end": "reference"},
            {"l2_shards": 2},
        ]
        keys = {
            request_key(normalize_request("simulate", {**base, **v}))
            for v in variants
        }
        keys.add(request_key(normalize_request("tbpoint", base)))
        assert len(keys) == len(variants) + 1

    def test_timeout_does_not_shape_the_key(self):
        a = normalize_request("simulate", {"kernel": KERNEL, "timeout": 5})
        b = normalize_request("simulate", {"kernel": KERNEL})
        assert request_key(a) == request_key(b)

    @pytest.mark.parametrize("params", [
        {"kernel": "bogus"},
        {"kernel": KERNEL, "scale": 0},
        {"kernel": KERNEL, "scale": 2},
        {"kernel": KERNEL, "launch": -1},
        {"kernel": KERNEL, "engine": "quantum"},
        {"kernel": KERNEL, "mem_front_end": "imaginary"},
        {"kernel": KERNEL, "l2_shards": 3},
        {"kernel": KERNEL, "surprise": 1},
        {},
    ])
    def test_rejects_bad_requests(self, params):
        with pytest.raises(RequestError):
            normalize_request("simulate", params)

    def test_rejects_launch_on_tbpoint(self):
        with pytest.raises(RequestError):
            normalize_request("tbpoint", {"kernel": KERNEL, "launch": 1})

    def test_rejects_unknown_kind(self):
        with pytest.raises(RequestError):
            normalize_request("banana", {"kernel": KERNEL})


class TestBitIdentity:
    def test_served_simulate_equals_direct(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                cold = client.simulate(KERNEL, scale=SCALE)
                warm = client.simulate(KERNEL, scale=SCALE)
        direct = direct_payload(normalize_request("simulate", sim_params()))
        assert payloads_equal(cold, direct)
        assert payloads_equal(warm, direct)
        # Warm repeats are fully identical, regeneration count included.
        assert cold == warm
        # The enlarged resident window means zero re-synthesis even on
        # the repeat pass over the same trace.
        assert warm["block_regenerations"] == 0

    def test_served_tbpoint_equals_direct(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                served = client.tbpoint(KERNEL, scale=SCALE)
                again = client.tbpoint(KERNEL, scale=SCALE)
        direct = direct_payload(normalize_request("tbpoint", sim_params()))
        assert payloads_equal(served, direct)
        assert served == again

    def test_engine_variants_stay_distinct_and_identical(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                compact = client.simulate(KERNEL, scale=SCALE)
                reference = client.simulate(
                    KERNEL, scale=SCALE, engine="reference",
                    mem_front_end="reference",
                )
        norm = normalize_request(
            "simulate",
            sim_params(engine="reference", mem_front_end="reference"),
        )
        assert payloads_equal(reference, direct_payload(norm))
        # Same machine, different engines: equal timing via the engine
        # parity contract, reached through two separate warm engines.
        assert compact["wall_cycles"] == reference["wall_cycles"]


class TestWarmState:
    def test_engine_and_kernel_reuse_counters(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                for _ in range(3):
                    client.simulate(KERNEL, scale=SCALE)
                stats = client.stats()
        c = stats["counters"]
        assert c["sims_run"] == 3
        assert c["engine_cold_acquisitions"] == 1
        assert c["engine_warm_acquisitions"] == 2
        assert c["kernels_built"] == 1
        assert c["kernel_warm_hits"] == 2
        assert c["block_regenerations"] == 0
        assert stats["resident_kernels"] == [f"{KERNEL}@{SCALE:g}/2014"]
        assert stats["idle_engines"] == 1

    def test_profile_cache_tiers(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                client.tbpoint(KERNEL, scale=SCALE)
                client.tbpoint(KERNEL, scale=SCALE, seed=7)
                stats = client.stats()
        c = stats["counters"]
        # First estimate computes its profile; a different trace
        # identity computes its own; nothing was on disk yet.
        assert c["profile_computed"] == 2
        assert stats["resident_profiles"] == 2

    def test_shrunken_block_memo_regenerates(self, serve_dir):
        # A deliberately tiny resident window shows the thrash the
        # default (full-launch) window eliminates.
        with start_server(serve_dir, block_memo=2) as handle:
            with ServeClient(handle.socket_path) as client:
                client.simulate(KERNEL, scale=SCALE)
                warm = client.simulate(KERNEL, scale=SCALE)
                stats = client.stats()
        assert warm["block_regenerations"] > 0
        assert stats["counters"]["block_regenerations"] > 0
        direct = direct_payload(normalize_request("simulate", sim_params()))
        assert payloads_equal(warm, direct)  # thrash never changes results


class TestCoalescing:
    def test_pipelined_duplicates_simulate_once(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                rids = [
                    client.submit("simulate", sim_params()) for _ in range(10)
                ]
                payloads = [client.drain(rid) for rid in rids]
                stats = client.stats()
        assert all(p == payloads[0] for p in payloads)
        c = stats["counters"]
        assert c["sims_run"] == 1
        assert c["coalesced_hits"] == 9

    def test_distinct_requests_do_not_coalesce(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                a = client.submit("simulate", sim_params())
                b = client.submit("simulate", sim_params(seed=7))
                client.drain(a), client.drain(b)
                stats = client.stats()
        assert stats["counters"]["sims_run"] == 2
        assert stats["counters"]["coalesced_hits"] == 0


class TestConcurrentIdempotency:
    def test_threaded_hammer_exactly_once_per_key(self, serve_dir):
        """Satellite: duplicate + distinct requests from many threads;
        with the journal on, each content key simulates exactly once,
        every response for a key is bit-identical, and the drain is
        clean with clients still connected."""
        distinct = [sim_params(), sim_params(seed=7), sim_params(launch=0,
                    l2_shards=2)]
        threads_per_request = 4
        repeats = 3
        results: dict[int, list[dict]] = {i: [] for i in range(len(distinct))}
        errors: list[Exception] = []
        lock = threading.Lock()

        with start_server(serve_dir, journal=True, max_concurrency=4) as handle:

            def hammer(idx: int) -> None:
                try:
                    with ServeClient(handle.socket_path) as client:
                        got = [
                            client.call("simulate", distinct[idx])
                            for _ in range(repeats)
                        ]
                    with lock:
                        results[idx].extend(got)
                except Exception as exc:  # surfaced after the join
                    with lock:
                        errors.append(exc)

            workers = [
                threading.Thread(target=hammer, args=(i,))
                for i in range(len(distinct))
                for _ in range(threads_per_request)
            ]
            for t in workers:
                t.start()
            for t in workers:
                t.join(120)
            with ServeClient(handle.socket_path) as client:
                stats = client.stats()

        assert not errors, errors
        c = stats["counters"]
        # Exactly one simulation per content key; every other answer
        # came from coalescing or the journal.
        assert c["sims_run"] == len(distinct)
        answered = len(distinct) * threads_per_request * repeats
        assert c["coalesced_hits"] + c["journal_hits"] == answered - c["sims_run"]
        for idx, payloads in results.items():
            assert len(payloads) == threads_per_request * repeats
            assert all(p == payloads[0] for p in payloads)
            direct = direct_payload(
                normalize_request("simulate", distinct[idx])
            )
            assert payloads_equal(payloads[0], direct)


class TestJournalReplay:
    def test_results_survive_a_restart(self, serve_dir):
        with start_server(serve_dir, journal=True) as handle:
            with ServeClient(handle.socket_path) as client:
                first = client.simulate(KERNEL, scale=SCALE)
        with start_server(serve_dir, journal=True) as handle:
            with ServeClient(handle.socket_path) as client:
                replayed = client.simulate(KERNEL, scale=SCALE)
                stats = client.stats()
        assert replayed == first
        assert stats["counters"]["journal_hits"] == 1
        assert stats["counters"]["sims_run"] == 0

    def test_no_journal_means_recompute(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                client.simulate(KERNEL, scale=SCALE)
                client.simulate(KERNEL, scale=SCALE)
                stats = client.stats()
        assert stats["counters"]["sims_run"] == 2
        assert stats["counters"]["journal_hits"] == 0


class TestLifecycle:
    def test_drain_answers_accepted_requests(self, serve_dir):
        """Shutdown mid-queue: everything already accepted is answered
        before the socket goes away."""
        with start_server(serve_dir, max_concurrency=1) as handle:
            client = ServeClient(handle.socket_path)
            rids = [
                client.submit("simulate", sim_params(seed=seed))
                for seed in (1, 2, 3)
            ]
            with ServeClient(handle.socket_path) as other:
                other.shutdown()
            payloads = [client.drain(rid) for rid in rids]
            client.close()
        for seed, payload in zip((1, 2, 3), payloads):
            direct = direct_payload(
                normalize_request("simulate", sim_params(seed=seed))
            )
            assert payloads_equal(payload, direct)
        # The unix socket is gone after the drain.
        assert not (serve_dir / "serve.sock").exists()

    def test_requests_after_shutdown_are_rejected(self, serve_dir):
        with start_server(serve_dir, max_concurrency=1) as handle:
            client = ServeClient(handle.socket_path)
            # Queue enough work that the drain is still in progress
            # when the post-shutdown request arrives.
            rids = [
                client.submit("simulate", sim_params(seed=seed))
                for seed in (1, 2, 3)
            ]
            client.shutdown()
            with pytest.raises(ServeError, match="draining"):
                client.simulate(KERNEL, scale=SCALE, seed=99)
            for rid in rids:
                client.drain(rid)  # accepted work still answered
            client.close()

    def test_deadline_miss_rejects_the_wait_not_the_work(self, serve_dir):
        with start_server(serve_dir, journal=True, max_concurrency=1) as handle:
            with ServeClient(handle.socket_path) as client:
                # Occupy the only slot, then ask for the impossible.
                first = client.submit("simulate", sim_params())
                with pytest.raises(ServeError, match="deadline"):
                    client.call(
                        "simulate", sim_params(seed=9, timeout=1e-4)
                    )
                client.drain(first)
                # The timed-out simulation still ran to completion and
                # journaled; asking again returns it.
                payload = client.simulate(KERNEL, scale=SCALE, seed=9)
                stats = client.stats()
        assert stats["counters"]["deadline_misses"] == 1
        direct = direct_payload(
            normalize_request("simulate", sim_params(seed=9))
        )
        assert payloads_equal(payload, direct)

    def test_metrics_json_written_on_shutdown(self, serve_dir):
        import json

        metrics = serve_dir / "metrics.json"
        with start_server(serve_dir, metrics_json=str(metrics)) as handle:
            with ServeClient(handle.socket_path) as client:
                client.simulate(KERNEL, scale=SCALE)
                client.shutdown()
        handle.stop()
        payload = json.loads(metrics.read_text())
        assert payload["counters"]["sims_run"] == 1
        assert payload["counters"]["requests_total"] >= 2

    def test_tcp_transport(self, serve_dir):
        config_overrides = {"host": "127.0.0.1", "port": 0}
        with start_tcp_server(serve_dir, **config_overrides) as handle:
            host, port = handle.address
            wait_for_server(host=host, port=port)
            with ServeClient(host=host, port=port) as client:
                assert client.ping()["protocol"] == 1
                payload = client.simulate(KERNEL, scale=SCALE)
        direct = direct_payload(normalize_request("simulate", sim_params()))
        assert payloads_equal(payload, direct)

    def test_malformed_request_keeps_server_alive(self, serve_dir):
        with start_server(serve_dir) as handle:
            with ServeClient(handle.socket_path) as client:
                with pytest.raises(ServeError, match="unknown"):
                    client.call("simulate", {"kernel": "bogus"})
                assert client.ping()["protocol"] == 1

    def test_garbage_frame_drops_connection_not_server(self, serve_dir):
        with start_server(serve_dir) as handle:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(handle.socket_path)
            raw.sendall(b"\xff\xff\xff\xff garbage")
            raw.close()
            with ServeClient(handle.socket_path) as client:
                assert client.ping()["protocol"] == 1


def start_tcp_server(tmp_path, **overrides) -> ServerThread:
    config = ServeConfig(cache_dir=str(tmp_path / "cache"), **overrides)
    return ServerThread.start(config)


class TestEventLoopHygiene:
    """Regression tests for the ASYNC001 fixes (lint PR): the fsync'd
    journal write and the metrics flush are real disk work and must run
    on executor threads, never on the ``repro-serve-loop`` thread."""

    def test_journal_record_runs_off_loop_thread(self, serve_dir, monkeypatch):
        from repro.exec.journal import SweepJournal

        seen: list[str] = []
        original = SweepJournal.record

        def spy(self, key, payload):
            seen.append(threading.current_thread().name)
            return original(self, key, payload)

        monkeypatch.setattr(SweepJournal, "record", spy)
        with start_server(serve_dir, journal=True) as handle:
            with ServeClient(handle.socket_path) as client:
                client.simulate(KERNEL, scale=SCALE)
                client.shutdown()
        handle.stop()
        assert seen, "journal.record was never reached"
        assert all(name != "repro-serve-loop" for name in seen), seen

    def test_metrics_flush_runs_off_loop_thread(self, serve_dir, monkeypatch):
        import json

        from repro.serve.server import Server

        seen: list[str] = []
        original = Server._write_metrics

        def spy(self):
            seen.append(threading.current_thread().name)
            return original(self)

        monkeypatch.setattr(Server, "_write_metrics", spy)
        metrics = serve_dir / "metrics.json"
        with start_server(serve_dir, metrics_json=str(metrics)) as handle:
            with ServeClient(handle.socket_path) as client:
                client.simulate(KERNEL, scale=SCALE)
                client.shutdown()
        handle.stop()
        assert seen, "_write_metrics was never reached"
        assert all(name != "repro-serve-loop" for name in seen), seen
        # The flush still lands: same payload the operator reads.
        assert json.loads(metrics.read_text())["counters"]["sims_run"] == 1
