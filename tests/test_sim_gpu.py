"""Tests for the event-driven GPU timing simulator."""

import numpy as np
import pytest

from repro.config import GPUConfig
from repro.profiler import profile_launch
from repro.sim import FixedUnitRecorder, GPUSimulator
from repro.sim.sampler_hooks import NullSampler

from tests.conftest import make_manual_launch, make_uniform_kernel


class TestBasicExecution:
    def test_issues_every_instruction(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        expected = profile_launch(launch).total_warp_insts
        result = GPUSimulator(small_gpu).run_launch(launch)
        assert result.issued_warp_insts == expected
        assert result.skipped_warp_insts == 0
        assert result.total_warp_insts == expected

    def test_wall_cycles_positive_and_bounded_below(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        result = GPUSimulator(small_gpu).run_launch(launch)
        # Issue width 1/SM: wall >= insts / num_sms.
        assert result.wall_cycles >= result.issued_warp_insts // small_gpu.num_sms
        assert 0 < result.machine_ipc <= small_gpu.num_sms

    def test_deterministic(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        a = GPUSimulator(small_gpu).run_launch(launch)
        b = GPUSimulator(small_gpu).run_launch(launch)
        assert a.wall_cycles == b.wall_cycles
        assert a.issued_warp_insts == b.issued_warp_insts

    def test_launch_timing_independent_of_order(self, small_gpu):
        """reset_memory makes launch timing order-independent — the
        prerequisite for simulating only representative launches."""
        kernel = make_uniform_kernel(num_launches=2)
        sim = GPUSimulator(small_gpu)
        first = sim.run_launch(kernel.launches[1])
        sim.run_launch(kernel.launches[0])
        again = sim.run_launch(kernel.launches[1])
        assert first.wall_cycles == again.wall_cycles

    def test_per_sm_stats_consistent(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        result = GPUSimulator(small_gpu).run_launch(kernel.launches[0])
        assert sum(result.per_sm_issued) == result.issued_warp_insts
        assert len(result.per_sm_issued) == small_gpu.num_sms
        assert all(c <= result.wall_cycles for c in result.per_sm_busy_cycles)
        assert result.per_sm_ipc_sum > 0

    def test_single_block_launch(self, small_gpu):
        launch = make_manual_launch([40])
        result = GPUSimulator(small_gpu).run_launch(launch)
        assert result.issued_warp_insts == 40

    def test_more_parallelism_fewer_cycles(self):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=128)
        launch = kernel.launches[0]
        slow = GPUSimulator(GPUConfig(num_sms=2, warps_per_sm=8)).run_launch(launch)
        fast = GPUSimulator(GPUConfig(num_sms=8, warps_per_sm=32)).run_launch(launch)
        assert fast.wall_cycles < slow.wall_cycles

    def test_memory_intensity_lowers_ipc(self, small_gpu):
        lean = make_uniform_kernel(
            mem_ratio=0.02, name="lean", locality=0.5
        ).launches[0]
        heavy = make_uniform_kernel(
            mem_ratio=0.3, name="heavy", locality=0.0, coalesce_mean=6.0,
            pattern="gather",
        ).launches[0]
        sim = GPUSimulator(small_gpu)
        assert sim.run_launch(lean).machine_ipc > sim.run_launch(heavy).machine_ipc


class TestBlockRegenerationCounter:
    def test_cold_run_counts_zero(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=48)
        launch = kernel.launches[0]
        launch.resize_block_memo(4)
        result = GPUSimulator(small_gpu).run_launch(launch)
        assert result.counters is not None
        assert result.counters.block_regenerations == 0

    def test_repeat_run_thrashes_small_window(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=48)
        launch = kernel.launches[0]
        launch.resize_block_memo(4)
        sim = GPUSimulator(small_gpu)
        cold = sim.run_launch(launch)
        warm = sim.run_launch(launch)
        # Pass 2 finds every block evicted: the re-simulation thrash a
        # warm server avoids by resizing the window to the launch.
        assert warm.counters.block_regenerations == launch.num_blocks
        assert warm.wall_cycles == cold.wall_cycles  # pure perf knob

    def test_full_window_eliminates_regenerations(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=48)
        launch = kernel.launches[0]
        launch.resize_block_memo(launch.num_blocks)
        sim = GPUSimulator(small_gpu)
        cold = sim.run_launch(launch)
        warm = sim.run_launch(launch)
        assert warm.counters.block_regenerations == 0
        assert warm.wall_cycles == cold.wall_cycles


class TestSamplerHooks:
    def test_null_sampler_equals_no_sampler(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        plain = GPUSimulator(small_gpu).run_launch(launch)
        hooked = GPUSimulator(small_gpu).run_launch(launch, sampler=NullSampler())
        assert hooked.issued_warp_insts == plain.issued_warp_insts
        assert hooked.wall_cycles == plain.wall_cycles

    def test_units_partition_the_launch(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        sampler = NullSampler()
        result = GPUSimulator(small_gpu).run_launch(launch, sampler=sampler)
        assert len(sampler.units) >= 1
        # Unit instruction counts never exceed the launch total.
        assert sum(u[0] for u in sampler.units) <= result.issued_warp_insts
        assert all(c > 0 for _, c in sampler.units)

    def test_skip_everything_sampler(self, small_gpu):
        class SkipAll:
            def __init__(self, insts):
                self._insts = insts
                self.skipped_warp_insts = 0
                self.extra_cycles = 0.0

            def on_dispatch(self, tb_id, now, issued):
                self.skipped_warp_insts += self._insts[tb_id]
                self.extra_cycles += self._insts[tb_id] / 2.0
                return False

            def on_retire(self, tb_id, now, issued):
                raise AssertionError("nothing should retire")

            def on_unit_start(self, now):
                raise AssertionError("no units should start")

            def on_unit_complete(self, insts, cycles, now, issued):
                raise AssertionError("no units should complete")

            def finalize(self, now, issued):
                pass

        launch = make_manual_launch([30, 30, 30])
        sampler = SkipAll(profile_launch(launch).warp_insts)
        result = GPUSimulator(GPUConfig(num_sms=2)).run_launch(
            launch, sampler=sampler
        )
        assert result.issued_warp_insts == 0
        assert result.skipped_warp_insts == 90
        assert result.total_warp_insts == 90
        assert result.est_cycles == pytest.approx(1 + 45.0)  # wall=1 + extra


class TestFixedUnitRecorder:
    def test_units_cover_all_instructions(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        rec = FixedUnitRecorder(unit_insts=500, num_bbs=launch.num_bbs)
        result = GPUSimulator(small_gpu).run_launch(launch, recorder=rec)
        assert sum(u.insts for u in rec.units) == result.issued_warp_insts
        # All full units have exactly unit_insts; only the last may not.
        for u in rec.units[:-1]:
            assert u.insts == 500

    def test_bbv_counts_match_unit_insts(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        rec = FixedUnitRecorder(unit_insts=400, num_bbs=launch.num_bbs)
        GPUSimulator(small_gpu).run_launch(launch, recorder=rec)
        for u in rec.units:
            assert u.bbv.sum() == u.insts

    def test_unit_cycles_positive_and_contiguous(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        rec = FixedUnitRecorder(unit_insts=600, num_bbs=launch.num_bbs)
        GPUSimulator(small_gpu).run_launch(launch, recorder=rec)
        for prev, cur in zip(rec.units, rec.units[1:]):
            assert cur.start_cycle == prev.end_cycle
        assert all(u.cycles > 0 for u in rec.units)

    def test_bbv_matrix_normalized(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        rec = FixedUnitRecorder(unit_insts=500, num_bbs=launch.num_bbs)
        GPUSimulator(small_gpu).run_launch(launch, recorder=rec)
        mat = rec.bbv_matrix()
        np.testing.assert_allclose(mat.sum(axis=1), 1.0)

    def test_record_bbv_false(self, small_gpu):
        kernel = make_uniform_kernel(num_launches=1)
        launch = kernel.launches[0]
        rec = FixedUnitRecorder(
            unit_insts=500, num_bbs=launch.num_bbs, record_bbv=False
        )
        GPUSimulator(small_gpu).run_launch(launch, recorder=rec)
        assert rec.units[0].bbv is None
        with pytest.raises(ValueError):
            rec.bbv_matrix()

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FixedUnitRecorder(unit_insts=0, num_bbs=1)
        with pytest.raises(ValueError):
            FixedUnitRecorder(unit_insts=10, num_bbs=0)
