"""Tests for the Full / Random / Ideal-SimPoint baselines."""

import numpy as np
import pytest

from repro.baselines import estimate_random, estimate_simpoint, run_full
from repro.config import GPUConfig

from tests.conftest import make_uniform_kernel
from repro.workloads.base import LaunchSpec, Segment, build_kernel


@pytest.fixture(scope="module")
def gpu():
    return GPUConfig(num_sms=4, warps_per_sm=16)


@pytest.fixture(scope="module")
def full_run(gpu):
    kernel = make_uniform_kernel(num_launches=3, blocks_per_launch=120)
    return run_full(kernel, gpu, unit_insts=2000)


class TestRunFull:
    def test_all_launches_simulated(self, gpu):
        kernel = make_uniform_kernel(num_launches=3)
        full = run_full(kernel, gpu)
        assert len(full.launch_results) == 3
        assert full.total_warp_insts > 0
        assert full.overall_ipc > 0

    def test_units_cover_instructions(self, full_run):
        assert sum(u.insts for u in full_run.units) == full_run.total_warp_insts

    def test_no_units_without_unit_insts(self, gpu):
        kernel = make_uniform_kernel(num_launches=1)
        full = run_full(kernel, gpu)
        assert full.units == []

    def test_per_sm_ipc_sum_close_to_machine_ipc(self, full_run):
        # Balanced SMs: the paper's per-SM sum tracks the machine IPC.
        assert full_run.per_sm_ipc_sum == pytest.approx(
            full_run.overall_ipc, rel=0.1
        )


class TestRandomBaseline:
    def test_sample_size_tracks_fraction(self, full_run):
        est = estimate_random(full_run, 0.10, np.random.default_rng(1))
        assert est.sample_size == pytest.approx(0.10, abs=0.05)
        assert est.num_selected == max(1, round(est.num_units * 0.10))

    def test_estimate_near_full_for_homogeneous(self, full_run):
        full_ipc = full_run.overall_ipc
        est = estimate_random(full_run, 0.2, np.random.default_rng(2))
        assert abs(est.overall_ipc - full_ipc) / full_ipc < 0.15

    def test_fraction_one_is_nearly_exact(self, full_run):
        est = estimate_random(full_run, 1.0, np.random.default_rng(3))
        assert est.overall_ipc == pytest.approx(full_run.overall_ipc, rel=0.02)
        assert est.sample_size == 1.0

    def test_rejects_bad_fraction(self, full_run):
        with pytest.raises(ValueError):
            estimate_random(full_run, 0.0)

    def test_rejects_unitless_run(self, gpu):
        kernel = make_uniform_kernel(num_launches=1)
        full = run_full(kernel, gpu)
        with pytest.raises(ValueError):
            estimate_random(full, 0.1)

    def test_seed_determines_selection(self, full_run):
        a = estimate_random(full_run, 0.1, np.random.default_rng(7))
        b = estimate_random(full_run, 0.1, np.random.default_rng(7))
        assert a.overall_ipc == b.overall_ipc


class TestSimpointBaseline:
    def test_estimate_near_full_for_homogeneous(self, full_run):
        est = estimate_simpoint(full_run, max_k=10, rng=np.random.default_rng(1))
        full_ipc = full_run.overall_ipc
        assert abs(est.overall_ipc - full_ipc) / full_ipc < 0.1
        assert 0 < est.sample_size <= 1

    def test_representatives_belong_to_clusters(self, full_run):
        est = estimate_simpoint(full_run, max_k=10, rng=np.random.default_rng(2))
        for c, rep in enumerate(est.representatives):
            if rep >= 0:
                assert est.labels[rep] == c

    def test_two_code_variants_detected(self, gpu):
        """Launches running different basic blocks produce BBV-separable
        units, so SimPoint needs at least two clusters."""
        a = LaunchSpec(
            segments=(Segment(count=96, insts_per_warp=32, mem_ratio=0.05),),
            warps_per_block=4,
            bb_offset=0,
            data_key=0,
        )
        b = LaunchSpec(
            segments=(
                Segment(
                    count=96,
                    insts_per_warp=32,
                    mem_ratio=0.3,
                    coalesce_mean=5.0,
                    pattern="gather",
                ),
            ),
            warps_per_block=4,
            bb_offset=9,
            data_key=1,
        )
        kernel = build_kernel("variants", "test", "regular", [a, b, a, b], 5)
        full = run_full(kernel, gpu, unit_insts=2000)
        est = estimate_simpoint(full, max_k=8, rng=np.random.default_rng(3))
        assert len({c for c in est.labels}) >= 2

    def test_rejects_run_without_bbvs(self, gpu):
        kernel = make_uniform_kernel(num_launches=1)
        full = run_full(kernel, gpu, unit_insts=2000, record_bbv=False)
        with pytest.raises(ValueError):
            estimate_simpoint(full)

    def test_rejects_unitless_run(self, gpu):
        kernel = make_uniform_kernel(num_launches=1)
        full = run_full(kernel, gpu)
        with pytest.raises(ValueError):
            estimate_simpoint(full)
