"""Tests for the homogeneous-region sampling state machine."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.core.intralaunch import RegionSampler


def make_sampler(
    region_of,
    insts_per_block=100,
    occupancy=2,
    config=None,
):
    region_of = np.asarray(region_of, dtype=np.int64)
    insts = np.full(len(region_of), insts_per_block, dtype=np.int64)
    return RegionSampler(
        region_of=region_of,
        block_warp_insts=insts,
        config=config or SamplingConfig(min_warm_units=2, min_region_epochs=2),
        occupancy=occupancy,
    )


def drive_block(sampler, tb_id, now, issued, simulate_expected=True):
    """Dispatch one block and assert the decision."""
    decision = sampler.on_dispatch(tb_id, now, issued)
    assert decision == simulate_expected, f"tb {tb_id}"
    return decision


class TestRegionEntry:
    def test_enters_when_all_residents_share_region(self):
        s = make_sampler([0] * 10, occupancy=2)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        assert s.episodes, "entered a region"
        assert s.episodes[0].region_id == 0

    def test_no_entry_with_unmarked_resident(self):
        s = make_sampler([-1, 0, 0, 0, 0, 0], occupancy=2)
        s.on_dispatch(0, 0, 0)  # region -1 resident
        s.on_dispatch(1, 0, 0)
        assert not s.episodes
        # After the -1 block retires, only region-0 residents remain.
        s.on_retire(0, 10, 50)
        assert s.episodes

    def test_mixed_regions_never_fast_forward(self):
        # The very first dispatch is trivially homogeneous (one
        # resident), but a mixed composition exits the region before any
        # warm unit completes, so stable units cannot trigger FF.
        s = make_sampler([0, 1, 0, 1], occupancy=2)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        for i in range(4):
            s.on_unit_start(i * 100)
            s.on_unit_complete(1000, 100, (i + 1) * 100, (i + 1) * 1000)
        assert s.fast_forwarded_regions == 0
        assert s.skipped_warp_insts == 0


class TestWarmingAndFastForward:
    def _warmed_sampler(self, n_blocks=40, occupancy=2):
        """Drive a sampler through entry and two stable units."""
        s = make_sampler([0] * n_blocks, occupancy=occupancy)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        # Two sampling units with identical IPC -> stable.
        s.on_unit_start(0)
        s.on_unit_complete(1000, 100, 100, 1000)
        s.on_unit_start(100)
        s.on_unit_complete(1000, 100, 200, 2000)
        return s

    def test_ff_begins_after_stable_units(self):
        s = self._warmed_sampler()
        assert s.episodes[0].fast_forwarded
        assert s.episodes[0].predicted_ipc == pytest.approx(10.0)

    def test_ff_skips_blocks_and_accounts(self):
        s = self._warmed_sampler()
        assert not s.on_dispatch(2, 200, 2000)  # skipped
        assert s.skipped_warp_insts == 100
        assert s.extra_cycles == pytest.approx(100 / 10.0)

    def test_unstable_units_keep_warming(self):
        s = make_sampler([0] * 40)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        s.on_unit_start(0)
        s.on_unit_complete(1000, 100, 100, 1000)  # ipc 10
        s.on_unit_start(100)
        s.on_unit_complete(1000, 50, 150, 2000)  # ipc 20: +100%
        assert not s.episodes[0].fast_forwarded
        # Third unit close to the second -> now stable.
        s.on_unit_start(150)
        s.on_unit_complete(1000, 52, 202, 3000)
        assert s.episodes[0].fast_forwarded

    def test_unit_straddling_entry_ignored(self):
        s = make_sampler([0] * 40)
        s.on_unit_start(0)  # unit starts before any region
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        s.on_unit_complete(1000, 100, 100, 1000)  # invalid: started outside
        s.on_unit_start(100)
        s.on_unit_complete(1000, 100, 200, 2000)
        # Only one valid unit so far: cannot fast-forward yet.
        assert not s.episodes[0].fast_forwarded

    def test_min_warm_units_respected(self):
        cfg = SamplingConfig(min_warm_units=4, min_region_epochs=2)
        s = make_sampler([0] * 60, config=cfg)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        for i in range(3):
            s.on_unit_start(i * 100)
            s.on_unit_complete(1000, 100, (i + 1) * 100, (i + 1) * 1000)
        assert not s.episodes[0].fast_forwarded  # only 3 units
        s.on_unit_start(300)
        s.on_unit_complete(1000, 100, 400, 4000)
        assert s.episodes[0].fast_forwarded


class TestWaveQuantizedSkipping:
    def test_skip_budget_is_multiple_of_occupancy(self):
        s = make_sampler([0] * 20, occupancy=3)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        s.on_dispatch(2, 0, 0)
        s.on_unit_start(0)
        s.on_unit_complete(900, 100, 100, 900)
        s.on_unit_start(100)
        s.on_unit_complete(900, 100, 200, 1800)
        assert s.episodes[0].fast_forwarded
        # Blocks 3..16 are skippable (17..19 are the reserved tail).
        # Contiguous run from 3: 14 blocks -> budget 12 (4 waves of 3).
        skipped = 0
        for tb in range(3, 20):
            if not s.on_dispatch(tb, 300 + tb, 2000 + tb):
                skipped += 1
        assert skipped == 12
        assert s.skipped_warp_insts == 12 * 100

    def test_region_tail_never_skipped(self):
        s = make_sampler([0] * 10, occupancy=4)
        # Blocks 6..9 (the last occupancy-many) are not skippable.
        assert not any(s._skippable[6:])
        assert s._skippable[0]

    def test_foreign_block_exits_ff(self):
        s = make_sampler([0] * 10 + [1] * 10, occupancy=2)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        s.on_unit_start(0)
        s.on_unit_complete(800, 100, 100, 800)
        s.on_unit_start(100)
        s.on_unit_complete(800, 100, 200, 1600)
        assert s.episodes[0].fast_forwarded
        assert not s.on_dispatch(2, 210, 1700)  # region-0 block: skipped
        assert s.on_dispatch(10, 220, 1800)  # region-1 block: simulated
        assert s.fast_forwarded_regions == 1


class TestDrainReplacement:
    def test_mid_launch_exit_replaces_drain_window(self):
        s = make_sampler([0] * 10 + [1] * 10, occupancy=2)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        s.on_unit_start(0)
        s.on_unit_complete(1000, 100, 100, 1000)
        s.on_unit_start(100)
        s.on_unit_complete(1000, 100, 200, 2000)  # FF at now=200, issued=2000
        s.on_dispatch(2, 200, 2000)  # skip
        before = s.extra_cycles
        # Foreign dispatch at now=500, issued=2600: drain window was 300
        # cycles for 600 insts; replaced by 600/10 = 60 cycles.
        s.on_dispatch(10, 500, 2600)
        replacement = (600 / 10.0) - 300
        assert s.extra_cycles - before == pytest.approx(replacement)
        assert s.episodes[0].drain_insts == 600
        assert s.episodes[0].drain_cycles == 300

    def test_finalize_closes_open_ff(self):
        s = make_sampler([0] * 40, occupancy=2)
        s.on_dispatch(0, 0, 0)
        s.on_dispatch(1, 0, 0)
        s.on_unit_start(0)
        s.on_unit_complete(1000, 100, 100, 1000)
        s.on_unit_start(100)
        s.on_unit_complete(1000, 100, 200, 2000)
        s.on_dispatch(2, 200, 2000)
        s.finalize(600, 3000)
        assert s.episodes == s.episodes  # no crash; episode closed
        assert s.extra_cycles == pytest.approx(100 / 10.0 + (1000 / 10.0 - 400))


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            RegionSampler(np.zeros(3), np.zeros(4))

    def test_bad_occupancy(self):
        with pytest.raises(ValueError):
            RegionSampler(np.zeros(3), np.zeros(3), occupancy=0)
