"""Memory-subsystem edge cases, run against all three front ends.

The property battery in ``test_sim_memory_fastpath.py`` explores the
bulk of the state space randomly; this module pins the degenerate
geometries and instruction shapes where batched/array fast paths are
most likely to diverge from the oracle: capacity-1 caches, an L2
smaller than a single transaction batch, self-eviction inside one
instruction, non-power-of-two strides that alias into one bank, and
zero-transaction instructions.  Every case is a differential test —
each front end against a fresh reference oracle — so the expected
behaviour is defined by the oracle, never hand-computed.
"""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.sim.caches import (
    L2_ORGANIZATIONS,
    ArrayLRUCache,
    LRUCache,
    ShardedL2,
    make_l2,
)
from repro.sim.memory import (
    MEMORY_FRONT_ENDS,
    ReferenceMemoryHierarchy,
    VectorMemoryHierarchy,
    make_memory,
)
from tests.test_sim_memory_fastpath import hierarchy_state

FRONT_ENDS = ["fast", "reference", "vector"]


def _assert_differential(cfg: GPUConfig, front_end: str, seq) -> None:
    """Drive ``seq`` through ``front_end`` and a fresh oracle; compare
    every completion time and the final hierarchy state."""
    mem = make_memory(cfg, front_end)
    ref = ReferenceMemoryHierarchy(cfg)
    for sm_id, addr, spread, num_req, now in seq:
        got = mem.load(sm_id, addr, spread, num_req, now)
        want = ref.load(sm_id, addr, spread, num_req, now)
        assert got == want, (sm_id, addr, spread, num_req, now)
    assert hierarchy_state(mem) == hierarchy_state(ref)


def test_front_end_list_matches_registry():
    # The parametrization below must cover every registered front end.
    assert set(FRONT_ENDS) == set(MEMORY_FRONT_ENDS)


@pytest.mark.parametrize("front_end", FRONT_ENDS)
class TestSingleLineCaches:
    """Capacity-1 L1 and L2: every distinct-line access evicts the
    previous resident, so the LRU 'order' is a single slot and the
    eviction machinery runs on almost every transaction."""

    def _cfg(self) -> GPUConfig:
        # 1 KiB capacity with 1 KiB lines: exactly one line per cache.
        return GPUConfig(
            num_sms=2, l1_kib=1, l1_line=1024, l2_kib=1, l2_line=1024,
            dram_channels=2, dram_banks=2,
        )

    def test_alternating_lines_thrash(self, front_end):
        seq = [
            (0, addr, 0, 1, now * 10)
            for now, addr in enumerate([0, 2048, 0, 2048, 4096, 0] * 4)
        ]
        _assert_differential(self._cfg(), front_end, seq)

    def test_batch_through_single_line_cache(self, front_end):
        # A 16-transaction batch through a one-line hierarchy: every
        # transaction past the first misses both levels.
        seq = [(0, 0, 1024, 16, 0), (1, 512, 2048, 8, 50), (0, 0, 0, 4, 90)]
        _assert_differential(self._cfg(), front_end, seq)


@pytest.mark.parametrize("front_end", FRONT_ENDS)
class TestL2SmallerThanBatch:
    """L2 with 8 lines fed 32-transaction batches: the shared level
    wraps around within one instruction, so batch-local L2 state must
    still follow strict per-transaction order."""

    def _cfg(self) -> GPUConfig:
        return GPUConfig(
            num_sms=2, l1_kib=1, l1_line=128,   # 8 L1 lines
            l2_kib=1, l2_line=128,              # 8 L2 lines < 32 txns
            dram_channels=3, dram_banks=4,
        )

    def test_batch_wraps_l2(self, front_end):
        seq = [
            (0, 0, 128, 32, 0),        # 32 distinct lines through 8-line L2
            (1, 0, 128, 32, 10),       # same window from the other SM
            (0, 4096, 256, 32, 20),    # strided, still wider than L2
        ]
        _assert_differential(self._cfg(), front_end, seq)

    def test_revisit_after_wrap_misses(self, front_end):
        # After wrapping, the batch's own first lines are gone again —
        # revisiting them must miss in both levels (no stale hits from
        # batch-local caching of probe results).
        seq = [(0, 0, 128, 32, 0), (0, 0, 128, 8, 100)]
        _assert_differential(self._cfg(), front_end, seq)


@pytest.mark.parametrize("front_end", FRONT_ENDS)
class TestSelfEvictionWithinOneInstruction:
    """One instruction larger than the L1's line capacity: the batch
    evicts its own earlier lines before it finishes."""

    def _cfg(self) -> GPUConfig:
        return GPUConfig(
            num_sms=1, l1_kib=1, l1_line=128,   # 8 lines < 32 txns
            l2_kib=64, l2_line=128,             # roomy L2 isolates L1 churn
            dram_channels=2, dram_banks=2,
        )

    def test_batch_evicts_own_head(self, front_end):
        seq = [
            (0, 0, 128, 32, 0),
            # Immediately revisit the head of the previous batch: its
            # lines were self-evicted from L1 but still sit in L2.
            (0, 0, 128, 4, 50),
        ]
        _assert_differential(self._cfg(), front_end, seq)

    def test_interleaved_self_evicting_batches(self, front_end):
        seq = [
            (0, i * 64, 128, 32, i * 7) for i in range(12)
        ]
        _assert_differential(self._cfg(), front_end, seq)


@pytest.mark.parametrize("front_end", FRONT_ENDS)
class TestNonPowerOfTwoStrides:
    """Strides that are not multiples of the line size (and not powers
    of two) alias irregularly across lines and DRAM banks — both the
    modulo bank path (12 banks) and the mask path (8 banks)."""

    STRIDES = [77, 129, 384, 1000, 3 * 128 + 1]

    def test_modulo_bank_path(self, front_end):
        cfg = GPUConfig(
            num_sms=2, l1_kib=1, l2_kib=4,
            dram_channels=3, dram_banks=4,   # 12 banks: modulo
        )
        seq = [
            (sm, 13 * i, stride, 24, 5 * i)
            for i, stride in enumerate(self.STRIDES)
            for sm in (0, 1)
        ]
        _assert_differential(cfg, front_end, seq)

    def test_mask_bank_path(self, front_end):
        cfg = GPUConfig(
            num_sms=2, l1_kib=1, l2_kib=4,
            dram_channels=2, dram_banks=4,   # 8 banks: mask
        )
        seq = [
            (sm, 13 * i, stride, 24, 5 * i)
            for i, stride in enumerate(self.STRIDES)
            for sm in (0, 1)
        ]
        _assert_differential(cfg, front_end, seq)

    def test_same_bank_aliasing_stride(self, front_end):
        # Stride = num_banks * line bytes: every transaction of every
        # batch lands in bank 0, maximizing queueing interaction.
        cfg = GPUConfig(
            num_sms=1, l1_kib=1, l2_kib=2,
            dram_channels=2, dram_banks=4,
        )
        stride = 8 * 128
        seq = [(0, k * stride, stride, 16, k) for k in range(8)]
        _assert_differential(cfg, front_end, seq)


@pytest.mark.parametrize("front_end", FRONT_ENDS)
class TestZeroTransactionInstructions:
    """``num_req == 0``: a degenerate instruction performs no
    transactions, touches no state, and completes at the L1 floor."""

    def test_returns_l1_floor_and_touches_nothing(self, front_end):
        cfg = GPUConfig(num_sms=1, l1_kib=1, l2_kib=2)
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(cfg)
        before = hierarchy_state(mem)
        for now in (0, 17, 1000):
            got = mem.load(0, 4096, 128, 0, now)
            assert got == ref.load(0, 4096, 128, 0, now)
            assert got == now + cfg.l1_latency
        # No cache, DRAM or statistics state may have moved.
        assert hierarchy_state(mem) == before

    def test_zero_txn_between_real_traffic(self, front_end):
        cfg = GPUConfig(num_sms=1, l1_kib=1, l2_kib=2)
        seq = [
            (0, 0, 128, 8, 0),
            (0, 512, 256, 0, 10),   # zero-transaction in the middle
            (0, 0, 128, 8, 20),
        ]
        _assert_differential(cfg, front_end, seq)


class TestVectorSpecificEdges:
    """Edges unique to the array-backed representation: ring headroom
    exhaustion (hit streaks fill the log) and the forced-vector drain
    on degenerate geometries."""

    def test_hit_streak_compaction_stays_equivalent(self):
        # A tiny L1 hammered with hits fills the ring log (hits append
        # without consuming) until compaction; equivalence must hold
        # across compactions, including batch-path headroom rebuilds.
        cfg = GPUConfig(num_sms=1, l1_kib=1, l1_line=512, l2_kib=2)
        vec = VectorMemoryHierarchy(cfg)
        ref = ReferenceMemoryHierarchy(cfg)
        for i in range(4000):
            addr = (i % 2) * 512
            assert vec.load(0, addr, 0, 1, i) == ref.load(0, addr, 0, 1, i)
        assert sum(c.compactions for c in vec.l1s) > 0
        assert hierarchy_state(vec) == hierarchy_state(ref)

    def test_batch_ending_exactly_at_l1_ring_fullness(self):
        # Regression: a batch whose appends land ``tail - head``
        # exactly on the ring size must compact up front (strict
        # headroom).  Every later append site checks fullness only
        # *after* appending, so occupancy that slips past the ring
        # size is never compacted again: the ring wraps over live log
        # entries and LRU state silently corrupts while the rest of
        # the differential battery stays green.
        cfg = GPUConfig(
            num_sms=1, l1_kib=2, l1_line=128, l2_kib=4, l2_line=128,
        )
        vec = VectorMemoryHierarchy(cfg)
        ref = ReferenceMemoryHierarchy(cfg)
        l1 = vec.l1s[0]
        num_lines = l1.num_lines
        ringsz = l1._ring_size
        # Hit batches append num_lines entries without consuming any,
        # so whole batches tile the ring exactly up to the boundary.
        assert ringsz % num_lines == 0
        now = 0

        def step(addr, spread, num_req):
            nonlocal now
            got = vec.load(0, addr, spread, num_req, now)
            want = ref.load(0, addr, spread, num_req, now)
            assert got == want, (addr, spread, num_req, now)
            now += 10

        # One warming miss batch, then hit batches until one would
        # end with tail - head == ring size.
        for _ in range(ringsz // num_lines):
            step(0, 128, num_lines)
        # Strict headroom must have compacted the boundary batch.
        assert l1._ht[1] - l1._ht[0] < ringsz
        # Continue through every path: single-transaction hits (these
        # wrapped the ring before the fix), an all-miss eviction storm
        # (scans the log), and a careful sub-line-spread batch.
        for i in range(2 * ringsz):
            step((i % num_lines) * 128, 0, 1)
        step(num_lines * 128, 128, num_lines)
        step(0, 64, 32)
        assert hierarchy_state(vec) == hierarchy_state(ref)

    def test_batch_ending_exactly_at_l2_ring_fullness(self):
        # Same boundary for the shared L2: an L1 small enough that a
        # 16-line working set always misses it, so every transaction
        # reaches the L2 and its ring fills on hit batches.
        cfg = GPUConfig(
            num_sms=1, l1_kib=1, l1_line=128, l2_kib=4, l2_line=128,
        )
        vec = VectorMemoryHierarchy(cfg)
        ref = ReferenceMemoryHierarchy(cfg)
        l2 = vec.l2
        ringsz = l2._ring_size
        width = 16  # working set: wider than L1 (8), inside L2 (32)
        assert ringsz % width == 0
        now = 0

        def step(addr, spread, num_req):
            nonlocal now
            got = vec.load(0, addr, spread, num_req, now)
            want = ref.load(0, addr, spread, num_req, now)
            assert got == want, (addr, spread, num_req, now)
            now += 10

        for _ in range(ringsz // width):
            step(0, 128, width)
        assert l2._ht[1] - l2._ht[0] < ringsz
        # Single-transaction L2 hits (L1 thrashes the 16-line cycle),
        # then an L2 eviction storm over fresh lines.
        for i in range(2 * ringsz):
            step((i % width) * 128, 0, 1)
        step(width * 128, 128, 32)
        assert hierarchy_state(vec) == hierarchy_state(ref)

    def test_forced_vector_drain_on_degenerate_geometry(self):
        cfg = GPUConfig(
            num_sms=1, l1_kib=1, l1_line=1024, l2_kib=1, l2_line=1024,
            dram_channels=2, dram_banks=2,
        )
        vec = VectorMemoryHierarchy(cfg, vector_threshold=1)
        ref = ReferenceMemoryHierarchy(cfg)
        for k in range(6):
            assert vec.load(0, k * 128, 1024, 16, k * 3) == ref.load(
                0, k * 128, 1024, 16, k * 3
            )
        assert vec.vector_drains > 0
        assert hierarchy_state(vec) == hierarchy_state(ref)


def _assert_sharded_differential(cfg: GPUConfig, front_end: str, seq) -> None:
    """Like :func:`_assert_differential`, but against the *unsharded*
    oracle: the ShardedL2 invariant is equality with one big LRU, not
    with a sharded reference."""
    mem = make_memory(cfg, front_end)
    ref = ReferenceMemoryHierarchy(cfg.with_(l2_shards=1))
    for sm_id, addr, spread, num_req, now in seq:
        got = mem.load(sm_id, addr, spread, num_req, now)
        want = ref.load(sm_id, addr, spread, num_req, now)
        assert got == want, (sm_id, addr, spread, num_req, now)
    assert hierarchy_state(mem) == hierarchy_state(ref)


def test_l2_organization_registry():
    assert set(L2_ORGANIZATIONS) == {"unified", "sharded"}
    assert isinstance(make_l2(4096, 128), LRUCache)
    assert isinstance(make_l2(4096, 128, 1, ArrayLRUCache), ArrayLRUCache)
    sharded = make_l2(4096, 128, 4)
    assert isinstance(sharded, ShardedL2)
    assert sharded.num_shards == 4


def test_non_power_of_two_shards_rejected():
    # Both the cache itself and the configuration layer must reject
    # shard counts where the address-slice mask would be ill-formed.
    for bad in (0, -2, 3, 6, 12):
        with pytest.raises(ValueError):
            ShardedL2(4096, 128, bad)
        with pytest.raises(ValueError):
            GPUConfig(l2_shards=bad)


@pytest.mark.parametrize("line_cls", [LRUCache, ArrayLRUCache])
def test_single_shard_degenerates_to_oracle(line_cls):
    # ShardedL2 with one shard is the whole cache behind the shard
    # dispatch: bit-identical to the plain LRU on any stream (the
    # factory normally short-circuits shards=1 to the plain cache, so
    # this pins the degenerate ShardedL2 itself).
    sharded = ShardedL2(8 * 128, 128, 1, line_cls=line_cls)
    oracle = LRUCache(8 * 128, 128)
    for i in range(600):
        addr = (i * 37) % (24 * 128)
        assert sharded.access(addr >> 7) == oracle.access(addr >> 7)
    assert sharded.lru_lines() == oracle.lru_lines()
    assert (sharded.hits, sharded.misses, sharded.occupancy) == (
        oracle.hits, oracle.misses, oracle.occupancy
    )


@pytest.mark.parametrize("front_end", FRONT_ENDS)
class TestShardedL2Edges:
    """Degenerate shard geometries, every front end against the
    unsharded oracle: shards of capacity ~1 line (global eviction on
    almost every miss), batches wider than the whole sharded L2, and
    traffic pinned to a single shard."""

    def test_capacity_one_shards_thrash(self, front_end):
        # 2 lines total across 2 shards: the global-LRU eviction picks
        # between shard heads on nearly every access.
        cfg = GPUConfig(
            num_sms=2, l1_kib=1, l1_line=1024, l2_kib=1, l2_line=512,
            l2_shards=2, dram_channels=2, dram_banks=2,
        )
        seq = [
            (sm, addr, 0, 1, now * 10)
            for now, (sm, addr) in enumerate(
                [(0, 0), (0, 512), (1, 1024), (0, 1536), (1, 0),
                 (0, 2048), (1, 512), (0, 0)] * 6
            )
        ]
        _assert_sharded_differential(cfg, front_end, seq)

    def test_batch_wider_than_sharded_l2(self, front_end):
        # 32-transaction batches through an 8-line L2 split 4 ways:
        # the batch wraps the *global* capacity within one instruction
        # while individual shards stay tiny.
        cfg = GPUConfig(
            num_sms=2, l1_kib=1, l1_line=128, l2_kib=1, l2_line=128,
            l2_shards=4, dram_channels=3, dram_banks=4,
        )
        seq = [
            (0, 0, 128, 32, 0),
            (1, 0, 128, 32, 10),
            (0, 4096, 256, 32, 20),
            (0, 0, 128, 8, 100),
        ]
        _assert_sharded_differential(cfg, front_end, seq)

    def test_single_shard_hammered(self, front_end):
        # Addresses chosen so every line lands in shard 0 (even line
        # indices with 2 shards): one shard takes all the traffic and
        # overflows its proportional share, which the global-LRU
        # organization must absorb exactly like the unified cache.
        cfg = GPUConfig(
            num_sms=1, l1_kib=1, l1_line=128, l2_kib=2, l2_line=128,
            l2_shards=2, dram_channels=2, dram_banks=2,
        )
        seq = [
            (0, (2 * (i % 24)) * 128, 0, 1, i * 5) for i in range(120)
        ]
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(cfg.with_(l2_shards=1))
        for sm_id, addr, spread, num_req, now in seq:
            assert mem.load(sm_id, addr, spread, num_req, now) == ref.load(
                sm_id, addr, spread, num_req, now
            )
        assert hierarchy_state(mem) == hierarchy_state(ref)
        probes = mem.l2.shard_probes
        assert probes[1] == 0 and probes[0] == sum(probes)
        assert mem.l2.shard_imbalance == pytest.approx(1.0)


class TestShardedVectorRingBoundaries:
    """The PR 6 ring-wrap regression, per shard: with the array-backed
    front end each ShardedL2 shard is its own ring-log LRU, and a hit
    streak pinned to one shard must compact that shard's ring (strict
    headroom) instead of wrapping it over live entries."""

    def test_hit_streak_fills_one_shard_ring(self):
        cfg = GPUConfig(
            num_sms=1, l1_kib=1, l1_line=128, l2_kib=4, l2_line=128,
            l2_shards=2, dram_channels=2, dram_banks=2,
        )
        vec = VectorMemoryHierarchy(cfg)
        ref = ReferenceMemoryHierarchy(cfg.with_(l2_shards=1))
        shard0 = vec.l2.shards[0]
        ringsz = shard0._ring_size
        # 16 even-indexed lines: thrash the 8-line L1 so every access
        # reaches the L2, land every line in shard 0, and stay inside
        # the global L2 capacity so the streak is pure hits (each hit
        # appends a ring entry without consuming one).
        now = 0
        for i in range(3 * ringsz):
            addr = (2 * (i % 16)) * 128
            got = vec.load(0, addr, 0, 1, now)
            want = ref.load(0, addr, 0, 1, now)
            assert got == want, (i, addr)
            now += 3
        assert shard0.compactions > 0
        assert vec.l2.shards[1].accesses == 0
        for shard in vec.l2.shards:
            assert shard._ht[1] - shard._ht[0] <= shard._ring_size
        assert hierarchy_state(vec) == hierarchy_state(ref)

    def test_eviction_storm_across_shard_rings(self):
        # Striding fresh lines through all shards: every shard's ring
        # sees interleaved miss/evict traffic while the global clock
        # orders evictions across them; equivalence must survive the
        # churn and every ring must respect strict headroom.
        cfg = GPUConfig(
            num_sms=1, l1_kib=1, l1_line=128, l2_kib=2, l2_line=128,
            l2_shards=4, dram_channels=2, dram_banks=2,
        )
        vec = VectorMemoryHierarchy(cfg)
        ref = ReferenceMemoryHierarchy(cfg.with_(l2_shards=1))
        max_ring = max(s._ring_size for s in vec.l2.shards)
        now = 0
        for i in range(4 * max_ring):
            addr = ((i * 7) % 64) * 128
            assert vec.load(0, addr, 0, 1, now) == ref.load(0, addr, 0, 1, now)
            now += 2
        for shard in vec.l2.shards:
            assert shard._ht[1] - shard._ht[0] <= shard._ring_size
        assert hierarchy_state(vec) == hierarchy_state(ref)
