"""Tests for the warp-scheduler policy knob and the scaling driver."""

import pytest

from repro.analysis.launch_accuracy import launch_accuracy
from repro.analysis.scaling import run_scaling
from repro.baselines import run_full
from repro.config import GPUConfig
from repro.core.pipeline import run_tbpoint
from repro.profiler import profile_kernel
from repro.sim import GPUSimulator

from tests.conftest import make_uniform_kernel


class TestSchedulerPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            GPUConfig(scheduler="fifo")

    def test_policies_issue_same_instructions(self):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=64)
        launch = kernel.launches[0]
        oldest = GPUSimulator(
            GPUConfig(num_sms=2, warps_per_sm=8, scheduler="oldest")
        ).run_launch(launch)
        lrr = GPUSimulator(
            GPUConfig(num_sms=2, warps_per_sm=8, scheduler="lrr")
        ).run_launch(launch)
        assert oldest.issued_warp_insts == lrr.issued_warp_insts
        # Different interleavings, same ballpark throughput.
        assert lrr.wall_cycles == pytest.approx(oldest.wall_cycles, rel=0.2)

    def test_lrr_deterministic(self):
        kernel = make_uniform_kernel(num_launches=1, blocks_per_launch=32)
        launch = kernel.launches[0]
        gpu = GPUConfig(num_sms=2, warps_per_sm=8, scheduler="lrr")
        a = GPUSimulator(gpu).run_launch(launch)
        b = GPUSimulator(gpu).run_launch(launch)
        assert a.wall_cycles == b.wall_cycles

    def test_tbpoint_works_under_lrr(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=96)
        gpu = GPUConfig(num_sms=4, warps_per_sm=16, scheduler="lrr")
        full = run_full(kernel, gpu)
        tbp = run_tbpoint(kernel, gpu)
        err = abs(tbp.overall_ipc - full.overall_ipc) / full.overall_ipc
        assert err < 0.1


class TestScalingDriver:
    def test_points_cover_scales(self):
        points = run_scaling("stream", scales=(0.02, 0.04), seed=7)
        assert [p.scale for p in points] == [0.02, 0.04]
        for p in points:
            assert p.error >= 0
            assert 0 < p.sample_size <= 1
            assert p.num_blocks > 0


class TestLaunchAccuracy:
    def test_simulated_launch_error_small(self):
        kernel = make_uniform_kernel(num_launches=3, blocks_per_launch=96)
        gpu = GPUConfig(num_sms=4, warps_per_sm=16)
        full = run_full(kernel, gpu)
        tbp = run_tbpoint(kernel, gpu)
        acc = launch_accuracy(tbp.estimate, full)
        assert len(acc.errors) == 3
        assert acc.mean_error < 0.15
        assert acc.mean_unsimulated_error >= 0

    def test_mismatched_lengths_rejected(self):
        kernel = make_uniform_kernel(num_launches=2, blocks_per_launch=64)
        gpu = GPUConfig(num_sms=2, warps_per_sm=8)
        full = run_full(kernel, gpu)
        tbp = run_tbpoint(kernel, gpu)
        import dataclasses

        truncated = dataclasses.replace(
            tbp.estimate, launches=tbp.estimate.launches[:1]
        )
        with pytest.raises(ValueError):
            launch_accuracy(truncated, full)
