"""Tests for complete-linkage hierarchical clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import hierarchical_cluster, pairwise_euclidean


class TestPairwiseEuclidean:
    def test_known_distances(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_euclidean(pts)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 0] == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(20, 3))
        d = pairwise_euclidean(pts)
        np.testing.assert_allclose(d, d.T)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pairwise_euclidean(np.arange(5.0))


class TestHierarchicalCluster:
    def test_single_point(self):
        res = hierarchical_cluster(np.array([[1.0, 2.0]]), 0.5)
        assert res.num_clusters == 1
        assert res.representatives[0] == 0

    def test_two_well_separated_groups(self):
        pts = np.array([[0.0], [0.1], [0.05], [5.0], [5.1]])
        res = hierarchical_cluster(pts, threshold=0.5)
        assert res.num_clusters == 2
        assert res.labels[0] == res.labels[1] == res.labels[2]
        assert res.labels[3] == res.labels[4]
        assert res.labels[0] != res.labels[3]

    def test_threshold_zero_keeps_distinct_points_apart(self):
        pts = np.array([[0.0], [1.0], [2.0]])
        res = hierarchical_cluster(pts, threshold=0.0)
        assert res.num_clusters == 3

    def test_threshold_zero_merges_identical_points(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 0.0]])
        res = hierarchical_cluster(pts, threshold=0.0)
        assert res.labels[0] == res.labels[1]
        assert res.num_clusters == 2

    def test_huge_threshold_single_cluster(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(30, 4))
        res = hierarchical_cluster(pts, threshold=1e9)
        assert res.num_clusters == 1
        assert res.sizes[0] == 30

    def test_representative_is_member_closest_to_center(self):
        pts = np.array([[0.0], [1.0], [2.0]])
        res = hierarchical_cluster(pts, threshold=10.0)
        assert res.representatives[0] == 1  # the median point

    def test_labels_contiguous_from_zero(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(40, 2)) * 5
        res = hierarchical_cluster(pts, threshold=1.0)
        assert set(res.labels) == set(range(res.num_clusters))

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(25, 2))
        res = hierarchical_cluster(pts, threshold=1.0)
        total = sum(res.weight(c) for c in range(res.num_clusters))
        assert total == pytest.approx(1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((3, 1)), -1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hierarchical_cluster(np.zeros((0, 2)), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 25),
        d=st.integers(1, 4),
        threshold=st.floats(0.0, 3.0),
        seed=st.integers(0, 1000),
    )
    def test_max_intra_cluster_distance_bounded(self, n, d, threshold, seed):
        """The paper's sigma guarantee: within every returned cluster the
        max pairwise distance is <= threshold."""
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, d))
        res = hierarchical_cluster(pts, threshold)
        dist = pairwise_euclidean(pts)
        for c in range(res.num_clusters):
            members = np.flatnonzero(res.labels == c)
            if len(members) > 1:
                sub = dist[np.ix_(members, members)]
                assert sub.max() <= threshold + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 25), seed=st.integers(0, 1000))
    def test_every_point_labelled_and_reps_valid(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, 2))
        res = hierarchical_cluster(pts, 0.7)
        assert len(res.labels) == n
        assert res.sizes.sum() == n
        for c, rep in enumerate(res.representatives):
            assert res.labels[rep] == c
