"""Tests for the Eq. 3 Markov-chain IPC model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.markov import (
    analytic_ipc,
    ipc_from_steady_state,
    steady_state,
    transition_matrix,
    warp_runnable_probability,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        T = transition_matrix(0.1, 100.0, 4)
        np.testing.assert_allclose(T.sum(axis=1), 1.0)

    def test_shape(self):
        assert transition_matrix(0.1, 50.0, 3).shape == (8, 8)

    def test_single_warp_entries(self):
        p, M = 0.2, 10.0
        T = transition_matrix(p, M, 1)
        # state 0 = stalled, state 1 = runnable
        assert T[1, 0] == pytest.approx(p)  # runnable -> stalled
        assert T[1, 1] == pytest.approx(1 - p)
        assert T[0, 1] == pytest.approx(1 / M)  # stalled -> wakes
        assert T[0, 0] == pytest.approx(1 - 1 / M)

    def test_per_warp_latencies(self):
        T = transition_matrix(0.1, [10.0, 1000.0], 2)
        np.testing.assert_allclose(T.sum(axis=1), 1.0)
        # Warp with huge M wakes far more slowly.
        assert T[0, 1] > T[0, 2]  # bit0 wake (M=10) vs bit1 wake (M=1000)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            transition_matrix(1.5, 100.0, 2)

    def test_rejects_sub_cycle_latency(self):
        with pytest.raises(ValueError):
            transition_matrix(0.1, 0.5, 2)

    def test_rejects_huge_n(self):
        with pytest.raises(ValueError):
            transition_matrix(0.1, 100.0, 20)


class TestSteadyState:
    def test_distribution_sums_to_one(self):
        T = transition_matrix(0.1, 100.0, 4)
        v = steady_state(T)
        assert v.sum() == pytest.approx(1.0)
        assert (v >= 0).all()

    def test_is_fixed_point(self):
        T = transition_matrix(0.15, 80.0, 3)
        v = steady_state(T)
        np.testing.assert_allclose(v @ T, v, atol=1e-10)


class TestAnalyticAgreesWithExact:
    @settings(max_examples=25, deadline=None)
    @given(
        p=st.floats(0.01, 0.5),
        m=st.floats(2.0, 500.0),
        n=st.integers(1, 6),
    )
    def test_exact_vs_factorized(self, p, m, n):
        """Eq. 3's warps are independent chains, so the explicit matrix
        and the closed form must agree."""
        T = transition_matrix(p, m, n)
        exact = ipc_from_steady_state(steady_state(T))
        closed = analytic_ipc(p, m, n)
        assert exact == pytest.approx(closed, rel=1e-6)

    def test_per_warp_latency_vector(self):
        ms = np.array([50.0, 100.0, 200.0, 400.0])
        T = transition_matrix(0.1, ms, 4)
        exact = ipc_from_steady_state(steady_state(T))
        closed = analytic_ipc(0.1, ms)
        assert exact == pytest.approx(closed, rel=1e-6)


class TestAnalyticIPC:
    def test_more_warps_higher_ipc(self):
        ipcs = [analytic_ipc(0.1, 200.0, n) for n in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(ipcs, ipcs[1:]))

    def test_higher_stall_prob_lower_ipc(self):
        assert analytic_ipc(0.05, 200.0, 4) > analytic_ipc(0.2, 200.0, 4)

    def test_zero_stall_prob_full_ipc(self):
        assert analytic_ipc(0.0, 100.0, 2) == pytest.approx(1.0)

    def test_batch_of_samples(self):
        ms = np.full((100, 4), 100.0)
        out = analytic_ipc(0.1, ms)
        assert out.shape == (100,)
        assert np.allclose(out, out[0])

    def test_scalar_requires_num_warps(self):
        with pytest.raises(ValueError):
            analytic_ipc(0.1, 100.0)

    def test_runnable_probability(self):
        # p*M = 1 -> pi_run = 1/2
        assert warp_runnable_probability(0.01, 100.0) == pytest.approx(0.5)
