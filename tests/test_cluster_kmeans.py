"""Tests for the SimPoint-style k-means / BIC implementation."""

import numpy as np
import pytest

from repro.cluster.kmeans import (
    KMeansResult,
    bic_score,
    kmeans,
    random_projection,
    select_k_bic,
)


def three_blobs(n_per=20, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    pts = np.concatenate(
        [c + 0.3 * rng.standard_normal((n_per, 2)) for c in centers]
    )
    return pts


class TestKMeans:
    def test_k1_centroid_is_mean(self):
        pts = np.array([[0.0, 0.0], [2.0, 2.0], [4.0, 4.0]])
        res = kmeans(pts, 1)
        np.testing.assert_allclose(res.centroids[0], [2.0, 2.0])

    def test_separated_blobs_recovered(self):
        pts = three_blobs()
        res = kmeans(pts, 3, rng=np.random.default_rng(1))
        # Each blob's 20 points share a label.
        for start in (0, 20, 40):
            labels = res.labels[start : start + 20]
            assert len(set(labels)) == 1
        assert res.sse < 60 * 0.3**2 * 2 * 3  # tight clusters

    def test_labels_in_range(self):
        pts = three_blobs()
        res = kmeans(pts, 5)
        assert res.labels.min() >= 0 and res.labels.max() < 5

    def test_k_equals_n(self):
        pts = np.arange(8.0).reshape(4, 2)
        res = kmeans(pts, 4)
        assert res.sse == pytest.approx(0.0)

    def test_rejects_bad_k(self):
        pts = three_blobs()
        with pytest.raises(ValueError):
            kmeans(pts, 0)
        with pytest.raises(ValueError):
            kmeans(pts, len(pts) + 1)

    def test_deterministic_given_rng(self):
        pts = three_blobs()
        a = kmeans(pts, 3, rng=np.random.default_rng(5))
        b = kmeans(pts, 3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.labels, b.labels)


class TestBIC:
    def test_prefers_true_k_on_blobs(self):
        pts = three_blobs()
        rng = np.random.default_rng(2)
        scores = {
            k: bic_score(pts, kmeans(pts, k, rng=rng)) for k in (1, 2, 3, 6)
        }
        assert scores[3] > scores[1]
        assert scores[3] > scores[2]
        # Larger k buys little likelihood but pays the parameter penalty.
        assert scores[3] >= scores[6] - 1e-6

    def test_select_k_bic_finds_three(self):
        pts = three_blobs()
        run = select_k_bic(pts, max_k=8, rng=np.random.default_rng(3))
        assert run.k == 3

    def test_select_k_single_cluster_data(self):
        rng = np.random.default_rng(4)
        pts = rng.standard_normal((40, 2)) * 0.01
        run = select_k_bic(pts, max_k=6, rng=rng)
        assert run.k <= 2

    def test_select_k_caps_at_n(self):
        pts = np.arange(6.0).reshape(3, 2)
        run = select_k_bic(pts, max_k=10)
        assert run.k <= 3


class TestRandomProjection:
    def test_reduces_dimensionality(self):
        pts = np.random.default_rng(0).random((10, 40))
        proj = random_projection(pts, dims=15)
        assert proj.shape == (10, 15)

    def test_passthrough_when_small(self):
        pts = np.random.default_rng(0).random((10, 4))
        proj = random_projection(pts, dims=15)
        assert proj.shape == (10, 4)

    def test_preserves_separation(self):
        pts = np.zeros((4, 50))
        pts[:2, :25] = 1.0
        pts[2:, 25:] = 1.0
        proj = random_projection(pts, dims=5, rng=np.random.default_rng(1))
        # Same-group rows stay identical after projection.
        np.testing.assert_allclose(proj[0], proj[1])
        np.testing.assert_allclose(proj[2], proj[3])
        assert not np.allclose(proj[0], proj[2])
