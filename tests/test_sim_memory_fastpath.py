"""Equivalence proofs for the batched and array-backed front ends.

Every non-oracle front end (:class:`repro.sim.memory.MemoryHierarchy`
and the array-backed :class:`repro.sim.memory.VectorMemoryHierarchy`)
must be bit-identical — timing, cache contents and LRU order, DRAM
bank state, jitter stream, statistics — to the reference front end
(:class:`repro.sim.memory.ReferenceMemoryHierarchy`), which preserves
the pre-fast-path per-transaction implementation as the oracle.  These
tests drive randomized ``(sm_id, addr, spread, num_req)`` sequences
through all of them and compare *all* observable state (for the vector
front end through the representation-independent ``lru_lines()``
projection), then do the same at the system level across the
engine x front-end grid on real kernels.

This is also where the former ``load``/``load1`` duplication hazard is
pinned down: there is exactly one fast ``load`` entry point for every
transaction count, and its single-transaction specialization (including
the inlined DRAM access) is held to the oracle here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPUConfig
from repro.sim.caches import DictLRUCache, LRUCache
from repro.sim.dram import DRAMModel
from repro.sim.gpu import GPUSimulator
from repro.sim.memory import (
    MEMORY_FRONT_ENDS,
    MemoryHierarchy,
    ReferenceMemoryHierarchy,
    VectorMemoryHierarchy,
    make_memory,
)


def tiny_config(**overrides) -> GPUConfig:
    """Small caches so random streams exercise eviction constantly."""
    base = dict(
        num_sms=3,
        l1_kib=1,          # 8 lines of 128 B
        l2_kib=4,          # 32 lines
        l1_latency=10,
        l2_latency=50,
        dram_latency=100,
        dram_row_miss_penalty=40,
        dram_service=8,
        dram_channels=3,   # 3 * 4 = 12 banks: the modulo path
        dram_banks=4,
    )
    base.update(overrides)
    return GPUConfig(**base)


#: The L2-organization axis of the equivalence grid: every front end is
#: held to the *unsharded* reference oracle under both organizations,
#: which is exactly the ShardedL2 invariant (global LRU over shards ==
#: one big LRU).
L2_ORG_SHARDS = {"unified": 1, "sharded": 4}


def hierarchy_state(mem):
    """Every observable of a front end, LRU order included —
    representation-independent via ``lru_lines()``, so OrderedDict-,
    dict-, ring-log- and shard-backed caches compare on equal terms
    (shard-local bookkeeping like ``l2_shard_probes`` is excluded: it
    has no unified counterpart by construction)."""
    return {
        "l1_lines": [c.lru_lines() for c in mem.l1s],
        "l1_stats": [(c.hits, c.misses) for c in mem.l1s],
        "l2_lines": mem.l2.lru_lines(),
        "l2_stats": (mem.l2.hits, mem.l2.misses),
        "dram": (
            list(mem.dram.free_at),
            list(mem.dram.open_row),
            mem.dram.requests,
            mem.dram.row_hits,
            mem.dram.total_queue_cycles,
            mem.dram._jitter_state,
        ),
        "stats": {
            k: v for k, v in mem.stats().items()
            if not k.startswith("l2_shard")
        },
    }


# One warp memory instruction: transactions start at ``addr`` and walk
# ``spread`` bytes apart.  Spreads below the 128-byte line exercise the
# consecutive same-line dedup; spread 0 is the fully-converged case.
instructions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),        # sm_id
        st.integers(min_value=0, max_value=1 << 20),  # addr
        st.sampled_from([0, 4, 64, 128, 256, 4096]),  # spread
        st.integers(min_value=1, max_value=32),       # num_req
        st.integers(min_value=0, max_value=50),       # time delta
    ),
    min_size=1,
    max_size=200,
)


@pytest.mark.parametrize("l2_org", ["unified", "sharded"])
@pytest.mark.parametrize("front_end", ["fast", "vector", "reference"])
class TestFrontEndEquivalence:
    """Front-end x L2-organization differential battery: every
    registered front end, under both the unified L2 and the sharded
    one, is held to the *unsharded* reference oracle on the same random
    instruction streams.  (``reference``/``unified`` vs a second
    ``reference`` instance is the trivial row; it keeps the grid total
    and guards the oracle's own determinism.  The ``sharded`` rows are
    the ShardedL2 bit-identity proof at the hierarchy level.)"""

    @settings(max_examples=60, deadline=None)
    @given(seq=instructions)
    def test_matches_reference(self, front_end, l2_org, seq):
        cfg = tiny_config(l2_shards=L2_ORG_SHARDS[l2_org])
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(tiny_config())
        now = 0
        for sm_id, addr, spread, num_req, dt in seq:
            now += dt
            got = mem.load(sm_id, addr, spread, num_req, now)
            want = ref.load(sm_id, addr, spread, num_req, now)
            assert got == want
        assert hierarchy_state(mem) == hierarchy_state(ref)

    @settings(max_examples=30, deadline=None)
    @given(seq=instructions)
    def test_power_of_two_banks_take_mask_path(self, front_end, l2_org, seq):
        # 2 * 4 = 8 banks: the DRAM models precompute a bank mask and
        # the line-to-bank map becomes an AND; results must not change.
        cfg = tiny_config(
            dram_channels=2, dram_banks=4, l2_shards=L2_ORG_SHARDS[l2_org]
        )
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(tiny_config(dram_channels=2, dram_banks=4))
        assert mem.dram.bank_mask == 7
        now = 0
        for sm_id, addr, spread, num_req, dt in seq:
            now += dt
            assert mem.load(sm_id, addr, spread, num_req, now) == ref.load(
                sm_id, addr, spread, num_req, now
            )
        assert hierarchy_state(mem) == hierarchy_state(ref)

    @settings(max_examples=30, deadline=None)
    @given(seq=instructions)
    def test_equivalence_survives_reset(self, front_end, l2_org, seq):
        # The fast paths keep flat references into cache/DRAM state;
        # reset() must invalidate contents without stranding them.
        cfg = tiny_config(l2_shards=L2_ORG_SHARDS[l2_org])
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(tiny_config())
        half = len(seq) // 2
        now = 0
        for sm_id, addr, spread, num_req, dt in seq[:half]:
            now += dt
            mem.load(sm_id, addr, spread, num_req, now)
            ref.load(sm_id, addr, spread, num_req, now)
        mem.reset()
        ref.reset()
        now = 0
        for sm_id, addr, spread, num_req, dt in seq[half:]:
            now += dt
            assert mem.load(sm_id, addr, spread, num_req, now) == ref.load(
                sm_id, addr, spread, num_req, now
            )
        assert hierarchy_state(mem) == hierarchy_state(ref)

    @settings(max_examples=40, deadline=None)
    @given(seq=instructions)
    def test_batched_load_matches_sequential_singles(
        self, front_end, l2_org, seq
    ):
        # Batched-vs-sequential: one n-transaction ``load`` must equal
        # the max over n single-transaction loads of the expanded
        # addresses at the same ``now``, and leave identical hierarchy
        # state — the defining decomposition of the batch semantics.
        cfg = tiny_config(l2_shards=L2_ORG_SHARDS[l2_org])
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(tiny_config())
        now = 0
        for sm_id, addr, spread, num_req, dt in seq:
            now += dt
            got = mem.load(sm_id, addr, spread, num_req, now)
            want = max(
                ref.load(sm_id, addr + k * spread, 0, 1, now)
                for k in range(num_req)
            )
            assert got == want
        assert hierarchy_state(mem) == hierarchy_state(ref)

    def test_single_transaction_path_matches_batch_of_one(
        self, front_end, l2_org
    ):
        # The num_req == 1 specialization against the oracle, level by
        # level: DRAM miss, L2 hit (other SM), then L1 hit.
        cfg = tiny_config(l2_shards=L2_ORG_SHARDS[l2_org])
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(tiny_config())
        for sm_id, now in ((0, 0), (1, 100), (0, 200)):
            assert mem.load(sm_id, 512, 0, 1, now) == ref.load(
                sm_id, 512, 0, 1, now
            )
        assert hierarchy_state(mem) == hierarchy_state(ref)


@pytest.mark.parametrize("front_end", ["fast", "vector"])
class TestBatchCounterParity:
    """The batch engagement counters (``batches`` / ``dedup_txns`` /
    ``batch_l1_hits`` / ``batch_l2_hits``) of every batched front end
    agree with the fast path's documented semantics."""

    def test_dedup_counts_only_consecutive_same_line(self, front_end):
        cfg = tiny_config()
        mem = make_memory(cfg, front_end)
        ref = ReferenceMemoryHierarchy(cfg)
        # 8 transactions 4 bytes apart: all in line 0 -> 7 dedups.
        assert mem.load(0, 0, 4, 8, 0) == ref.load(0, 0, 4, 8, 0)
        assert mem.dedup_txns == 7
        # Alternating lines never deduplicate (recency updates are
        # observable), even though every line repeats.
        mem2 = make_memory(cfg, front_end)
        ref2 = ReferenceMemoryHierarchy(cfg)
        for addr in (0, 128, 0, 128):
            assert mem2.load(0, addr, 256, 2, 10) == ref2.load(
                0, addr, 256, 2, 10
            )
        assert mem2.dedup_txns == 0
        assert hierarchy_state(mem2) == hierarchy_state(ref2)

    @settings(max_examples=30, deadline=None)
    @given(seq=instructions)
    def test_counters_match_fast(self, front_end, seq):
        cfg = tiny_config()
        mem = make_memory(cfg, front_end)
        fast = MemoryHierarchy(cfg)
        now = 0
        for sm_id, addr, spread, num_req, dt in seq:
            now += dt
            assert mem.load(sm_id, addr, spread, num_req, now) == fast.load(
                sm_id, addr, spread, num_req, now
            )
        assert (
            mem.batches, mem.dedup_txns, mem.batch_l1_hits, mem.batch_l2_hits
        ) == (
            fast.batches, fast.dedup_txns,
            fast.batch_l1_hits, fast.batch_l2_hits,
        )


class TestVectorDrainEquivalence:
    """The vector front end with the DRAM vectorization threshold
    forced to 1 routes every multi-transaction instruction through the
    careful path and every collected miss drain through the fully
    vectorized ``ArrayDRAMModel._access_n_vector`` — and must still be
    bit-identical to the oracle."""

    @settings(max_examples=40, deadline=None)
    @given(seq=instructions)
    def test_forced_vector_drain_matches_reference(self, seq):
        cfg = tiny_config()
        vec = VectorMemoryHierarchy(cfg, vector_threshold=1)
        ref = ReferenceMemoryHierarchy(cfg)
        now = 0
        for sm_id, addr, spread, num_req, dt in seq:
            now += dt
            assert vec.load(sm_id, addr, spread, num_req, now) == ref.load(
                sm_id, addr, spread, num_req, now
            )
        assert hierarchy_state(vec) == hierarchy_state(ref)

    def test_forced_threshold_engages_vector_drains(self):
        cfg = tiny_config()
        vec = VectorMemoryHierarchy(cfg, vector_threshold=1)
        # A 32-transaction streaming miss batch must take one
        # vectorized drain (and report it through the counter the
        # engine snapshots).
        vec.load(0, 0, 4096, 32, 0)
        assert vec.vector_drains == 1
        assert vec.dram.vector_batches == 1
        # Under the default threshold warp-sized batches stay scalar.
        vec_default = VectorMemoryHierarchy(cfg)
        vec_default.load(0, 0, 4096, 32, 0)
        assert vec_default.vector_drains == 0


def test_registry():
    assert set(MEMORY_FRONT_ENDS) == {"fast", "reference", "vector"}
    cfg = tiny_config()
    assert isinstance(make_memory(cfg), MemoryHierarchy)
    assert isinstance(
        make_memory(cfg, "reference"), ReferenceMemoryHierarchy
    )
    assert isinstance(make_memory(cfg, "vector"), VectorMemoryHierarchy)
    with pytest.raises(ValueError, match="unknown memory front end"):
        make_memory(cfg, "turbo")


class TestDRAMBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1,
            max_size=40,
        ),
        now=st.integers(min_value=0, max_value=10_000),
    )
    def test_access_n_matches_sequential_access(self, addrs, now):
        cfg = tiny_config()
        a = DRAMModel(cfg)
        b = DRAMModel(cfg)
        worst = max(a.access(addr, now) for addr in addrs)
        assert b.access_n(addrs, now) == worst
        assert list(a.free_at) == list(b.free_at)
        assert list(a.open_row) == list(b.open_row)
        assert (a.requests, a.row_hits, a.total_queue_cycles) == (
            b.requests, b.row_hits, b.total_queue_cycles
        )
        assert a._jitter_state == b._jitter_state


class TestDictLRUEquivalence:
    """The measured-and-rejected plain-dict LRU stays exactly
    LRU-equivalent to the OrderedDict implementation — what makes the
    recorded performance comparison (DESIGN.md §8) apples-to-apples."""

    @settings(max_examples=60, deadline=None)
    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=1 << 14), min_size=1,
            max_size=300,
        )
    )
    def test_bit_identical_on_random_streams(self, addrs):
        a = LRUCache(8 * 128, 128)
        b = DictLRUCache(8 * 128, 128)
        for addr in addrs:
            assert a.access(addr) == b.access(addr)
        assert list(a._lines) == list(b._lines)
        assert (a.hits, a.misses, a.occupancy) == (b.hits, b.misses, b.occupancy)


def _fingerprint(result):
    # Shard-local bookkeeping (probe balance) is excluded: it exists
    # only under the sharded organization, while everything the serial
    # machine observes must be identical across organizations.
    return (
        result.issued_warp_insts,
        result.wall_cycles,
        tuple(result.per_sm_issued),
        tuple(result.per_sm_busy_cycles),
        result.skipped_warp_insts,
        result.extra_cycles,
        tuple(sorted(
            (k, v) for k, v in result.mem_stats.items()
            if not k.startswith("l2_shard")
        )),
    )


@pytest.mark.parametrize("kernel", ["spmv", "lbm"])
@pytest.mark.parametrize("scheduler", ["oldest", "lrr"])
def test_engine_front_end_grid_bit_identical(kernel, scheduler):
    """System-level closure: every engine x front-end x L2-organization
    combination (and both schedulers, which route through different
    engine loops) yields the same LaunchResults on real memory-bound
    kernels."""
    from repro.workloads import get_workload

    launches = get_workload(kernel, scale=0.0625).launches[:2]
    prints = set()
    for l2_org in ("unified", "sharded"):
        cfg = GPUConfig(scheduler=scheduler, l2_shards=L2_ORG_SHARDS[l2_org])
        for engine in ("compact", "reference"):
            for front_end in ("fast", "reference", "vector"):
                sim = GPUSimulator(cfg, engine=engine, mem_front_end=front_end)
                prints.add(
                    tuple(_fingerprint(sim.run_launch(l)) for l in launches)
                )
    assert len(prints) == 1
