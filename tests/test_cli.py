"""Tests for the command-line interface."""

import pytest

from repro._cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_scale_parsed(self):
        args = build_parser().parse_args(["--scale", "0.5", "list"])
        assert args.scale == 0.5

    def test_profile_flag_parsed(self):
        args = build_parser().parse_args(["--profile", "list"])
        assert args.profile is True
        assert args.profile_limit == 30
        args = build_parser().parse_args(["list"])
        assert args.profile is False


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "convolutionSeparable" in out
        assert "202752" in out  # Table VI conv block count

    def test_model(self, capsys):
        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "p0.05M100N4" in out

    def test_profile_wraps_command(self, capsys):
        assert main(["--profile", "--profile-limit", "5", "list"]) == 0
        captured = capsys.readouterr()
        assert "convolutionSeparable" in captured.out
        assert "cProfile" in captured.err
        assert "cumulative" in captured.err

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "NB" in out and "slowdown" in out

    def test_run_small_kernel(self, capsys):
        # stream is the cheapest benchmark end to end.
        assert main(["--scale", "0.02", "run", "stream"]) == 0
        out = capsys.readouterr().out
        assert "err(tbp)" in out and "stream" in out

    def test_breakdown_subset(self, capsys):
        assert main(["--scale", "0.02", "breakdown", "stream"]) == 0
        out = capsys.readouterr().out
        assert "intra-launch" in out

    def test_unknown_kernel_subset_rejected(self):
        with pytest.raises(SystemExit):
            main(["headline", "bogus"])

    def test_simulate_basic(self, capsys):
        assert main(["--scale", "0.02", "simulate", "stream"]) == 0
        out = capsys.readouterr().out
        assert "issued warp insts" in out
        assert "wall cycles" in out
        assert "warp IPC" in out
        # Memory statistics only appear with --mem-stats.
        assert "L1 hit rate" not in out

    def test_simulate_mem_stats_output_shape(self, capsys):
        assert main(
            ["--scale", "0.02", "simulate", "stream", "--mem-stats"]
        ) == 0
        out = capsys.readouterr().out
        for field in (
            "L1 hit rate",
            "L2 hit rate",
            "DRAM requests",
            "DRAM row-hit rate",
            "DRAM mean queue delay",
        ):
            assert field in out, field
        # Rates render as percentages, delays in cycles.
        assert "%" in out and "cycles" in out

    def test_simulate_engine_and_front_end_flags(self, capsys):
        assert main([
            "--scale", "0.02", "simulate", "stream",
            "--engine", "reference", "--mem-front-end", "reference",
        ]) == 0
        out = capsys.readouterr().out
        assert "reference" in out

    def test_simulate_launch_out_of_range(self):
        with pytest.raises(SystemExit):
            main(
                ["--scale", "0.02", "simulate", "stream",
                 "--launch", "99999"]
            )

    def test_simulate_block_memo_row(self, capsys):
        assert main(
            ["--scale", "0.02", "simulate", "stream", "--block-memo", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "block regenerations (memo window 8)" in out

    def test_simulate_rejects_negative_block_memo(self):
        with pytest.raises(SystemExit):
            main(
                ["--scale", "0.02", "simulate", "stream",
                 "--block-memo", "-3"]
            )

    def test_cache_info_reports_journals(self, capsys, tmp_path):
        from repro.exec import SweepJournal

        journal = SweepJournal.for_sweep(
            "serve", ("p",), tmp_path / "journals"
        )
        journal.record("stream", 1)
        assert main(["--cache-dir", str(tmp_path), "cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "journals directory" in out
        assert str(tmp_path / "journals") in out
        assert "newest sweep key" in out
        assert journal.path.stem in out

    def test_request_needs_kernel_for_compute(self):
        with pytest.raises(SystemExit):
            main(["request", "simulate"])

    def test_request_rejects_kernel_for_stats(self):
        with pytest.raises(SystemExit):
            main(["request", "stats", "stream"])

    def test_request_against_absent_server_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["request", "ping", "--socket", str(tmp_path / "no.sock")]
            )
